"""Tests of the experiment harness (context caching, figure/table data)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentContext,
    fig4_data,
    format_table1,
    format_table2,
    format_table3,
    table1_data,
    table3_data,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(size="small", gnn_epochs=3)


class TestFig4:
    def test_dspu_stabilizes_brim_polarizes(self):
        data = fig4_data()
        free = data["free_index"]
        # Real-Valued DSPU: free nodes settle strictly inside the rails.
        assert np.all(np.abs(data["dspu_final"][free]) < 0.99)
        # BRIM: free nodes polarize to the rails.
        assert np.all(np.abs(data["brim_final"][free]) > 0.9)

    def test_clamped_inputs_identical_on_both_machines(self):
        data = fig4_data()
        clamped = data["clamp_index"]
        assert np.allclose(
            data["dspu_final"][clamped], data["brim_final"][clamped]
        )

    def test_dspu_energy_decreases(self):
        data = fig4_data()
        assert np.all(np.diff(data["dspu"].energies) <= 1e-9)


class TestContext:
    def test_dataset_cached(self, context):
        a = context.dataset("o3")
        b = context.dataset("o3")
        assert a is b

    def test_dense_model_cached(self, context):
        a = context.dense("o3")
        b = context.dense("o3")
        assert a is b
        assert a.model.convexity_margin() > 0

    def test_decomposition_cached_by_design_point(self, context):
        a = context.decomposed("o3", 0.1, "mesh")
        b = context.decomposed("o3", 0.1, "mesh")
        c = context.decomposed("o3", 0.1, "chain")
        assert a is b
        assert a is not c

    def test_dense_rmse_reasonable(self, context):
        assert 0.0 < context.dense_rmse("o3") < 0.5

    def test_gnn_cached_and_scored(self, context):
        trainer = context.gnn("GWN", "o3")
        assert trainer is context.gnn("GWN", "o3")
        assert 0.0 < context.gnn_rmse("GWN", "o3") < 0.5

    def test_unknown_baseline_rejected(self, context):
        with pytest.raises(ValueError, match="baseline"):
            context.gnn("GCN4000", "o3")

    def test_dspu_built_on_cached_decomposition(self, context):
        dspu = context.dspu("o3", 0.1, "mesh")
        assert dspu.system is context.decomposed("o3", 0.1, "mesh")


class TestTables:
    def test_table1_rows(self):
        rows = table1_data()
        designs = [r["design"] for r in rows]
        assert designs == ["BRIM", "DSPU-2000", "DS-GL"]
        dsgl = rows[-1]
        assert dsgl["scalable"] and dsgl["effective_spins"] == 8000

    def test_table1_formatting(self):
        text = format_table1(table1_data())
        assert "BRIM" in text and "mW" in text and "Yes" in text

    def test_table3_structure(self, context):
        data = table3_data(context)
        assert len(data["platforms"]) == 5
        for platform in data["platforms"]:
            for app_rows in platform["rows"].values():
                for metrics in app_rows.values():
                    assert metrics["latency_us"] > 0
                    assert metrics["energy_mj"] > 0
        # DS-GL beats every platform on both metrics (the headline claim).
        dsgl_latency = max(v["latency_us"] for v in data["dsgl"].values())
        dsgl_energy = max(v["energy_mj"] for v in data["dsgl"].values())
        for platform in data["platforms"]:
            for app_rows in platform["rows"].values():
                for metrics in app_rows.values():
                    assert metrics["latency_us"] > dsgl_latency
                    assert metrics["energy_mj"] > dsgl_energy

    def test_table3_formatting(self, context):
        text = format_table3(table3_data(context))
        assert "A100" in text and "DS-GL" in text
