"""Plumbing tests of the figure-data generators (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentContext,
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(size="small", gnn_epochs=3)


class TestFig10Data:
    def test_structure(self, context):
        data = fig10_data(
            context,
            datasets=("o3",),
            densities=(0.05, 0.1),
            patterns=("mesh",),
        )
        entry = data["o3"]
        assert entry["densities"] == [0.05, 0.1]
        assert len(entry["curves"]["mesh"]) == 2
        assert entry["best_gnn"] > 0
        assert all(v > 0 for v in entry["curves"]["mesh"])


class TestFig11Data:
    def test_latency_axis_in_microseconds(self, context):
        data = fig11_data(
            context,
            datasets=("o3",),
            latencies_ns=(1000.0, 5000.0),
            max_windows=3,
        )
        entry = data["o3"]
        assert entry["latencies_us"] == [1.0, 5.0]
        assert len(entry["rmse"]) == 2
        assert entry["mode"] in ("spatial", "temporal+spatial")


class TestFig12Data:
    def test_one_rmse_per_interval(self, context):
        data = fig12_data(
            context,
            datasets=("o3",),
            sync_grid_ns=(200.0, 1000.0),
            duration_ns=5000.0,
            max_windows=3,
        )
        entry = data["o3"]
        assert entry["sync_ns"] == [200.0, 1000.0]
        assert len(entry["rmse"]) == 2


class TestFig13Data:
    def test_one_curve_per_noise_level(self, context):
        data = fig13_data(
            context,
            datasets=("o3",),
            densities=(0.1,),
            noise_grid=(0.0, 0.1),
            duration_ns=5000.0,
            max_windows=3,
        )
        entry = data["o3"]
        assert set(entry["curves"]) == {0.0, 0.1}
        assert all(len(curve) == 1 for curve in entry["curves"].values())
        assert all(
            np.isfinite(v) for curve in entry["curves"].values() for v in curve
        )
