"""Tests of the terminal plotting helpers."""

import numpy as np
import pytest

from repro.experiments import line_chart, sparkline


class TestSparkline:
    def test_monotone_series_uses_extremes(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁"  # lowest block
        assert line[-1] == "█"  # full block

    def test_constant_series_is_flat(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_resampling_width(self):
        assert len(sparkline(np.arange(100), width=10)) == 10

    def test_empty_and_nan(self):
        assert sparkline([]) == ""
        assert sparkline([np.nan, 1.0, np.nan]) == " ▁ " or sparkline(
            [np.nan, 1.0, np.nan]
        ).count(" ") == 2

    def test_length_matches_input(self):
        assert len(sparkline([3, 1, 4, 1, 5])) == 5


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart(
            {"one": ([0, 1, 2], [1, 2, 3]), "two": ([0, 1, 2], [3, 2, 1])},
            width=20,
            height=6,
        )
        assert "a=one" in chart
        assert "b=two" in chart
        assert "a" in chart.splitlines()[1]

    def test_axis_bounds_printed(self):
        chart = line_chart({"s": ([0.0, 10.0], [1.0, 5.0])}, width=20, height=4)
        assert "5" in chart and "1" in chart and "10" in chart

    def test_labels(self):
        chart = line_chart(
            {"s": ([0, 1], [0, 1])}, width=10, height=3,
            x_label="latency", y_label="RMSE",
        )
        assert "latency" in chart and "RMSE" in chart

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            line_chart({})
        with pytest.raises(ValueError, match="canvas"):
            line_chart({"s": ([0], [0])}, width=2, height=1)
