"""Tests of the text-table renderers."""

import numpy as np

from repro.experiments import (
    format_density_sweep,
    format_latency_sweep,
    format_noise_sweep,
    format_sync_sweep,
    format_table2,
    format_table4,
)


class TestFormatTable2:
    def test_header_and_rows(self):
        data = {
            "traffic": {"GWN": 0.04, "DS-GL-Dmesh": 0.03},
            "no2": {"GWN": 0.05, "DS-GL-Dmesh": 0.035},
        }
        text = format_table2(data)
        lines = text.splitlines()
        assert "traffic" in lines[0] and "no2" in lines[0]
        assert any("GWN" in line and "4.00e-02" in line for line in lines)
        assert any("DS-GL-Dmesh" in line for line in lines)


class TestFormatTable4:
    def test_nested_metrics(self):
        data = {
            "climate": {
                "GWN": {"rmse": 0.09, "latency_us": 1000.0},
                "DS-GL": {"rmse": 0.08, "latency_us": 20.0},
            }
        }
        text = format_table4(data)
        assert "climate" in text
        assert "9.00e-02" in text
        assert "20.00 us" in text


class TestFormatSweeps:
    def test_density_sweep_includes_reference_line(self):
        data = {
            "o3": {
                "densities": [0.05, 0.1],
                "curves": {"chain": [0.06, 0.05], "mesh": [0.058, 0.049]},
                "best_gnn": 0.052,
            }
        }
        text = format_density_sweep(data)
        assert "best GNN: 5.20e-02" in text
        assert "D=0.05" in text
        assert "chain" in text and "mesh" in text

    def test_latency_sweep_pairs(self):
        data = {
            "stock": {
                "latencies_us": [1.0, 5.0],
                "rmse": [0.1, 0.02],
                "mode": "temporal+spatial",
            }
        }
        text = format_latency_sweep(data)
        assert "1.00us:1.00e-01" in text
        assert "temporal+spatial" in text

    def test_sync_sweep_pairs(self):
        data = {"no2": {"sync_ns": [200.0], "rmse": [0.04]}}
        text = format_sync_sweep(data)
        assert "200ns:4.00e-02" in text

    def test_noise_sweep_levels(self):
        data = {
            "traffic": {
                "densities": [0.1],
                "curves": {0.0: [0.08], 0.15: [0.09]},
            }
        }
        text = format_noise_sweep(data)
        assert "n= 0%" in text
        assert "n=15%" in text
        assert "D=0.1:9.00e-02" in text
