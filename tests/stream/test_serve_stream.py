"""Mid-traffic deltas through the serving layer.

The serving batcher groups by ``problem_key`` (model-version counter +
content fingerprint) + observed set.  A delta applied mid-traffic must
therefore split pre- and post-delta requests into distinct batches —
never mixing a stale factorization with fresh requests — and the whole
served stream must be bit-for-bit identical to driving the engine
directly through the same history.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core import NaturalAnnealingEngine, symmetrize_coupling
from repro.core.model import DSGLModel
from repro.serve import STATUS_OK, InferenceServer, ServeConfig
from repro.stream import GraphDelta

OBSERVED = np.asarray([1, 4, 9, 13])


def _engine(n=20, seed=6, backend="sparse"):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(
        rng.normal(size=(n, n)) * 0.3 * (rng.random((n, n)) < 0.4)
    )
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return NaturalAnnealingEngine(
        model=DSGLModel(J=J, h=h), backend=backend
    )


def _values(batch, seed=8):
    return np.random.default_rng(seed).normal(
        size=(batch, OBSERVED.size)
    )


_DELTA_EDGES = [(0, 7, 0.35), (2, 11, -0.2)]


class TestMidTrafficDelta:
    def test_delta_splits_queued_requests_into_distinct_batches(self):
        """Requests admitted before and after a delta share a 200 ms
        batch window but must coalesce into two separate batches: their
        problem keys differ (the delta bumps the model version even when
        the strided content sample would miss the edit)."""
        config = ServeConfig(batch_window_ms=200.0, drain_on_shutdown=True)
        engine = _engine()
        values = _values(6)

        async def main():
            async with InferenceServer(engine, config) as server:
                pre = [
                    server.submit(OBSERVED, values[i]) for i in range(3)
                ]
                key_before = engine.problem_key()
                server.apply_delta(
                    GraphDelta.from_edges(_DELTA_EDGES)
                )
                key_after = engine.problem_key()
                post = [
                    server.submit(OBSERVED, values[3 + i])
                    for i in range(3)
                ]
                return (
                    await asyncio.gather(*pre, *post),
                    key_before,
                    key_after,
                )

        outcomes, key_before, key_after = asyncio.run(main())
        assert key_after != key_before
        assert [o.status for o in outcomes] == [STATUS_OK] * 6
        # One 6-request batch would mean stale and fresh requests mixed.
        assert [o.batch_size for o in outcomes] == [3, 3, 3, 3, 3, 3]

    def test_served_stream_bitwise_matches_direct_engine_replay(self):
        """Serve the history (batch, delta, batch) and replay it directly
        on an identically built engine: every prediction must agree bit
        for bit on the sparse backend, proving post-delta requests solve
        through the updated factorization, not a stale one."""
        values = _values(8, seed=31)
        delta = GraphDelta.from_edges(_DELTA_EDGES)

        served_engine = _engine()
        config = ServeConfig(batch_window_ms=200.0, drain_on_shutdown=True)

        async def main():
            async with InferenceServer(served_engine, config) as server:
                pre = [
                    server.submit(OBSERVED, values[i]) for i in range(4)
                ]
                await asyncio.gather(*pre)
                server.apply_delta(delta)
                post = [
                    server.submit(OBSERVED, values[4 + i])
                    for i in range(4)
                ]
                return [o.prediction for o in await asyncio.gather(*pre)], [
                    o.prediction for o in await asyncio.gather(*post)
                ]

        served_pre, served_post = asyncio.run(main())

        direct_engine = _engine()
        direct_pre = direct_engine.infer_equilibrium_batch(
            OBSERVED, values[:4]
        )
        direct_engine.apply_delta(GraphDelta.from_edges(_DELTA_EDGES))
        direct_post = direct_engine.infer_equilibrium_batch(
            OBSERVED, values[4:]
        )
        assert direct_engine.incremental_updates == 1
        assert np.array_equal(np.stack(served_pre), direct_pre)
        assert np.array_equal(np.stack(served_post), direct_post)
        # Both engines ended on the same streamed model content.
        assert served_engine.problem_key() == direct_engine.problem_key()

    def test_apply_delta_counts_and_keeps_serving(self):
        engine = _engine()
        config = ServeConfig(batch_window_ms=0.0, drain_on_shutdown=True)

        async def main():
            async with InferenceServer(engine, config) as server:
                first = await server.submit(OBSERVED, _values(1)[0])
                server.apply_delta(GraphDelta.add_edge(3, 15, 0.4))
                second = await server.submit(OBSERVED, _values(1)[0])
                return first, second

        first, second = asyncio.run(main())
        assert first.status == STATUS_OK
        assert second.status == STATUS_OK
        assert engine.deltas_applied == 1
        # Same observed values, different model: predictions moved.
        assert not np.array_equal(first.prediction, second.prediction)
