"""The ``repro stream run`` command surface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["stream", "run"])
        assert args.n == 128
        assert args.windows == 8
        assert args.mode == "engine"
        assert args.backend == "sparse"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream"])

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "run", "--mode", "batch"])

    def test_observability_flags_available(self):
        args = build_parser().parse_args(
            ["stream", "run", "--trace", "t.jsonl", "--metrics"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics is True


class TestCommand:
    ARGS = ["stream", "run", "--n", "48", "--windows", "3", "--batch", "4"]

    def test_prints_summary_and_succeeds(self, capsys):
        assert main(self.ARGS + ["--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Streaming replay: n=48" in out
        assert "mean_mae=" in out
        assert "incremental_updates=" in out

    def test_serve_mode(self, capsys):
        assert main(self.ARGS + ["--mode", "serve"]) == 0
        assert "mode=serve" in capsys.readouterr().out

    def test_json_document(self, tmp_path, capsys):
        path = tmp_path / "stream.json"
        assert main(self.ARGS + ["--json", str(path)]) == 0
        document = json.loads(path.read_text())
        assert document["config"]["n"] == 48
        assert len(document["windows"]) == 3
        assert document["windows"][1]["incremental"] >= 0
        assert "mean_mae" in document
        assert f"wrote {path}" in capsys.readouterr().out

    def test_invalid_config_fails_cleanly(self, capsys):
        assert main(
            ["stream", "run", "--observed-fraction", "1.5"]
        ) == 1
        assert "error:" in capsys.readouterr().err
