"""Edge-case contracts of the delta surface.

The cheap-but-load-bearing guarantees: no-op deltas cause zero cache
churn (same operator object, same fingerprint), zero-weight edits
normalize away, and malformed edits fail loudly with ``ValueError``
instead of corrupting a symmetric operator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inference import NaturalAnnealingEngine
from repro.core.model import DSGLModel
from repro.core.operators import CouplingOperator
from repro.stream import GraphDelta


@pytest.fixture
def operator():
    rng = np.random.default_rng(2)
    n = 16
    raw = rng.normal(size=(n, n)) * 0.3 * (rng.random((n, n)) < 0.3)
    upper = np.triu(raw, k=1)
    J = upper + upper.T
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return CouplingOperator(J, h, backend="dense")


def _engine(operator):
    return NaturalAnnealingEngine(
        model=DSGLModel(J=operator.to_dense(), h=operator.h.copy()),
        backend="dense",
    )


class TestNoOpDeltas:
    def test_empty_delta_returns_same_object(self, operator):
        info = {}
        assert operator.apply_delta(GraphDelta.empty(), info=info) is operator
        assert info["noop"] is True
        assert info["edge_increments"] == []

    def test_same_value_reweight_is_normalized_out(self, operator):
        i, j = map(int, np.argwhere(np.triu(operator.to_dense(), k=1))[0])
        delta = GraphDelta.reweight_edge(i, j, operator.entry(i, j))
        assert operator.apply_delta(delta) is operator

    def test_zero_weight_on_absent_edge_is_normalized_out(self, operator):
        dense = operator.to_dense()
        absent = next(
            (i, j)
            for i in range(operator.n)
            for j in range(i + 1, operator.n)
            if dense[i, j] == 0.0
        )
        delta = GraphDelta.remove_edge(*absent)
        assert operator.apply_delta(delta) is operator

    def test_noop_delta_keeps_fingerprint_and_engine_caches(self, operator):
        engine = _engine(operator)
        observed = np.array([0, 3, 7])
        engine.infer_equilibrium_batch(
            observed, np.zeros((1, observed.size))
        )
        assert engine.cache_size == 1
        key_before = engine.problem_key()
        engine.apply_delta(GraphDelta.empty())
        engine.apply_delta(
            GraphDelta.reweight_edge(
                *map(int, np.argwhere(np.triu(engine.model.J, k=1))[0]),
                float(
                    engine.model.J[
                        tuple(np.argwhere(np.triu(engine.model.J, k=1))[0])
                    ]
                ),
            )
        )
        assert engine.problem_key() == key_before
        assert engine.cache_size == 1
        assert engine.incremental_updates == 0
        assert engine.delta_refactorizations == 0


class TestValidation:
    def test_out_of_range_edge_index_raises(self, operator):
        with pytest.raises(ValueError, match="out of range"):
            operator.apply_delta(GraphDelta.add_edge(0, operator.n, 0.5))

    def test_out_of_range_h_index_raises(self, operator):
        with pytest.raises(ValueError, match="out of range"):
            operator.apply_delta(GraphDelta.set_h(operator.n + 3, -1.0))

    def test_diagonal_edit_rejected_on_symmetric_operator(self, operator):
        with pytest.raises(ValueError, match="diagonal"):
            operator.apply_delta(GraphDelta.add_edge(4, 4, 0.2))

    def test_conflicting_orientations_rejected(self, operator):
        delta = GraphDelta.from_edges([(2, 5, 0.1), (5, 2, 0.3)])
        with pytest.raises(ValueError, match="conflicting"):
            operator.apply_delta(delta)

    def test_agreeing_orientations_collapse_to_one_edit(self, operator):
        delta = GraphDelta.from_edges([(2, 5, 0.1), (5, 2, 0.1)])
        updated = operator.apply_delta(delta)
        assert updated.entry(2, 5) == 0.1
        assert updated.entry(5, 2) == 0.1

    def test_negative_index_rejected_at_construction(self):
        with pytest.raises(ValueError, match="non-negative"):
            GraphDelta.add_edge(-1, 3, 0.5)

    def test_non_finite_weight_rejected_at_construction(self):
        with pytest.raises(ValueError, match="finite"):
            GraphDelta.add_edge(0, 1, np.nan)

    def test_engine_rejects_non_negative_h_edit(self, operator):
        engine = _engine(operator)
        with pytest.raises(ValueError, match="strictly negative"):
            engine.apply_delta(GraphDelta.set_h(0, 0.5))

    def test_diagonal_allowed_on_asymmetric_operator(self):
        adjacency = np.eye(4)
        directed = CouplingOperator(adjacency, symmetric=False)
        updated = directed.apply_delta(GraphDelta.add_edge(2, 2, 3.0))
        assert updated.entry(2, 2) == 3.0
        assert updated.entry(2, 2) != directed.entry(2, 2)


class TestDeltaAlgebra:
    def test_last_wins_dedup_within_one_delta(self):
        delta = GraphDelta.from_edges([(0, 1, 0.5), (0, 1, 0.9)])
        assert delta.num_edge_edits == 1
        assert delta.edge_weight[0] == 0.9

    def test_compose_is_last_wins(self):
        first = GraphDelta.add_edge(0, 1, 0.5)
        second = GraphDelta.remove_edge(0, 1)
        composed = first.compose(second)
        assert composed.num_edge_edits == 1
        assert composed.edge_weight[0] == 0.0

    def test_len_and_is_empty(self):
        assert len(GraphDelta.empty()) == 0
        assert GraphDelta.empty().is_empty
        both = GraphDelta.from_edges([(0, 1, 0.5)], h_updates=[(2, -1.0)])
        assert len(both) == 2
        assert not both.is_empty
