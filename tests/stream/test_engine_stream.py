"""Engine-level streaming semantics: counters, fallbacks, invalidation.

The engine's :meth:`~repro.core.inference.NaturalAnnealingEngine.
apply_delta` promises bookkeeping, not just correctness: incremental
updates and refactorizations are counted (locally and in the
``stream.*`` metrics), the rank budget and residual bound each trigger
their own refactorization path, faults fall back to edit-and-clear, and
the ``model_version``/``problem_key`` pair moves on every effective
delta so downstream batch grouping can never mix stale and fresh
factorizations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.inference import NaturalAnnealingEngine, model_fingerprint
from repro.core.model import DSGLModel
from repro.faults.model import FaultScenario
from repro.stream import GraphDelta, delta_stream, random_delta


def _build_engine(n=32, seed=13, **kwargs) -> NaturalAnnealingEngine:
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(n, n)) * 0.3 * (rng.random((n, n)) < 0.2)
    upper = np.triu(raw, k=1)
    J = upper + upper.T
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return NaturalAnnealingEngine(
        model=DSGLModel(J=J, h=h), backend="dense", **kwargs
    )


def _warm(engine, seed=4, sets=1):
    """Factor ``sets`` distinct observed-index systems into the cache."""
    rng = np.random.default_rng(seed)
    for _ in range(sets):
        observed = np.sort(
            rng.choice(engine.model.n, size=6, replace=False)
        )
        engine.infer_equilibrium_batch(
            observed, np.zeros((1, observed.size))
        )
    return engine.cache_size


class TestCountersAndVersioning:
    def test_incremental_update_counts_per_cached_system(self):
        engine = _build_engine(max_update_rank=128)
        assert _warm(engine, sets=3) == 3
        engine.apply_delta(
            random_delta(
                engine.operator, np.random.default_rng(0), edges=2,
                p_add=0.0, p_remove=0.0,
            )
        )
        assert engine.deltas_applied == 1
        assert engine.incremental_updates == 3
        assert engine.delta_refactorizations == 0
        assert engine.cache_size == 3

    def test_model_version_and_problem_key_move_on_effective_delta(self):
        engine = _build_engine()
        key = engine.problem_key()
        engine.apply_delta(GraphDelta.add_edge(0, 1, 0.42))
        assert engine.model_version == 1
        assert engine.problem_key() != key
        # The model arrays were edited in place to match the operator.
        assert engine.model.J[0, 1] == 0.42
        assert engine.model.J[1, 0] == 0.42
        assert engine.problem_key().endswith(
            model_fingerprint(engine.model)
        )

    def test_stream_metrics_counters_emitted(self):
        obs.configure(collect_metrics=True)
        try:
            engine = _build_engine(max_update_rank=128)
            _warm(engine)
            engine.apply_delta(GraphDelta.add_edge(2, 9, 0.1))
            snapshot = obs.metrics().snapshot()
            counters = snapshot["counters"]
            assert counters["stream.deltas"] == 1
            assert counters["stream.incremental_updates"] == 1
        finally:
            obs.disable()

    def test_model_fingerprint_stays_consistent_after_stream(self):
        """The in-place model edit and the operator swap agree, so the
        engine's mutation guard never trips on a streamed engine."""
        engine = _build_engine(max_update_rank=256)
        _warm(engine)
        for delta in delta_stream(
            engine.operator, seed=3, windows=5, edges=3
        ):
            engine.apply_delta(delta)
        # A fresh inference re-checks the fingerprint; a mismatch would
        # raise / invalidate. Cache must still be warm.
        hits_before = engine.cache_hits
        observed = np.sort(
            np.random.default_rng(4).choice(32, size=6, replace=False)
        )
        engine.infer_equilibrium_batch(
            observed, np.zeros((1, observed.size))
        )
        assert engine.cache_hits == hits_before + 1
        assert np.allclose(
            engine.operator.to_dense(), engine.model.J
        )


class TestRefactorizationFallbacks:
    def test_rank_budget_exhaustion_drops_cache_entry(self):
        engine = _build_engine(max_update_rank=2)
        _warm(engine)
        # A 3-edge delta needs 6 SMW columns > budget of 2.
        engine.apply_delta(
            GraphDelta.from_edges(
                [(0, 5, 0.3), (1, 6, 0.2), (2, 7, 0.1)]
            )
        )
        assert engine.delta_refactorizations == 1
        assert engine.incremental_updates == 0
        assert engine.cache_size == 0
        # Next inference refactorizes lazily and stays correct.
        observed = np.sort(
            np.random.default_rng(4).choice(32, size=6, replace=False)
        )
        result = engine.infer_equilibrium_batch(
            observed, np.zeros((1, observed.size))
        )
        assert np.all(np.isfinite(result))

    def test_residual_breach_refactorizes_on_next_lookup(self):
        engine = _build_engine(max_update_rank=128)
        _warm(engine)
        key = next(iter(engine._reduced_cache))
        # Force the breach flag the residual monitor would set.
        engine._reduced_cache[key].needs_refactor = True
        observed = np.sort(
            np.random.default_rng(4).choice(32, size=6, replace=False)
        )
        misses_before = engine.cache_misses
        engine.infer_equilibrium_batch(
            observed, np.zeros((1, observed.size))
        )
        assert engine.residual_refactorizations == 1
        assert engine.cache_misses == misses_before + 1
        assert not next(iter(engine._reduced_cache.values())).needs_refactor

    def test_faults_fall_back_to_edit_and_clear(self):
        engine = _build_engine()
        _warm(engine)
        engine.set_faults(
            FaultScenario(n=32, dead_pairs=np.array([[0, 1]]))
        )
        _warm(engine, seed=9)
        cached = engine.cache_size
        assert cached >= 1
        engine.apply_delta(GraphDelta.add_edge(3, 11, 0.25))
        # Incremental updates against the fault-transformed operator
        # would compound the faults; everything must be dropped instead.
        assert engine.cache_size == 0
        assert engine.delta_refactorizations == cached
        assert engine.incremental_updates == 0
        assert engine.model.J[3, 11] == 0.25


class TestSolveCorrectnessAfterStream:
    def test_streamed_cache_solves_match_cold_engine(self):
        """The acceptance property at engine level: a warm engine that
        absorbed a delta stream incrementally predicts within the
        residual tolerance of a cold engine built from the final model."""
        engine = _build_engine(max_update_rank=256)
        rng = np.random.default_rng(77)
        observed = np.sort(rng.choice(32, size=8, replace=False))
        values = rng.normal(size=(3, observed.size))
        engine.infer_equilibrium_batch(observed, values)
        for delta in delta_stream(
            engine.operator, seed=21, windows=6, edges=3, h_edits=1
        ):
            engine.apply_delta(delta)
        warm = engine.infer_equilibrium_batch(observed, values)
        assert engine.incremental_updates == 6
        cold = NaturalAnnealingEngine(
            model=DSGLModel(
                J=engine.model.J.copy(), h=engine.model.h.copy()
            ),
            backend="dense",
        ).infer_equilibrium_batch(observed, values)
        scale = max(1.0, float(np.max(np.abs(cold))))
        tol = float(np.sqrt(np.finfo(np.float64).eps))
        assert np.max(np.abs(warm - cold)) <= 10.0 * tol * scale
