"""Delta-vs-rebuild equivalence: the streaming correctness contract.

A graph maintained by chaining :meth:`CouplingOperator.apply_delta`
must be indistinguishable from one rebuilt from scratch off the edited
matrix — *bit for bit* on operator results (matvec/drift/energy, CSR
storage layout included), and within the documented residual tolerance
on solves through incrementally updated
:class:`~repro.core.operators.ReducedSystem` factorizations.

The chains are seeded random streams mixing additions, removals, and
reweights (plus self-reaction edits), applied one-by-one and batched
(composed), across both backends, both float dtypes, and — for the
engine-level end — fork and spawn worker pools.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest
from scipy import sparse as sp

from repro.core.inference import NaturalAnnealingEngine
from repro.core.model import DSGLModel
from repro.core.operators import CouplingOperator
from repro.parallel.engine import infer_batch_sharded
from repro.parallel.pool import START_METHOD_ENV
from repro.stream import GraphDelta, delta_stream, random_delta

BACKENDS = ("dense", "sparse")
DTYPES = (np.float32, np.float64)


def _random_symmetric(n, density, seed, dtype=np.float64):
    """A seeded symmetric zero-diagonal coupling with convex h."""
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    raw = rng.normal(size=(n, n)) * 0.3 * mask
    upper = np.triu(raw, k=1)
    J = upper + upper.T
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return J.astype(dtype), h.astype(dtype)


def _assert_operators_identical(streamed, rebuilt, rng):
    """Bitwise agreement on results *and* storage layout."""
    x = rng.normal(size=streamed.n).astype(streamed.dtype)
    sigma = rng.normal(size=streamed.n).astype(streamed.dtype)
    assert np.array_equal(streamed.matvec(x), rebuilt.matvec(x))
    assert np.array_equal(streamed.drift(sigma), rebuilt.drift(sigma))
    assert streamed.energy(sigma) == rebuilt.energy(sigma)
    assert np.array_equal(streamed.h, rebuilt.h)
    if streamed.backend == "sparse":
        assert np.array_equal(streamed._J.data, rebuilt._J.data)
        assert np.array_equal(streamed._J.indices, rebuilt._J.indices)
        assert np.array_equal(streamed._J.indptr, rebuilt._J.indptr)
    else:
        assert np.array_equal(streamed._J, rebuilt._J)


class TestOperatorChainEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_streamed_chain_matches_rebuild_bitwise(self, backend, dtype):
        """12 windows of mixed add/remove/reweight + h edits: after every
        window the streamed operator is bit-identical to one rebuilt from
        the reference dense matrix maintained by ``apply_to_dense``."""
        n = 40
        J, h = _random_symmetric(n, density=0.15, seed=5, dtype=dtype)
        operator = CouplingOperator(J, h, backend=backend, dtype=dtype)
        J_ref, h_ref = J.copy(), h.copy()
        check_rng = np.random.default_rng(99)
        for delta in delta_stream(
            operator, seed=17, windows=12, edges=5, h_edits=1
        ):
            operator = operator.apply_delta(delta)
            delta.apply_to_dense(J_ref, h_ref, symmetric=True)
            rebuilt = CouplingOperator(
                J_ref, h_ref, backend=backend, dtype=dtype
            )
            _assert_operators_identical(operator, rebuilt, check_rng)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batched_delta_equals_sequential(self, backend):
        """Composing a window's deltas into one batch edit lands on the
        same bits as applying them one at a time."""
        n = 32
        J, h = _random_symmetric(n, density=0.2, seed=3)
        base = CouplingOperator(J, h, backend=backend)
        deltas = list(delta_stream(base, seed=8, windows=6, edges=3))
        sequential = base
        for delta in deltas:
            sequential = sequential.apply_delta(delta)
        batched = base.apply_delta(deltas[0].compose(*deltas[1:]))
        _assert_operators_identical(
            sequential, batched, np.random.default_rng(1)
        )

    def test_sparse_pattern_rebuild_matches_canonical_csr(self):
        """Additions/removals trigger the pattern-rebuild path; the
        resulting CSR must match ``csr_matrix(dense)`` exactly — same
        data, indices, indptr — so no phantom explicit zeros survive."""
        n = 24
        J, h = _random_symmetric(n, density=0.25, seed=11)
        operator = CouplingOperator(J, h, backend="sparse")
        delta = random_delta(
            operator, np.random.default_rng(2), edges=8,
            p_add=0.5, p_remove=0.5,
        )
        info = {}
        updated = operator.apply_delta(delta, info=info)
        assert info["pattern_rebuilt"] is True
        dense = updated.to_dense()
        canonical = sp.csr_matrix(dense)
        assert np.array_equal(updated._J.data, canonical.data)
        assert np.array_equal(updated._J.indices, canonical.indices)
        assert np.array_equal(updated._J.indptr, canonical.indptr)

    def test_value_only_delta_preserves_csr_pattern_arrays(self):
        """Reweights that do not change the sparsity pattern must reuse
        the existing indices/indptr buffers (zero-copy structure)."""
        n = 24
        J, h = _random_symmetric(n, density=0.25, seed=11)
        operator = CouplingOperator(J, h, backend="sparse")
        delta = random_delta(
            operator, np.random.default_rng(4), edges=4,
            p_add=0.0, p_remove=0.0,
        )
        info = {}
        updated = operator.apply_delta(delta, info=info)
        assert info["pattern_rebuilt"] is False
        assert np.shares_memory(updated._J.indices, operator._J.indices)
        assert np.shares_memory(updated._J.indptr, operator._J.indptr)


class TestReducedSystemEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_incremental_solve_within_residual_tolerance(self, backend):
        """A chain of deltas absorbed via ``apply_increments`` solves to
        within the documented residual tolerance of a freshly
        refactorized system, and the tracked residual stays bounded."""
        n = 64
        J, h = _random_symmetric(n, density=0.1, seed=21)
        operator = CouplingOperator(J, h, backend=backend)
        rng = np.random.default_rng(6)
        observed = np.sort(rng.choice(n, size=16, replace=False))
        free = np.setdiff1d(np.arange(n), observed)
        reduced = operator.reduced_system(
            free, observed, max_update_rank=256
        )
        clamp = rng.normal(size=(4, observed.size))
        for delta in delta_stream(
            operator, seed=33, windows=5, edges=3,
            p_add=0.0, p_remove=0.0, h_edits=1,
        ):
            info = {}
            operator = operator.apply_delta(delta, info=info)
            applied = reduced.apply_increments(
                info["edge_increments"], info["h_increments"]
            )
            assert applied, "rank budget sized to absorb the whole stream"
            incremental = reduced.solve(clamp)
            rebuilt = operator.reduced_system(free, observed)
            reference = rebuilt.solve(clamp)
            scale = max(1.0, float(np.max(np.abs(reference))))
            assert np.max(np.abs(incremental - reference)) <= (
                10.0 * reduced.residual_tol * scale
            )
            assert reduced.last_residual <= reduced.residual_tol
            assert not reduced.needs_refactor

    def test_float32_residual_tolerance_scales_with_dtype(self):
        """A float32 system gets the float32 residual tolerance (sqrt of
        that dtype's epsilon), and incremental solves respect it."""
        n = 48
        J, h = _random_symmetric(n, density=0.15, seed=9, dtype=np.float32)
        operator = CouplingOperator(
            J, h, backend="dense", dtype=np.float32
        )
        rng = np.random.default_rng(12)
        observed = np.sort(rng.choice(n, size=12, replace=False))
        free = np.setdiff1d(np.arange(n), observed)
        reduced = operator.reduced_system(free, observed)
        expected_tol = float(np.sqrt(np.finfo(np.float32).eps))
        assert reduced.residual_tol == pytest.approx(expected_tol)
        info = {}
        operator = operator.apply_delta(
            random_delta(
                operator, rng, edges=2, p_add=0.0, p_remove=0.0
            ),
            info=info,
        )
        assert reduced.apply_increments(
            info["edge_increments"], info["h_increments"]
        )
        clamp = rng.normal(size=(2, observed.size))
        reference = operator.reduced_system(free, observed).solve(clamp)
        deviation = np.max(np.abs(reduced.solve(clamp) - reference))
        scale = max(1.0, float(np.max(np.abs(reference))))
        assert deviation <= 10.0 * expected_tol * scale


class TestWorkerPoolEquivalence:
    """Engine-level replay equivalence across process start methods."""

    def _streamed_predictions(self, workers: int) -> np.ndarray:
        n = 24
        J, h = _random_symmetric(n, density=0.2, seed=31)
        engine = NaturalAnnealingEngine(
            model=DSGLModel(J=J, h=h), backend="dense", seed=7
        )
        rng = np.random.default_rng(44)
        observed = np.sort(rng.choice(n, size=6, replace=False))
        values = rng.normal(size=(4, observed.size))
        for delta in delta_stream(
            engine.operator, seed=55, windows=3, edges=3
        ):
            engine.apply_delta(delta)
        result = infer_batch_sharded(
            engine, observed, values, duration=5.0,
            workers=workers, shards=2,
        )
        return result.predictions

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_post_delta_inference_identical_across_workers(
        self, start_method, monkeypatch
    ):
        """After a delta stream, sharded inference returns the same bits
        whether the pool forks, spawns, or never leaves the process."""
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        monkeypatch.setenv(START_METHOD_ENV, start_method)
        serial = self._streamed_predictions(workers=1)
        pooled = self._streamed_predictions(workers=2)
        assert np.array_equal(serial, pooled)
