"""Tests of the circuit ODE simulator."""

import numpy as np
import pytest

from repro.core import (
    CircuitSimulator,
    IntegrationConfig,
    RealValuedHamiltonian,
    Trajectory,
    symmetrize_coupling,
)


def _system(n=6, seed=0):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.4)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return RealValuedHamiltonian(J, h)


def _drift(ham):
    return lambda sigma: ham.J @ sigma + ham.h * sigma


class TestIntegrationConfig:
    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError, match="dt"):
            IntegrationConfig(dt=0.0)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            IntegrationConfig(method="rk2")

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError, match="noise"):
            IntegrationConfig(node_noise_std=-0.1)

    def test_rejects_bad_record_every(self):
        with pytest.raises(ValueError, match="record_every"):
            IntegrationConfig(record_every=0)

    def test_rejects_negative_divergence_check(self):
        with pytest.raises(ValueError, match="divergence_check_every"):
            IntegrationConfig(divergence_check_every=-1)


class TestClampPairValidation:
    def test_half_specified_pair_rejected(self):
        """Regression: ``clamp_index`` without ``clamp_value`` slipped into
        ``np.asarray(None)`` (a NaN 0-d array) and failed later with a
        misleading shape mismatch."""
        sim = CircuitSimulator(IntegrationConfig(dt=0.05))
        with pytest.raises(ValueError, match="together"):
            sim.run(lambda s: -s, np.zeros(4), 1.0, clamp_index=np.asarray([0]))
        with pytest.raises(ValueError, match="together"):
            sim.run(
                lambda s: -s, np.zeros(4), 1.0, clamp_value=np.asarray([0.5])
            )

    def test_batch_path_rejects_half_specified_pair(self):
        sim = CircuitSimulator(IntegrationConfig(dt=0.05))
        with pytest.raises(ValueError, match="together"):
            sim.run_batch(
                lambda s: -s, np.zeros((2, 4)), 1.0,
                clamp_index=np.asarray([0]),
            )


class TestCircuitSimulator:
    def test_converges_to_algebraic_fixed_point(self):
        ham = _system()
        clamp_index = np.asarray([0, 2])
        clamp_value = np.asarray([0.5, -0.3])
        expected = ham.fixed_point(clamp_index, clamp_value)
        sim = CircuitSimulator(IntegrationConfig(dt=0.02, rail=None))
        rng = np.random.default_rng(1)
        sigma0 = rng.normal(size=6)
        run = sim.run(
            _drift(ham), sigma0, 200.0, clamp_index, clamp_value, ham.energy
        )
        assert np.allclose(run.final_state, expected, atol=1e-6)

    def test_energy_monotonically_decreases(self):
        ham = _system(seed=2)
        sim = CircuitSimulator(IntegrationConfig(dt=0.02, rail=None))
        run = sim.run(
            _drift(ham),
            np.random.default_rng(3).normal(size=6),
            100.0,
            energy=ham.energy,
        )
        assert np.all(np.diff(run.energies) <= 1e-9)

    def test_rk4_matches_euler_at_convergence(self):
        ham = _system(seed=4)
        clamp_index = np.asarray([1])
        clamp_value = np.asarray([0.7])
        sigma0 = np.zeros(6)
        euler = CircuitSimulator(IntegrationConfig(dt=0.01, method="euler")).run(
            _drift(ham), sigma0, 150.0, clamp_index, clamp_value
        )
        rk4 = CircuitSimulator(IntegrationConfig(dt=0.05, method="rk4")).run(
            _drift(ham), sigma0, 150.0, clamp_index, clamp_value
        )
        assert np.allclose(euler.final_state, rk4.final_state, atol=1e-4)

    def test_rail_saturation(self):
        # A strongly driven node cannot exceed the rail.
        drift = lambda sigma: np.full_like(sigma, 10.0)
        sim = CircuitSimulator(IntegrationConfig(dt=0.1, rail=1.0))
        run = sim.run(drift, np.zeros(3), 50.0)
        assert np.all(run.states <= 1.0 + 1e-12)
        assert np.allclose(run.final_state, 1.0)

    def test_clamped_nodes_never_move(self):
        ham = _system(seed=5)
        clamp_index = np.asarray([0, 4])
        clamp_value = np.asarray([0.2, -0.9])
        sim = CircuitSimulator(IntegrationConfig(dt=0.05))
        run = sim.run(_drift(ham), np.zeros(6), 50.0, clamp_index, clamp_value)
        assert np.allclose(run.states[:, clamp_index], clamp_value)

    def test_noise_injection_perturbs_trajectory(self):
        ham = _system(seed=6)
        quiet = CircuitSimulator(
            IntegrationConfig(dt=0.05), rng=np.random.default_rng(0)
        ).run(_drift(ham), np.zeros(6), 20.0)
        noisy = CircuitSimulator(
            IntegrationConfig(dt=0.05, node_noise_std=0.1),
            rng=np.random.default_rng(0),
        ).run(_drift(ham), np.zeros(6), 20.0)
        assert not np.allclose(quiet.final_state, noisy.final_state)

    def test_record_every_thins_trajectory(self):
        ham = _system(seed=7)
        dense = CircuitSimulator(IntegrationConfig(dt=0.1)).run(
            _drift(ham), np.zeros(6), 10.0
        )
        thin = CircuitSimulator(IntegrationConfig(dt=0.1, record_every=10)).run(
            _drift(ham), np.zeros(6), 10.0
        )
        assert len(thin.times) < len(dense.times)
        assert np.allclose(thin.final_state, dense.final_state)

    def test_clamp_validation(self):
        sim = CircuitSimulator()
        with pytest.raises(ValueError, match="equal shapes"):
            sim.run(lambda s: -s, np.zeros(4), 1.0, np.asarray([0]), np.zeros(2))
        with pytest.raises(ValueError, match="out of range"):
            sim.run(lambda s: -s, np.zeros(4), 1.0, np.asarray([9]), np.zeros(1))

    def test_perturbed_coupling_symmetric(self):
        sim = CircuitSimulator(IntegrationConfig(coupling_noise_std=0.1))
        J = symmetrize_coupling(np.random.default_rng(8).normal(size=(5, 5)))
        noisy = sim.perturbed_coupling(J)
        assert np.allclose(noisy, noisy.T)
        assert np.allclose(np.diag(noisy), 0.0)
        assert not np.allclose(noisy, J)

    def test_perturbed_coupling_identity_without_noise(self):
        sim = CircuitSimulator()
        J = symmetrize_coupling(np.random.default_rng(9).normal(size=(4, 4)))
        assert sim.perturbed_coupling(J) is J


class TestTrajectory:
    def test_settle_time_monotone_in_tolerance(self):
        ham = _system(seed=10)
        sim = CircuitSimulator(IntegrationConfig(dt=0.05))
        run = sim.run(
            _drift(ham),
            np.random.default_rng(11).normal(size=6),
            100.0,
            np.asarray([0]),
            np.asarray([0.5]),
        )
        loose = run.settle_time(tolerance=0.1)
        tight = run.settle_time(tolerance=1e-4)
        assert loose <= tight

    def test_final_energy_matches_states(self):
        ham = _system(seed=12)
        sim = CircuitSimulator(IntegrationConfig(dt=0.05))
        run = sim.run(_drift(ham), np.zeros(6), 10.0, energy=ham.energy)
        assert np.isclose(run.final_energy, ham.energy(run.final_state))


def _batch_drift(ham):
    return lambda states: states @ ham.J + ham.h * states


class TestBatchedIntegration:
    @pytest.mark.parametrize("method", ["euler", "rk4"])
    def test_run_batch_matches_per_sample_runs(self, method):
        ham = _system(seed=20)
        rng = np.random.default_rng(21)
        sigma0 = rng.uniform(-1, 1, size=(4, 6))
        clamp_index = np.asarray([1, 3])
        clamp_value = np.asarray([0.4, -0.2])
        config = IntegrationConfig(dt=0.05, method=method)

        batch = CircuitSimulator(config).run_batch(
            _batch_drift(ham), sigma0, 20.0, clamp_index, clamp_value,
            energy=ham.energy_batch,
        )
        for b in range(4):
            single = CircuitSimulator(config).run(
                _drift(ham), sigma0[b], 20.0, clamp_index, clamp_value,
                energy=ham.energy,
            )
            assert np.allclose(batch.states[:, b, :], single.states, atol=1e-10)
            assert np.allclose(batch.energies[:, b], single.energies, atol=1e-8)
        assert np.array_equal(batch.times, single.times)

    def test_shapes_and_sample_view(self):
        ham = _system(seed=22)
        batch = CircuitSimulator(IntegrationConfig(dt=0.1)).run_batch(
            _batch_drift(ham), np.zeros((3, 6)), 5.0, energy=ham.energy_batch
        )
        T = len(batch.times)
        assert batch.batch_size == 3
        assert batch.states.shape == (T, 3, 6)
        assert batch.energies.shape == (T, 3)
        assert batch.final_states.shape == (3, 6)
        assert batch.final_energies.shape == (3,)
        member = batch.sample(1)
        assert np.array_equal(member.states, batch.states[:, 1, :])
        assert np.array_equal(member.energies, batch.energies[:, 1])

    def test_per_sample_clamp_values(self):
        ham = _system(seed=23)
        clamp_index = np.asarray([0, 5])
        clamp_value = np.asarray([[0.1, -0.1], [0.8, -0.8], [0.0, 0.5]])
        batch = CircuitSimulator(IntegrationConfig(dt=0.05)).run_batch(
            _batch_drift(ham), np.zeros((3, 6)), 10.0, clamp_index, clamp_value
        )
        assert np.allclose(batch.states[:, :, clamp_index], clamp_value)

    def test_validates_batch_shapes(self):
        sim = CircuitSimulator()
        with pytest.raises(ValueError, match="batch"):
            sim.run_batch(lambda s: -s, np.zeros(6), 1.0)
        with pytest.raises(ValueError, match="per-sample clamp_value"):
            sim.run_batch(
                lambda s: -s,
                np.zeros((3, 6)),
                1.0,
                np.asarray([0]),
                np.zeros((2, 1)),
            )


class TestClampNoiseInteraction:
    """Clamps must be re-asserted after noise injection and at every
    intermediate RK4 stage (the observed capacitors are driven)."""

    @pytest.mark.parametrize("method", ["euler", "rk4"])
    def test_recorded_states_hold_clamps_under_noise(self, method):
        ham = _system(seed=24)
        clamp_index = np.asarray([0, 2])
        clamp_value = np.asarray([0.3, -0.6])
        sim = CircuitSimulator(
            IntegrationConfig(dt=0.05, method=method, node_noise_std=0.2),
            rng=np.random.default_rng(25),
        )
        run = sim.run(_drift(ham), np.zeros(6), 20.0, clamp_index, clamp_value)
        # Exact equality: noise must never displace a clamped node.
        assert np.all(run.states[:, clamp_index] == clamp_value)

    def test_rk4_stages_see_clamped_states(self):
        ham = _system(seed=26)
        clamp_index = np.asarray([1, 4])
        clamp_value = np.asarray([0.5, -0.5])
        seen = []

        def recording_drift(sigma):
            seen.append(np.array(sigma))
            return ham.J @ sigma + ham.h * sigma

        sim = CircuitSimulator(
            IntegrationConfig(dt=0.1, method="rk4", node_noise_std=0.1),
            rng=np.random.default_rng(27),
        )
        sim.run(recording_drift, np.zeros(6), 5.0, clamp_index, clamp_value)
        assert len(seen) >= 4  # four stages per step
        for state in seen:
            assert np.all(state[clamp_index] == clamp_value)

    def test_batched_noise_respects_clamps(self):
        ham = _system(seed=28)
        clamp_index = np.asarray([3])
        clamp_value = np.asarray([[0.9], [-0.9]])
        sim = CircuitSimulator(
            IntegrationConfig(dt=0.05, method="rk4", node_noise_std=0.3),
            rng=np.random.default_rng(29),
        )
        batch = sim.run_batch(
            _batch_drift(ham), np.zeros((2, 6)), 10.0, clamp_index, clamp_value
        )
        assert np.all(batch.states[:, :, clamp_index] == clamp_value[None])


class TestPerturbedCouplingInvariants:
    def test_noisy_coupling_keeps_matrix_invariants(self):
        sim = CircuitSimulator(
            IntegrationConfig(coupling_noise_std=0.2),
            rng=np.random.default_rng(30),
        )
        J = symmetrize_coupling(np.random.default_rng(31).normal(size=(8, 8)))
        for _ in range(5):  # several draws, all must stay valid couplings
            noisy = sim.perturbed_coupling(J)
            assert np.array_equal(noisy, noisy.T)
            assert np.all(np.diag(noisy) == 0.0)
            # Multiplicative noise preserves the sparsity pattern.
            assert np.array_equal(noisy == 0.0, J == 0.0)


class TestSettleTimeNeverSettled:
    def test_oscillation_until_final_sample_returns_full_duration(self):
        """Regression: a trajectory that oscillates until the very last
        recorded sample must report the full duration, not a bogus early
        settle point."""
        times = np.arange(6, dtype=float)
        base = np.zeros((6, 3))
        base[:, 0] = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0]  # flips at every sample
        trajectory = Trajectory(
            times=times, states=base, energies=np.zeros(6)
        )
        assert trajectory.settle_time(tolerance=1e-3) == times[-1]
        assert not trajectory.settled(tolerance=1e-3)

    def test_settled_trajectory_reports_early_time(self):
        times = np.arange(5, dtype=float)
        states = np.zeros((5, 2))
        states[0] = [1.0, 1.0]  # settles right after the first sample
        trajectory = Trajectory(
            times=times, states=states, energies=np.zeros(5)
        )
        assert trajectory.settle_time(tolerance=1e-3) == times[1]
        assert trajectory.settled(tolerance=1e-3)

    def test_constant_trajectory_settles_immediately(self):
        trajectory = Trajectory(
            times=np.arange(4, dtype=float),
            states=np.ones((4, 2)),
            energies=np.zeros(4),
        )
        assert trajectory.settle_time() == 0.0
        assert trajectory.settled()
