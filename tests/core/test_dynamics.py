"""Tests of the circuit ODE simulator."""

import numpy as np
import pytest

from repro.core import (
    CircuitSimulator,
    IntegrationConfig,
    RealValuedHamiltonian,
    symmetrize_coupling,
)


def _system(n=6, seed=0):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.4)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return RealValuedHamiltonian(J, h)


def _drift(ham):
    return lambda sigma: ham.J @ sigma + ham.h * sigma


class TestIntegrationConfig:
    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError, match="dt"):
            IntegrationConfig(dt=0.0)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            IntegrationConfig(method="rk2")

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError, match="noise"):
            IntegrationConfig(node_noise_std=-0.1)

    def test_rejects_bad_record_every(self):
        with pytest.raises(ValueError, match="record_every"):
            IntegrationConfig(record_every=0)


class TestCircuitSimulator:
    def test_converges_to_algebraic_fixed_point(self):
        ham = _system()
        clamp_index = np.asarray([0, 2])
        clamp_value = np.asarray([0.5, -0.3])
        expected = ham.fixed_point(clamp_index, clamp_value)
        sim = CircuitSimulator(IntegrationConfig(dt=0.02, rail=None))
        rng = np.random.default_rng(1)
        sigma0 = rng.normal(size=6)
        run = sim.run(
            _drift(ham), sigma0, 200.0, clamp_index, clamp_value, ham.energy
        )
        assert np.allclose(run.final_state, expected, atol=1e-6)

    def test_energy_monotonically_decreases(self):
        ham = _system(seed=2)
        sim = CircuitSimulator(IntegrationConfig(dt=0.02, rail=None))
        run = sim.run(
            _drift(ham),
            np.random.default_rng(3).normal(size=6),
            100.0,
            energy=ham.energy,
        )
        assert np.all(np.diff(run.energies) <= 1e-9)

    def test_rk4_matches_euler_at_convergence(self):
        ham = _system(seed=4)
        clamp_index = np.asarray([1])
        clamp_value = np.asarray([0.7])
        sigma0 = np.zeros(6)
        euler = CircuitSimulator(IntegrationConfig(dt=0.01, method="euler")).run(
            _drift(ham), sigma0, 150.0, clamp_index, clamp_value
        )
        rk4 = CircuitSimulator(IntegrationConfig(dt=0.05, method="rk4")).run(
            _drift(ham), sigma0, 150.0, clamp_index, clamp_value
        )
        assert np.allclose(euler.final_state, rk4.final_state, atol=1e-4)

    def test_rail_saturation(self):
        # A strongly driven node cannot exceed the rail.
        drift = lambda sigma: np.full_like(sigma, 10.0)
        sim = CircuitSimulator(IntegrationConfig(dt=0.1, rail=1.0))
        run = sim.run(drift, np.zeros(3), 50.0)
        assert np.all(run.states <= 1.0 + 1e-12)
        assert np.allclose(run.final_state, 1.0)

    def test_clamped_nodes_never_move(self):
        ham = _system(seed=5)
        clamp_index = np.asarray([0, 4])
        clamp_value = np.asarray([0.2, -0.9])
        sim = CircuitSimulator(IntegrationConfig(dt=0.05))
        run = sim.run(_drift(ham), np.zeros(6), 50.0, clamp_index, clamp_value)
        assert np.allclose(run.states[:, clamp_index], clamp_value)

    def test_noise_injection_perturbs_trajectory(self):
        ham = _system(seed=6)
        quiet = CircuitSimulator(
            IntegrationConfig(dt=0.05), rng=np.random.default_rng(0)
        ).run(_drift(ham), np.zeros(6), 20.0)
        noisy = CircuitSimulator(
            IntegrationConfig(dt=0.05, node_noise_std=0.1),
            rng=np.random.default_rng(0),
        ).run(_drift(ham), np.zeros(6), 20.0)
        assert not np.allclose(quiet.final_state, noisy.final_state)

    def test_record_every_thins_trajectory(self):
        ham = _system(seed=7)
        dense = CircuitSimulator(IntegrationConfig(dt=0.1)).run(
            _drift(ham), np.zeros(6), 10.0
        )
        thin = CircuitSimulator(IntegrationConfig(dt=0.1, record_every=10)).run(
            _drift(ham), np.zeros(6), 10.0
        )
        assert len(thin.times) < len(dense.times)
        assert np.allclose(thin.final_state, dense.final_state)

    def test_clamp_validation(self):
        sim = CircuitSimulator()
        with pytest.raises(ValueError, match="equal shapes"):
            sim.run(lambda s: -s, np.zeros(4), 1.0, np.asarray([0]), np.zeros(2))
        with pytest.raises(ValueError, match="out of range"):
            sim.run(lambda s: -s, np.zeros(4), 1.0, np.asarray([9]), np.zeros(1))

    def test_perturbed_coupling_symmetric(self):
        sim = CircuitSimulator(IntegrationConfig(coupling_noise_std=0.1))
        J = symmetrize_coupling(np.random.default_rng(8).normal(size=(5, 5)))
        noisy = sim.perturbed_coupling(J)
        assert np.allclose(noisy, noisy.T)
        assert np.allclose(np.diag(noisy), 0.0)
        assert not np.allclose(noisy, J)

    def test_perturbed_coupling_identity_without_noise(self):
        sim = CircuitSimulator()
        J = symmetrize_coupling(np.random.default_rng(9).normal(size=(4, 4)))
        assert sim.perturbed_coupling(J) is J


class TestTrajectory:
    def test_settle_time_monotone_in_tolerance(self):
        ham = _system(seed=10)
        sim = CircuitSimulator(IntegrationConfig(dt=0.05))
        run = sim.run(
            _drift(ham),
            np.random.default_rng(11).normal(size=6),
            100.0,
            np.asarray([0]),
            np.asarray([0.5]),
        )
        loose = run.settle_time(tolerance=0.1)
        tight = run.settle_time(tolerance=1e-4)
        assert loose <= tight

    def test_final_energy_matches_states(self):
        ham = _system(seed=12)
        sim = CircuitSimulator(IntegrationConfig(dt=0.05))
        run = sim.run(_drift(ham), np.zeros(6), 10.0, energy=ham.energy)
        assert np.isclose(run.final_energy, ham.energy(run.final_state))
