"""Tests of annealing schedules and controllers."""

import numpy as np
import pytest

from repro.core import (
    AnnealingController,
    ConstantSchedule,
    CosineSchedule,
    GeometricSchedule,
    LinearSchedule,
    schedule_from_name,
)


class TestSchedules:
    def test_linear_endpoints(self):
        schedule = LinearSchedule(start=1.0, end=0.2)
        assert np.isclose(schedule(0.0), 1.0)
        assert np.isclose(schedule(1.0), 0.2)
        assert np.isclose(schedule(0.5), 0.6)

    def test_linear_clamps_progress(self):
        schedule = LinearSchedule(start=1.0, end=0.0)
        assert np.isclose(schedule(-1.0), 1.0)
        assert np.isclose(schedule(2.0), 0.0)

    def test_geometric_endpoints_and_monotonicity(self):
        schedule = GeometricSchedule(start=2.0, end=0.02)
        assert np.isclose(schedule(0.0), 2.0)
        assert np.isclose(schedule(1.0), 0.02)
        values = [schedule(p) for p in np.linspace(0, 1, 11)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            GeometricSchedule(start=0.0, end=1.0)

    def test_constant(self):
        schedule = ConstantSchedule(level=0.3)
        assert schedule(0.0) == schedule(1.0) == 0.3

    def test_cosine_endpoints_and_monotonicity(self):
        schedule = CosineSchedule(start=1.0, end=0.1)
        assert np.isclose(schedule(0.0), 1.0)
        assert np.isclose(schedule(1.0), 0.1)
        assert np.isclose(schedule(0.5), 0.55)
        values = [schedule(p) for p in np.linspace(0, 1, 11)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_cosine_is_flat_at_the_endpoints(self):
        """The slow-start/slow-stop property linear ramps lack: the decay
        over the first tenth of the run is far smaller than the decay
        over the middle tenth."""
        schedule = CosineSchedule(start=1.0, end=0.0)
        early_drop = schedule(0.0) - schedule(0.1)
        middle_drop = schedule(0.45) - schedule(0.55)
        assert early_drop < middle_drop / 3


class TestScheduleFromName:
    def test_resolves_every_name(self):
        assert isinstance(schedule_from_name("linear"), LinearSchedule)
        assert isinstance(schedule_from_name("cosine"), CosineSchedule)
        assert isinstance(schedule_from_name("constant"), ConstantSchedule)
        assert isinstance(
            schedule_from_name("geometric", end=0.01), GeometricSchedule
        )

    def test_names_are_case_insensitive(self):
        assert isinstance(schedule_from_name(" Cosine "), CosineSchedule)

    def test_geometric_zero_end_is_bumped(self):
        # Name-driven construction must stay total: the geometric
        # schedule cannot take end=0, so the factory bumps it.
        schedule = schedule_from_name("geometric", start=1.0, end=0.0)
        assert schedule(1.0) > 0.0

    def test_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="schedule"):
            schedule_from_name("quantum")


class TestController:
    def test_perturbs_only_free_nodes(self):
        controller = AnnealingController(
            schedule=ConstantSchedule(level=0.5), rng=np.random.default_rng(0)
        )
        sigma = np.zeros(6)
        free = np.asarray([True, True, False, False, True, False])
        kicked = controller.perturb(sigma, progress=0.0, free_mask=free)
        assert np.all(kicked[~free] == 0.0)
        assert np.any(kicked[free] != 0.0)

    def test_zero_amplitude_is_identity(self):
        controller = AnnealingController(schedule=ConstantSchedule(level=0.0))
        sigma = np.random.default_rng(1).normal(size=5)
        out = controller.perturb(sigma, 0.5, np.ones(5, dtype=bool))
        assert out is sigma

    def test_amplitude_decays_with_progress(self):
        controller = AnnealingController(
            schedule=LinearSchedule(start=1.0, end=0.0),
            rng=np.random.default_rng(2),
        )
        free = np.ones(200, dtype=bool)
        early = controller.perturb(np.zeros(200), 0.0, free)
        controller.rng = np.random.default_rng(2)
        late = controller.perturb(np.zeros(200), 0.9, free)
        assert np.std(early) > np.std(late)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            AnnealingController(schedule=ConstantSchedule(0.1), interval=0.0)
