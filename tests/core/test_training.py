"""Tests of the training fitters (Eq. 10 regression, precision, CONCORD)."""

import numpy as np
import pytest

from repro.core import (
    NaturalAnnealingEngine,
    TrainingConfig,
    fit_precision,
    fit_precision_masked,
    fit_regression,
    normalization_stats,
    regression_loss,
    rmse,
)


class TestTrainingConfig:
    def test_rejects_negative_ridge(self):
        with pytest.raises(ValueError, match="ridge"):
            TrainingConfig(ridge=-1.0)

    def test_rejects_bad_rail_fraction(self):
        with pytest.raises(ValueError, match="rail"):
            TrainingConfig(target_rail_fraction=0.0)

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError, match="margin"):
            TrainingConfig(margin=-0.1)


class TestNormalizationStats:
    def test_maps_std_to_rail_fraction(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(3.0, 2.0, size=(5000, 4))
        mean, scale = normalization_stats(samples, target_rail_fraction=0.25)
        z = (samples - mean) / scale
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 0.25, atol=1e-9)

    def test_constant_column_gets_unit_scale(self):
        samples = np.ones((10, 2))
        _mean, scale = normalization_stats(samples, 0.3)
        assert np.all(np.isfinite(scale)) and np.all(scale > 0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="num_samples"):
            normalization_stats(np.zeros(5))


class TestFitPrecision:
    def test_model_is_convex(self, gaussian_samples, trained_model):
        assert trained_model.convexity_margin() > 0

    def test_predictions_beat_marginal_baseline(self, gaussian_samples, trained_model):
        samples, cov = gaussian_samples
        rng = np.random.default_rng(42)
        test = rng.multivariate_normal(np.zeros(10), cov, size=200)
        engine = NaturalAnnealingEngine(trained_model)
        observed = np.arange(6)
        predictions = np.stack(
            [
                engine.infer_equilibrium(observed, s[observed]).prediction
                for s in test
            ]
        )
        targets = test[:, 6:]
        model_rmse = rmse(predictions, targets)
        marginal_rmse = rmse(np.zeros_like(targets), targets)
        assert model_rmse < 0.95 * marginal_rmse

    def test_prediction_approaches_gaussian_conditional(self, gaussian_samples):
        """The clamped fixed point must match the optimal linear estimate
        of the generating Gaussian in the large-sample limit."""
        samples, cov = gaussian_samples
        model = fit_precision(samples, TrainingConfig(ridge=1e-4, margin=1e-6))
        engine = NaturalAnnealingEngine(model)
        observed = np.arange(5)
        hidden = np.arange(5, 10)
        x_obs = np.random.default_rng(1).normal(size=5)
        conditional = cov[np.ix_(hidden, observed)] @ np.linalg.solve(
            cov[np.ix_(observed, observed)], x_obs
        )
        prediction = engine.infer_equilibrium(observed, x_obs).prediction
        assert np.allclose(prediction, conditional, atol=0.25)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="two samples"):
            fit_precision(np.zeros((1, 3)))

    def test_metadata_recorded(self, gaussian_samples):
        samples, _ = gaussian_samples
        model = fit_precision(samples, metadata={"dataset": "unit"})
        assert model.metadata["fitter"] == "precision"
        assert model.metadata["dataset"] == "unit"


class TestFitPrecisionMasked:
    def test_support_respected(self, gaussian_samples):
        samples, _ = gaussian_samples
        n = samples.shape[1]
        rng = np.random.default_rng(3)
        mask = rng.random((n, n)) < 0.3
        mask = mask | mask.T
        np.fill_diagonal(mask, False)
        model = fit_precision_masked(samples, mask)
        assert np.all(model.J[~mask] == 0.0)
        assert model.convexity_margin() > 0

    def test_full_mask_approaches_dense_fit(self, gaussian_samples):
        samples, _ = gaussian_samples
        n = samples.shape[1]
        mask = ~np.eye(n, dtype=bool)
        dense = fit_precision(samples, TrainingConfig(ridge=1e-2))
        masked = fit_precision_masked(samples, mask, TrainingConfig(ridge=1e-2))
        # Same optimum family: predictions should agree closely.
        engine_a = NaturalAnnealingEngine(dense)
        engine_b = NaturalAnnealingEngine(masked)
        observed = np.arange(6)
        x = samples[0][observed]
        pa = engine_a.infer_equilibrium(observed, x).prediction
        pb = engine_b.infer_equilibrium(observed, x).prediction
        assert np.allclose(pa, pb, atol=0.3)

    def test_nested_supports_do_not_degrade_training_fit(self, traffic_setup):
        """CONCORD on a superset support must fit training data at least as
        well — the monotonicity behind Fig. 10."""
        from repro.decompose import prune_to_density

        model = traffic_setup["model"]
        samples = traffic_setup["samples"]
        small = prune_to_density(model.J, 0.05) != 0
        large = small | (prune_to_density(model.J, 0.15) != 0)
        cfg = TrainingConfig(ridge=1e-2)
        m_small = fit_precision_masked(samples, small, cfg)
        m_large = fit_precision_masked(samples, large, cfg)

        def training_objective(m):
            z = (samples - m.mean) / m.scale
            return regression_loss(m.J, m.h, z)

        assert training_objective(m_large) <= training_objective(m_small) * 1.05

    def test_empty_mask_yields_diagonal_model(self, gaussian_samples):
        samples, _ = gaussian_samples
        n = samples.shape[1]
        model = fit_precision_masked(samples, np.zeros((n, n), dtype=bool))
        assert np.count_nonzero(model.J) == 0
        assert np.all(model.h < 0)

    def test_mask_shape_validated(self, gaussian_samples):
        samples, _ = gaussian_samples
        with pytest.raises(ValueError, match="mask"):
            fit_precision_masked(samples, np.zeros((3, 3), dtype=bool))


class TestFitRegression:
    def test_learns_gaussian_structure(self, gaussian_samples):
        samples, _ = gaussian_samples
        model = fit_regression(
            samples[:400], TrainingConfig(epochs=30, lr=0.05, seed=0)
        )
        assert model.convexity_margin() > 0
        # The training loss of the fitted model beats the all-zero-J model.
        z = (samples[:400] - model.mean) / model.scale
        fitted = regression_loss(model.J, model.h, z)
        null = regression_loss(np.zeros_like(model.J), model.h, z)
        assert fitted < null

    def test_mask_respected(self, gaussian_samples):
        samples, _ = gaussian_samples
        n = samples.shape[1]
        mask = np.zeros((n, n), dtype=bool)
        mask[0, 1] = mask[1, 0] = True
        model = fit_regression(
            samples[:200], TrainingConfig(epochs=5), mask=mask
        )
        off = model.J.copy()
        off[0, 1] = off[1, 0] = 0.0
        assert np.count_nonzero(off) == 0

    def test_warm_start_reuses_normalization(self, gaussian_samples, trained_model):
        samples, _ = gaussian_samples
        tuned = fit_regression(
            samples[:200], TrainingConfig(epochs=2), init=trained_model
        )
        assert np.allclose(tuned.mean, trained_model.mean)
        assert np.allclose(tuned.scale, trained_model.scale)

    def test_h_stays_negative(self, gaussian_samples):
        samples, _ = gaussian_samples
        model = fit_regression(samples[:100], TrainingConfig(epochs=3))
        assert np.all(model.h < 0)
