"""Tests of natural-annealing inference (Sec. III.C)."""

import numpy as np
import pytest

from repro.core import (
    IntegrationConfig,
    NaturalAnnealingEngine,
    symmetrize_coupling,
)
from repro.core.model import DSGLModel


def _engine(seed=0, **config_kwargs):
    rng = np.random.default_rng(seed)
    n = 8
    J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.5)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    model = DSGLModel(
        J=J,
        h=h,
        mean=rng.normal(size=n),
        scale=rng.uniform(0.5, 1.5, size=n),
    )
    return NaturalAnnealingEngine(
        model, config=IntegrationConfig(dt=0.02, **config_kwargs)
    )


class TestEquilibriumInference:
    def test_prediction_matches_direct_solve(self):
        engine = _engine()
        model = engine.model
        observed = np.asarray([0, 2, 5])
        raw = np.asarray([1.0, -0.5, 0.3])
        result = engine.infer_equilibrium(observed, raw)
        normalized = (raw - model.mean[observed]) / model.scale[observed]
        expected_state = model.hamiltonian().fixed_point(observed, normalized)
        assert np.allclose(result.state, expected_state)
        free = np.setdiff1d(np.arange(8), observed)
        expected = expected_state[free] * model.scale[free] + model.mean[free]
        assert np.allclose(result.prediction, expected)

    def test_infinite_annealing_time(self):
        engine = _engine()
        result = engine.infer_equilibrium(np.asarray([0]), np.asarray([1.0]))
        assert result.annealing_time_ns == float("inf")
        assert result.trajectory is None


class TestCircuitInference:
    def test_converges_to_equilibrium(self):
        engine = _engine()
        observed = np.asarray([0, 3])
        raw = np.asarray([0.5, -0.2])
        circuit = engine.infer(observed, raw, duration=300.0)
        equilibrium = engine.infer_equilibrium(observed, raw)
        assert np.allclose(circuit.prediction, equilibrium.prediction, atol=1e-4)

    def test_trajectory_recorded_with_decreasing_energy(self):
        engine = _engine(seed=1)
        result = engine.infer(np.asarray([1]), np.asarray([0.4]), duration=50.0)
        assert result.trajectory is not None
        assert np.all(np.diff(result.trajectory.energies) <= 1e-9)

    def test_noise_produces_different_but_close_result(self):
        quiet = _engine(seed=2)
        noisy = _engine(seed=2, node_noise_std=0.02)
        observed = np.asarray([0, 1])
        raw = np.asarray([0.2, 0.6])
        a = quiet.infer(observed, raw, duration=100.0).prediction
        b = noisy.infer(observed, raw, duration=100.0).prediction
        assert not np.allclose(a, b)
        assert np.max(np.abs(a - b)) < 1.0

    def test_seeded_runs_are_reproducible(self):
        engine = _engine(seed=3)
        observed = np.asarray([2])
        raw = np.asarray([0.1])
        a = engine.infer(observed, raw, duration=20.0).prediction
        b = engine.infer(observed, raw, duration=20.0).prediction
        assert np.allclose(a, b)


class TestValidation:
    def test_duplicate_observed_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError, match="duplicates"):
            engine.infer_equilibrium(np.asarray([1, 1]), np.asarray([0.0, 0.0]))

    def test_out_of_range_observed_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError, match="range"):
            engine.infer_equilibrium(np.asarray([99]), np.asarray([0.0]))

    def test_length_mismatch_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError, match="length"):
            engine.infer_equilibrium(np.asarray([0, 1]), np.asarray([0.0]))


class TestEndToEnd:
    def test_traffic_prediction_beats_persistence(self, traffic_setup):
        """DS-GL on the traffic dataset must beat the trivial last-frame
        predictor — the sanity bar for the whole pipeline."""
        from repro.core import rmse

        tw = traffic_setup["windowing"]
        model = traffic_setup["model"]
        test = traffic_setup["test"].series
        engine = NaturalAnnealingEngine(model)
        predictions, persistence, targets = [], [], []
        for t in tw.prediction_frames(test)[:30]:
            history = tw.history_of(test, t)
            predictions.append(
                engine.infer_equilibrium(tw.observed_index, history).prediction
            )
            persistence.append(test[t - 1])
            targets.append(test[t])
        model_rmse = rmse(np.asarray(predictions), np.asarray(targets))
        persistence_rmse = rmse(np.asarray(persistence), np.asarray(targets))
        assert model_rmse < persistence_rmse


class TestFactorizationCache:
    def test_cache_starts_empty_and_grows_per_observed_set(self):
        engine = _engine()
        assert engine.cache_size == 0
        observed = np.asarray([0, 2, 5])
        raw = np.asarray([1.0, -0.5, 0.3])
        engine.infer_equilibrium(observed, raw)
        assert engine.cache_size == 1
        # Same observed set: the factorization is reused, not re-added.
        engine.infer_equilibrium(observed, raw * 0.5)
        assert engine.cache_size == 1
        # A different observed set gets its own entry.
        engine.infer_equilibrium(np.asarray([1, 4]), np.asarray([0.2, 0.1]))
        assert engine.cache_size == 2

    def test_single_and_batch_share_one_entry(self):
        engine = _engine()
        observed = np.asarray([0, 3, 6])
        engine.infer_equilibrium(observed, np.asarray([0.1, 0.2, 0.3]))
        engine.infer_equilibrium_batch(
            observed, np.asarray([[0.1, 0.2, 0.3], [-0.4, 0.0, 0.9]])
        )
        assert engine.cache_size == 1

    def test_clear_cache_resets(self):
        engine = _engine()
        engine.infer_equilibrium(np.asarray([0]), np.asarray([0.5]))
        assert engine.cache_size == 1
        engine.clear_cache()
        assert engine.cache_size == 0

    def test_cached_path_matches_fresh_engine(self):
        """A warm cache must not change results."""
        warm = _engine()
        observed = np.asarray([0, 2, 5])
        first = np.asarray([1.0, -0.5, 0.3])
        second = np.asarray([-0.7, 0.9, 0.0])
        warm.infer_equilibrium(observed, first)
        cached = warm.infer_equilibrium(observed, second).prediction
        fresh = _engine().infer_equilibrium(observed, second).prediction
        assert np.allclose(cached, fresh)


class TestBatchInference:
    def test_equilibrium_batch_matches_per_sample(self):
        engine = _engine()
        observed = np.asarray([0, 2, 5])
        rng = np.random.default_rng(9)
        values = rng.uniform(-1, 1, size=(6, observed.size))
        batched = engine.infer_equilibrium_batch(observed, values)
        assert batched.shape == (6, 8 - observed.size)
        for i in range(values.shape[0]):
            single = engine.infer_equilibrium(observed, values[i]).prediction
            assert np.allclose(batched[i], single, atol=1e-10)

    def test_circuit_batch_converges_to_equilibrium(self):
        engine = _engine()
        observed = np.asarray([0, 3])
        values = np.asarray([[0.5, -0.2], [-0.1, 0.8], [0.0, 0.0]])
        result = engine.infer_batch(observed, values, duration=300.0)
        expected = engine.infer_equilibrium_batch(observed, values)
        assert result.predictions.shape == expected.shape
        assert np.allclose(result.predictions, expected, atol=1e-4)

    def test_batch_trajectory_shapes_and_energy(self):
        engine = _engine(seed=1)
        observed = np.asarray([1, 4])
        values = np.asarray([[0.4, -0.3], [0.2, 0.6]])
        result = engine.infer_batch(observed, values, duration=20.0)
        trajectory = result.trajectory
        assert trajectory.batch_size == 2
        assert trajectory.states.shape[1:] == (2, 8)
        assert trajectory.energies.shape[1] == 2
        # Noiseless annealing descends energy for every sample.
        assert np.all(np.diff(trajectory.energies, axis=0) <= 1e-9)
        assert result.annealing_time_ns == 20.0

    def test_batch_rejects_bad_shapes(self):
        engine = _engine()
        observed = np.asarray([0, 2])
        with pytest.raises(ValueError, match="batch, num_observed"):
            engine.infer_batch(observed, np.asarray([0.1, 0.2]))
        with pytest.raises(ValueError, match="batch, num_observed"):
            engine.infer_equilibrium_batch(observed, np.zeros((3, 5)))


class TestCacheBound:
    """The reduced-system cache is an LRU bounded at cache_capacity.

    Regression tests for the unbounded-growth leak: before the bound, a
    serving workload rotating through distinct observed sets grew one
    SuperLU factorization per set forever.
    """

    def _bounded_engine(self, capacity):
        base = _engine()
        return NaturalAnnealingEngine(
            base.model, config=base.config, cache_capacity=capacity
        )

    def test_cache_plateaus_at_capacity(self):
        engine = self._bounded_engine(3)
        for start in range(10):
            observed = np.asarray([start % 8, (start + 1) % 8])
            engine.infer_equilibrium(observed, np.asarray([0.1, -0.2]))
        assert engine.cache_size == 3
        assert engine.cache_evictions == 10 - 3

    def test_evicted_entry_refactors_and_matches(self):
        engine = self._bounded_engine(1)
        first = (np.asarray([0, 2]), np.asarray([0.5, -0.1]))
        second = (np.asarray([1, 4]), np.asarray([0.3, 0.7]))
        baseline = engine.infer_equilibrium(*first).prediction
        engine.infer_equilibrium(*second)  # evicts the first entry
        assert engine.cache_evictions == 1
        again = engine.infer_equilibrium(*first).prediction
        assert engine.cache_evictions == 2
        assert np.allclose(again, baseline)

    def test_lru_order_keeps_recently_used(self):
        engine = self._bounded_engine(2)
        a = np.asarray([0, 1])
        b = np.asarray([2, 3])
        c = np.asarray([4, 5])
        values = np.asarray([0.1, 0.2])
        engine.infer_equilibrium(a, values)
        engine.infer_equilibrium(b, values)
        engine.infer_equilibrium(a, values)  # refresh a's recency
        engine.infer_equilibrium(c, values)  # must evict b, not a
        hits = engine.cache_hits
        engine.infer_equilibrium(a, values)
        assert engine.cache_hits == hits + 1  # a survived

    def test_capacity_validated(self):
        base = _engine()
        with pytest.raises(ValueError, match="cache_capacity"):
            NaturalAnnealingEngine(base.model, cache_capacity=0)

    def test_clear_cache_resets_eviction_counter(self):
        engine = self._bounded_engine(1)
        engine.infer_equilibrium(np.asarray([0]), np.asarray([0.5]))
        engine.infer_equilibrium(np.asarray([1]), np.asarray([0.5]))
        assert engine.cache_evictions == 1
        engine.clear_cache()
        assert engine.cache_evictions == 0


class TestStaleFingerprint:
    """In-place model mutations must not be served stale cached solves.

    Regression tests for the documented stale-cache hazard: before the
    fingerprint check, mutating ``model.J`` in place after a solve kept
    serving the factorization of the old parameters.
    """

    def test_inplace_mutation_invalidates_equilibrium(self):
        engine = _engine()
        observed = np.asarray([0, 2, 5])
        raw = np.asarray([1.0, -0.5, 0.3])
        stale = engine.infer_equilibrium(observed, raw).prediction
        engine.model.J *= 1.5  # in place, no clear_cache()
        served = engine.infer_equilibrium(observed, raw).prediction
        fresh = NaturalAnnealingEngine(engine.model).infer_equilibrium(
            observed, raw
        ).prediction
        assert engine.stale_invalidations == 1
        assert np.allclose(served, fresh)
        assert not np.allclose(served, stale)

    def test_inplace_mutation_invalidates_operator(self):
        engine = _engine()
        before = engine.operator.to_dense().copy()
        engine.model.J *= 2.0
        after = engine.operator.to_dense()
        assert engine.stale_invalidations == 1
        assert not np.allclose(before, after)

    def test_h_mutation_detected(self):
        engine = _engine()
        observed = np.asarray([1, 3])
        raw = np.asarray([0.4, -0.6])
        engine.infer_equilibrium(observed, raw)
        engine.model.h *= 1.1
        engine.infer_equilibrium(observed, raw)
        assert engine.stale_invalidations == 1
        assert engine.cache_size == 1  # rebuilt against the new h

    def test_unmutated_model_never_invalidates(self):
        engine = _engine()
        observed = np.asarray([0, 4])
        for _ in range(5):
            engine.infer_equilibrium(observed, np.asarray([0.2, 0.8]))
        assert engine.stale_invalidations == 0
        assert engine.cache_hits == 4

    def test_explicit_clear_cache_still_works(self):
        engine = _engine()
        observed = np.asarray([0, 2])
        raw = np.asarray([0.3, 0.1])
        engine.infer_equilibrium(observed, raw)
        engine.model.J *= 1.5
        engine.clear_cache()  # the sample-proof path
        served = engine.infer_equilibrium(observed, raw).prediction
        fresh = NaturalAnnealingEngine(engine.model).infer_equilibrium(
            observed, raw
        ).prediction
        assert np.allclose(served, fresh)
        # clear_cache reset the stored fingerprint, so the rebuild does
        # not double-count as a detected stale invalidation.
        assert engine.stale_invalidations == 0
