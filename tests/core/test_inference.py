"""Tests of natural-annealing inference (Sec. III.C)."""

import numpy as np
import pytest

from repro.core import (
    IntegrationConfig,
    NaturalAnnealingEngine,
    symmetrize_coupling,
)
from repro.core.model import DSGLModel


def _engine(seed=0, **config_kwargs):
    rng = np.random.default_rng(seed)
    n = 8
    J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.5)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    model = DSGLModel(
        J=J,
        h=h,
        mean=rng.normal(size=n),
        scale=rng.uniform(0.5, 1.5, size=n),
    )
    return NaturalAnnealingEngine(
        model, config=IntegrationConfig(dt=0.02, **config_kwargs)
    )


class TestEquilibriumInference:
    def test_prediction_matches_direct_solve(self):
        engine = _engine()
        model = engine.model
        observed = np.asarray([0, 2, 5])
        raw = np.asarray([1.0, -0.5, 0.3])
        result = engine.infer_equilibrium(observed, raw)
        normalized = (raw - model.mean[observed]) / model.scale[observed]
        expected_state = model.hamiltonian().fixed_point(observed, normalized)
        assert np.allclose(result.state, expected_state)
        free = np.setdiff1d(np.arange(8), observed)
        expected = expected_state[free] * model.scale[free] + model.mean[free]
        assert np.allclose(result.prediction, expected)

    def test_infinite_annealing_time(self):
        engine = _engine()
        result = engine.infer_equilibrium(np.asarray([0]), np.asarray([1.0]))
        assert result.annealing_time_ns == float("inf")
        assert result.trajectory is None


class TestCircuitInference:
    def test_converges_to_equilibrium(self):
        engine = _engine()
        observed = np.asarray([0, 3])
        raw = np.asarray([0.5, -0.2])
        circuit = engine.infer(observed, raw, duration=300.0)
        equilibrium = engine.infer_equilibrium(observed, raw)
        assert np.allclose(circuit.prediction, equilibrium.prediction, atol=1e-4)

    def test_trajectory_recorded_with_decreasing_energy(self):
        engine = _engine(seed=1)
        result = engine.infer(np.asarray([1]), np.asarray([0.4]), duration=50.0)
        assert result.trajectory is not None
        assert np.all(np.diff(result.trajectory.energies) <= 1e-9)

    def test_noise_produces_different_but_close_result(self):
        quiet = _engine(seed=2)
        noisy = _engine(seed=2, node_noise_std=0.02)
        observed = np.asarray([0, 1])
        raw = np.asarray([0.2, 0.6])
        a = quiet.infer(observed, raw, duration=100.0).prediction
        b = noisy.infer(observed, raw, duration=100.0).prediction
        assert not np.allclose(a, b)
        assert np.max(np.abs(a - b)) < 1.0

    def test_seeded_runs_are_reproducible(self):
        engine = _engine(seed=3)
        observed = np.asarray([2])
        raw = np.asarray([0.1])
        a = engine.infer(observed, raw, duration=20.0).prediction
        b = engine.infer(observed, raw, duration=20.0).prediction
        assert np.allclose(a, b)


class TestValidation:
    def test_duplicate_observed_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError, match="duplicates"):
            engine.infer_equilibrium(np.asarray([1, 1]), np.asarray([0.0, 0.0]))

    def test_out_of_range_observed_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError, match="range"):
            engine.infer_equilibrium(np.asarray([99]), np.asarray([0.0]))

    def test_length_mismatch_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError, match="length"):
            engine.infer_equilibrium(np.asarray([0, 1]), np.asarray([0.0]))


class TestEndToEnd:
    def test_traffic_prediction_beats_persistence(self, traffic_setup):
        """DS-GL on the traffic dataset must beat the trivial last-frame
        predictor — the sanity bar for the whole pipeline."""
        from repro.core import rmse

        tw = traffic_setup["windowing"]
        model = traffic_setup["model"]
        test = traffic_setup["test"].series
        engine = NaturalAnnealingEngine(model)
        predictions, persistence, targets = [], [], []
        for t in tw.prediction_frames(test)[:30]:
            history = tw.history_of(test, t)
            predictions.append(
                engine.infer_equilibrium(tw.observed_index, history).prediction
            )
            persistence.append(test[t - 1])
            targets.append(test[t])
        model_rmse = rmse(np.asarray(predictions), np.asarray(targets))
        persistence_rmse = rmse(np.asarray(persistence), np.asarray(targets))
        assert model_rmse < persistence_rmse
