"""Tests of the Ising and real-valued Hamiltonians."""

import numpy as np
import pytest

from repro.core import (
    IsingHamiltonian,
    RealValuedHamiltonian,
    symmetrize_coupling,
    validate_coupling,
)


def _random_system(n=8, seed=0):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)))
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return J, h


class TestSymmetrize:
    def test_result_is_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(1)
        J = symmetrize_coupling(rng.normal(size=(6, 6)))
        assert np.allclose(J, J.T)
        assert np.allclose(np.diag(J), 0.0)

    def test_preserves_pairwise_energy(self):
        rng = np.random.default_rng(2)
        raw = rng.normal(size=(5, 5))
        np.fill_diagonal(raw, 0.0)
        sym = symmetrize_coupling(raw)
        sigma = rng.normal(size=5)
        assert np.isclose(sigma @ raw @ sigma, sigma @ sym @ sigma)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            symmetrize_coupling(np.zeros((3, 4)))


class TestValidateCoupling:
    def test_rejects_asymmetric(self):
        J = np.zeros((3, 3))
        J[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            validate_coupling(J, np.zeros(3))

    def test_rejects_nonzero_diagonal(self):
        J = np.eye(3)
        with pytest.raises(ValueError, match="diagonal"):
            validate_coupling(J, np.zeros(3))

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="match"):
            validate_coupling(np.zeros((3, 3)), np.zeros(4))

    def test_returns_copies(self):
        J = np.zeros((2, 2))
        h = np.zeros(2)
        J2, h2 = validate_coupling(J, h)
        J2[0, 1] = 5.0
        h2[0] = 5.0
        assert J[0, 1] == 0.0 and h[0] == 0.0


class TestIsingHamiltonian:
    def test_energy_matches_definition(self):
        J, _ = _random_system()
        h = np.random.default_rng(3).normal(size=8)
        ham = IsingHamiltonian(J, h)
        spins = np.random.default_rng(4).choice([-1.0, 1.0], size=8)
        expected = -sum(
            J[i, j] * spins[i] * spins[j]
            for i in range(8)
            for j in range(8)
            if i != j
        ) - float(h @ spins)
        assert np.isclose(ham.energy(spins), expected)

    def test_gradient_matches_numeric(self):
        J, _ = _random_system(6, seed=5)
        h = np.random.default_rng(6).normal(size=6)
        ham = IsingHamiltonian(J, h)
        sigma = np.random.default_rng(7).normal(size=6)
        grad = ham.gradient(sigma)
        eps = 1e-6
        for i in range(6):
            up = sigma.copy()
            up[i] += eps
            down = sigma.copy()
            down[i] -= eps
            numeric = (ham.energy(up) - ham.energy(down)) / (2 * eps)
            assert np.isclose(grad[i], numeric, atol=1e-5)

    def test_hessian_is_constant_minus_2j(self):
        J, _ = _random_system()
        ham = IsingHamiltonian(J)
        assert np.allclose(ham.hessian(), -2.0 * J)

    def test_default_field_is_zero(self):
        J, _ = _random_system()
        assert np.allclose(IsingHamiltonian(J).h, 0.0)


class TestRealValuedHamiltonian:
    def test_requires_negative_h(self):
        J, _ = _random_system()
        with pytest.raises(ValueError, match="negative"):
            RealValuedHamiltonian(J, np.zeros(8))

    def test_energy_quadratic_term(self):
        J, h = _random_system()
        ham = RealValuedHamiltonian(J, h)
        sigma = np.random.default_rng(8).normal(size=8)
        expected = -float(sigma @ J @ sigma) - float(h @ sigma**2)
        assert np.isclose(ham.energy(sigma), expected)

    def test_gradient_matches_numeric(self):
        J, h = _random_system(seed=9)
        ham = RealValuedHamiltonian(J, h)
        sigma = np.random.default_rng(10).normal(size=8)
        grad = ham.gradient(sigma)
        eps = 1e-6
        for i in range(8):
            up = sigma.copy()
            up[i] += eps
            down = sigma.copy()
            down[i] -= eps
            numeric = (ham.energy(up) - ham.energy(down)) / (2 * eps)
            assert np.isclose(grad[i], numeric, atol=1e-5)

    def test_fixed_point_without_clamp_is_origin(self):
        J, h = _random_system(seed=11)
        ham = RealValuedHamiltonian(J, h)
        assert np.allclose(ham.fixed_point(), 0.0)

    def test_clamped_fixed_point_has_zero_free_gradient(self):
        J, h = _random_system(seed=12)
        ham = RealValuedHamiltonian(J, h)
        clamp_index = np.asarray([0, 3])
        clamp_value = np.asarray([0.5, -0.7])
        sigma = ham.fixed_point(clamp_index, clamp_value)
        assert np.allclose(sigma[clamp_index], clamp_value)
        free = np.setdiff1d(np.arange(8), clamp_index)
        assert np.allclose(ham.gradient(sigma)[free], 0.0, atol=1e-9)

    def test_stability_residual_zero_at_fixed_point(self):
        J, h = _random_system(seed=13)
        ham = RealValuedHamiltonian(J, h)
        sigma = ham.fixed_point(np.asarray([1]), np.asarray([0.4]))
        free = np.setdiff1d(np.arange(8), [1])
        assert np.allclose(ham.stability_residual(sigma)[free], 0.0, atol=1e-9)

    def test_fixed_point_is_energy_minimum_among_perturbations(self):
        J, h = _random_system(seed=14)
        ham = RealValuedHamiltonian(J, h)
        clamp_index = np.asarray([0])
        clamp_value = np.asarray([0.9])
        star = ham.fixed_point(clamp_index, clamp_value)
        base = ham.energy(star)
        rng = np.random.default_rng(15)
        for _ in range(20):
            other = star.copy()
            other[1:] += rng.normal(0, 0.1, size=7)
            assert ham.energy(other) >= base - 1e-10

    def test_clamp_shape_mismatch_raises(self):
        J, h = _random_system()
        ham = RealValuedHamiltonian(J, h)
        with pytest.raises(ValueError, match="equal shapes"):
            ham.fixed_point(np.asarray([0, 1]), np.asarray([1.0]))
