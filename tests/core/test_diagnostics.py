"""Tests of the spectral diagnostics."""

import numpy as np
import pytest

from repro.core import (
    DSGLModel,
    estimate_settling_ns,
    spectrum_report,
    symmetrize_coupling,
)


def _model(coupling_scale=0.3, seed=0, n=8):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)) * coupling_scale)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return DSGLModel(J=J, h=h)


class TestSpectrumReport:
    def test_rates_are_positive_and_ordered(self):
        report = spectrum_report(_model())
        assert 0 < report.slowest_rate <= report.fastest_rate
        assert report.condition_number >= 1.0

    def test_diagonal_system_is_perfectly_conditioned(self):
        model = DSGLModel(J=np.zeros((4, 4)), h=-np.full(4, 2.0))
        report = spectrum_report(model)
        assert np.isclose(report.condition_number, 1.0)
        assert report.coupling_share == 0.0

    def test_stronger_coupling_worsens_conditioning(self):
        weak = spectrum_report(_model(coupling_scale=0.05))
        strong = spectrum_report(_model(coupling_scale=0.8))
        assert strong.condition_number > weak.condition_number

    def test_slowest_rate_is_convexity_margin(self):
        model = _model(seed=3)
        report = spectrum_report(model)
        assert np.isclose(report.slowest_rate, model.convexity_margin())


class TestSettlingEstimate:
    def test_scales_linearly_with_time_constant(self):
        model = _model(seed=1)
        t1 = estimate_settling_ns(model, node_time_constant_ns=1.0)
        t10 = estimate_settling_ns(model, node_time_constant_ns=10.0)
        assert np.isclose(t10, 10.0 * t1)

    def test_scales_linearly_with_decades(self):
        model = _model(seed=2)
        t2 = estimate_settling_ns(model, decades=2.0)
        t4 = estimate_settling_ns(model, decades=4.0)
        assert np.isclose(t4, 2.0 * t2)

    def test_upper_bounds_actual_settling(self, traffic_setup):
        """The estimate is a worst-case bound: the circuit must settle (to
        a loose tolerance) within it."""
        from repro.core import CircuitSimulator, IntegrationConfig

        model = traffic_setup["model"]
        # Normalize conductances so the fastest rate is 1 (tau = 1 ns).
        report = spectrum_report(model)
        scale = 1.0 / report.fastest_rate
        J = model.J * scale
        h = model.h * scale
        estimate = estimate_settling_ns(model, node_time_constant_ns=1.0)
        rng = np.random.default_rng(0)
        sigma0 = rng.uniform(-0.5, 0.5, size=model.n)
        simulator = CircuitSimulator(IntegrationConfig(dt=0.5, rail=None, record_every=50))
        run = simulator.run(
            lambda s: J @ s + h * s, sigma0, float(estimate)
        )
        # Unclamped convex system settles to the origin.
        assert np.max(np.abs(run.final_state)) < 0.02

    def test_validation(self):
        model = _model()
        with pytest.raises(ValueError, match="time_constant"):
            estimate_settling_ns(model, node_time_constant_ns=0.0)
        with pytest.raises(ValueError, match="decades"):
            estimate_settling_ns(model, decades=-1.0)
