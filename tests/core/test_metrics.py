"""Tests of the accuracy metrics."""

import numpy as np
import pytest

from repro.core import mae, mape, r2_score, rmse


class TestRmse:
    def test_perfect_prediction(self):
        x = np.asarray([1.0, 2.0, 3.0])
        assert rmse(x, x) == 0.0

    def test_known_value(self):
        assert np.isclose(rmse(np.asarray([0.0, 0.0]), np.asarray([3.0, 4.0])), np.sqrt(12.5))

    def test_flattens_matrices(self):
        a = np.ones((2, 3))
        b = np.zeros((2, 3))
        assert np.isclose(rmse(a, b), 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="disagree"):
            rmse(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            rmse(np.zeros(0), np.zeros(0))


class TestMae:
    def test_known_value(self):
        assert np.isclose(mae(np.asarray([1.0, -1.0]), np.zeros(2)), 1.0)

    def test_upper_bounds_by_rmse(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert mae(a, b) <= rmse(a, b) + 1e-12


class TestMape:
    def test_known_value(self):
        assert np.isclose(
            mape(np.asarray([1.1, 2.2]), np.asarray([1.0, 2.0])), 0.1
        )

    def test_eps_guards_zero_target(self):
        assert np.isfinite(mape(np.asarray([1.0]), np.asarray([0.0])))


class TestR2:
    def test_perfect_is_one(self):
        x = np.asarray([1.0, 2.0, 3.0])
        assert r2_score(x, x) == 1.0

    def test_mean_predictor_is_zero(self):
        target = np.asarray([1.0, 2.0, 3.0])
        prediction = np.full(3, 2.0)
        assert np.isclose(r2_score(prediction, target), 0.0)

    def test_constant_target_edge_case(self):
        target = np.ones(4)
        assert r2_score(np.ones(4), target) == 1.0
        assert r2_score(np.zeros(4), target) == 0.0
