"""Tests of the DSGLModel container."""

import numpy as np
import pytest

from repro.core import DSGLModel, symmetrize_coupling


def _model(n=6, seed=0, with_norm=True):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)))
    h = -(np.abs(J).sum(axis=1) + 1.0)
    kwargs = {}
    if with_norm:
        kwargs = {
            "mean": rng.normal(size=n),
            "scale": rng.uniform(0.5, 2.0, size=n),
        }
    return DSGLModel(J=J, h=h, metadata={"origin": "test"}, **kwargs)


class TestConstruction:
    def test_symmetrizes_input(self):
        J = np.zeros((3, 3))
        J[0, 1] = 2.0
        model = DSGLModel(J=J, h=-np.ones(3))
        assert np.isclose(model.J[0, 1], 1.0)
        assert np.isclose(model.J[1, 0], 1.0)

    def test_rejects_positive_h(self):
        with pytest.raises(ValueError, match="negative"):
            DSGLModel(J=np.zeros((2, 2)), h=np.asarray([-1.0, 0.0]))

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="disagree"):
            DSGLModel(J=np.zeros((3, 3)), h=-np.ones(2))

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="scale"):
            DSGLModel(
                J=np.zeros((2, 2)),
                h=-np.ones(2),
                scale=np.asarray([1.0, 0.0]),
            )


class TestProperties:
    def test_density_counts_offdiagonal(self):
        J = np.zeros((4, 4))
        J[0, 1] = J[1, 0] = 1.0
        model = DSGLModel(J=J, h=-np.ones(4))
        assert np.isclose(model.density, 2 / 12)

    def test_density_of_dense_model_is_one(self):
        model = _model()
        assert np.isclose(model.density, 1.0)

    def test_stabilized_reaches_margin(self):
        model = _model(seed=1)
        shallow = DSGLModel(J=model.J, h=-np.full(model.n, 1e-3))
        fixed = shallow.stabilized(margin=0.3)
        assert fixed.convexity_margin() >= 0.3 - 1e-9

    def test_with_coupling_preserves_normalization(self):
        model = _model(seed=2)
        other = model.with_coupling(np.zeros_like(model.J))
        assert np.allclose(other.mean, model.mean)
        assert np.allclose(other.scale, model.scale)
        assert other.density == 0.0


class TestNormalization:
    def test_roundtrip(self):
        model = _model(seed=3)
        values = np.random.default_rng(4).normal(size=model.n)
        assert np.allclose(model.denormalize(model.normalize(values)), values)

    def test_identity_without_stats(self):
        model = _model(seed=5, with_norm=False)
        values = np.random.default_rng(6).normal(size=model.n)
        assert np.allclose(model.normalize(values), values)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        model = _model(seed=7)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = DSGLModel.load(path)
        assert np.allclose(loaded.J, model.J)
        assert np.allclose(loaded.h, model.h)
        assert np.allclose(loaded.mean, model.mean)
        assert np.allclose(loaded.scale, model.scale)
        assert loaded.metadata == model.metadata

    def test_save_load_without_normalization(self, tmp_path):
        model = _model(seed=8, with_norm=False)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = DSGLModel.load(path)
        assert loaded.mean is None
        assert loaded.scale is None
