"""Tests of the pluggable coupling-operator backends."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    CouplingOperator,
    DSGLModel,
    NaturalAnnealingEngine,
    RealValuedHamiltonian,
    select_backend,
)
from repro.perf import random_sparse_system

DENSITIES = (0.02, 0.05, 0.20)


def _operators(n, density, seed=0):
    J, h = random_sparse_system(n, density, seed=seed)
    return (
        CouplingOperator(J, h, backend="dense"),
        CouplingOperator(J, h, backend="sparse"),
    )


class TestBackendSelection:
    def test_auto_picks_sparse_for_large_sparse_matrix(self):
        J, h = random_sparse_system(128, 0.05)
        op = CouplingOperator(J, h, backend="auto")
        assert op.backend == "sparse"
        assert select_backend(J) == "sparse"

    def test_auto_picks_dense_for_dense_matrix(self):
        rng = np.random.default_rng(0)
        J = rng.normal(size=(128, 128))
        J = (J + J.T) / 2.0
        np.fill_diagonal(J, 0.0)
        h = -(np.abs(J).sum(axis=1) + 1.0)
        assert CouplingOperator(J, h).backend == "dense"

    def test_auto_picks_dense_below_minimum_size(self):
        J, h = random_sparse_system(16, 0.05)
        assert CouplingOperator(J, h, backend="auto").backend == "dense"

    def test_explicit_override_wins(self):
        J, h = random_sparse_system(16, 0.05)
        assert CouplingOperator(J, h, backend="sparse").backend == "sparse"

    def test_accepts_scipy_sparse_input(self):
        J, h = random_sparse_system(64, 0.1)
        op = CouplingOperator(sp.csr_matrix(J), h, backend="auto")
        assert op.backend == "sparse"
        assert np.allclose(op.to_dense(), J)

    def test_rejects_unknown_backend(self):
        J, h = random_sparse_system(16, 0.5)
        with pytest.raises(ValueError, match="backend"):
            CouplingOperator(J, h, backend="cuda")

    def test_rejects_asymmetric_and_nonzero_diagonal(self):
        J, h = random_sparse_system(16, 0.5)
        bad = J.copy()
        bad[0, 1] += 1.0
        with pytest.raises(ValueError, match="symmetric"):
            CouplingOperator(bad, h)
        bad = J.copy()
        bad[2, 2] = 1.0
        with pytest.raises(ValueError, match="diagonal"):
            CouplingOperator(bad, h)
        with pytest.raises(ValueError, match="length"):
            CouplingOperator(J, h[:-1])


class TestAlgebraParity:
    """Sparse and dense backends must agree on every served operation."""

    @pytest.mark.parametrize("density", DENSITIES)
    def test_matvec_drift_energy_match(self, density):
        dense, sparse = _operators(96, density)
        rng = np.random.default_rng(1)
        single = rng.uniform(-1, 1, size=96)
        batch = rng.uniform(-1, 1, size=(7, 96))
        assert np.allclose(dense.matvec(single), sparse.matvec(single), atol=1e-12)
        assert np.allclose(dense.matvec(batch), sparse.matvec(batch), atol=1e-12)
        assert np.allclose(dense.drift(single), sparse.drift(single), atol=1e-12)
        assert np.allclose(dense.drift(batch), sparse.drift(batch), atol=1e-12)
        assert np.isclose(dense.energy(single), sparse.energy(single), atol=1e-10)
        assert np.allclose(dense.energy(batch), sparse.energy(batch), atol=1e-10)
        assert np.allclose(
            dense.gradient(batch), sparse.gradient(batch), atol=1e-12
        )

    @pytest.mark.parametrize("density", DENSITIES)
    def test_energy_matches_hamiltonian(self, density):
        dense, sparse = _operators(64, density)
        ham = RealValuedHamiltonian(dense.to_dense(), dense.h)
        rng = np.random.default_rng(2)
        states = rng.uniform(-1, 1, size=(5, 64))
        expected = ham.energy_batch(states)
        assert np.allclose(dense.energy(states), expected, atol=1e-10)
        assert np.allclose(sparse.energy(states), expected, atol=1e-10)
        assert np.isclose(dense.energy(states[0]), ham.energy(states[0]))

    @pytest.mark.parametrize("density", DENSITIES)
    def test_reduced_solve_matches_direct_solve(self, density):
        dense, sparse = _operators(96, density)
        observed = np.arange(0, 96, 3)
        free = np.setdiff1d(np.arange(96), observed)
        rng = np.random.default_rng(3)
        clamp = rng.uniform(-1, 1, size=observed.size)
        ham = RealValuedHamiltonian(dense.to_dense(), dense.h)
        expected = ham.fixed_point(observed, clamp)[free]

        for operator in (dense, sparse):
            reduced = operator.reduced_system(free, observed)
            assert np.allclose(reduced.solve(clamp), expected, atol=1e-8)
            # Batched right-hand sides share the factorization.
            batch = np.stack([clamp, 0.5 * clamp, -clamp])
            solved = reduced.solve(batch)
            assert solved.shape == (3, free.size)
            assert np.allclose(solved[0], expected, atol=1e-8)

    def test_reduced_solve_validates_shapes(self):
        dense, _ = _operators(32, 0.2)
        reduced = dense.reduced_system(np.arange(16, 32), np.arange(16))
        with pytest.raises(ValueError, match="observed"):
            reduced.solve(np.zeros(3))
        with pytest.raises(ValueError, match="1-D or 2-D"):
            reduced.solve(np.zeros((2, 2, 2)))


class TestEndToEndBackendParity:
    """Acceptance: sparse predictions match dense within 1e-8 across
    graph densities, on identical seeds."""

    @pytest.mark.parametrize("density", DENSITIES)
    def test_equilibrium_predictions_match(self, density):
        J, h = random_sparse_system(80, density, seed=4)
        model = DSGLModel(J=J, h=h)
        observed = np.arange(0, 80, 2)
        rng = np.random.default_rng(5)
        values = rng.uniform(-1, 1, size=observed.size)

        dense = NaturalAnnealingEngine(model, backend="dense", seed=11)
        sparse = NaturalAnnealingEngine(model, backend="sparse", seed=11)
        pd = dense.infer_equilibrium(observed, values).prediction
        ps = sparse.infer_equilibrium(observed, values).prediction
        assert np.allclose(pd, ps, atol=1e-8)

    @pytest.mark.parametrize("density", DENSITIES)
    def test_circuit_predictions_match(self, density):
        J, h = random_sparse_system(80, density, seed=6)
        model = DSGLModel(J=J, h=h)
        observed = np.arange(0, 80, 2)
        rng = np.random.default_rng(7)
        values = rng.uniform(-1, 1, size=observed.size)

        dense = NaturalAnnealingEngine(model, backend="dense", seed=11)
        sparse = NaturalAnnealingEngine(model, backend="sparse", seed=11)
        pd = dense.infer(observed, values, duration=40.0).prediction
        ps = sparse.infer(observed, values, duration=40.0).prediction
        assert np.allclose(pd, ps, atol=1e-8)


class TestIntrospection:
    def test_density_and_nnz(self):
        J, h = random_sparse_system(64, 0.1, seed=8)
        dense, sparse = (
            CouplingOperator(J, h, backend="dense"),
            CouplingOperator(J, h, backend="sparse"),
        )
        assert np.isclose(dense.density, sparse.density)
        assert dense.nnz == sparse.nnz == np.count_nonzero(J)

    def test_to_dense_is_a_copy(self):
        J, h = random_sparse_system(32, 0.2)
        op = CouplingOperator(J, h, backend="dense")
        out = op.to_dense()
        out[0, 1] = 99.0
        assert op.to_dense()[0, 1] != 99.0
