"""Tests of the stationary-point analysis (the Sec. III.A argument)."""

import numpy as np
import pytest

from repro.core import (
    IsingHamiltonian,
    classify_stationary_points,
    convexity_margin,
    enforce_convexity,
    spectral_abscissa,
    symmetrize_coupling,
)


def test_linear_ising_hessian_is_saddle():
    """The paper's core motivation: diag(J)=0 makes every stationary point
    of the linear-self-reaction Hamiltonian a saddle."""
    rng = np.random.default_rng(0)
    J = symmetrize_coupling(rng.normal(size=(12, 12)))
    report = classify_stationary_points(IsingHamiltonian(J).hessian())
    assert report.kind == "saddle"
    # tr(-2J) = 0: eigenvalues must mix signs.
    assert report.eigenvalues[0] < 0 < report.eigenvalues[-1]


def test_quadratic_self_reaction_creates_minimum():
    rng = np.random.default_rng(1)
    J = symmetrize_coupling(rng.normal(size=(10, 10)))
    h = -(np.abs(J).sum(axis=1) + 0.5)
    hessian = -2.0 * (J + np.diag(h))
    report = classify_stationary_points(hessian)
    assert report.kind == "minimum"


def test_classify_maximum():
    report = classify_stationary_points(-np.eye(4))
    assert report.kind == "maximum"


def test_classify_degenerate():
    report = classify_stationary_points(np.diag([1.0, 0.0, 2.0]))
    assert report.kind == "degenerate"


def test_convexity_margin_diagonal_case():
    J = np.zeros((3, 3))
    h = np.asarray([-2.0, -5.0, -3.0])
    assert np.isclose(convexity_margin(J, h), 2.0)


def test_enforce_convexity_reaches_requested_margin():
    rng = np.random.default_rng(2)
    J = symmetrize_coupling(rng.normal(size=(8, 8)))
    h = -np.ones(8) * 0.1  # far too shallow
    repaired = enforce_convexity(J, h, margin=0.5)
    assert convexity_margin(J, repaired) >= 0.5 - 1e-9
    assert np.all(repaired <= h)  # only deepens


def test_enforce_convexity_noop_when_already_convex():
    J = np.zeros((4, 4))
    h = -np.ones(4)
    assert np.allclose(enforce_convexity(J, h, margin=0.5), h)


def test_enforce_convexity_rejects_bad_margin():
    with pytest.raises(ValueError, match="positive"):
        enforce_convexity(np.zeros((2, 2)), -np.ones(2), margin=0.0)


def test_spectral_abscissa_negative_iff_convex():
    rng = np.random.default_rng(3)
    J = symmetrize_coupling(rng.normal(size=(6, 6)))
    h = -(np.abs(J).sum(axis=1) + 1.0)
    assert spectral_abscissa(J, h) < 0
    assert np.isclose(spectral_abscissa(J, h), -convexity_margin(J, h))


def test_unbounded_h_zero_system_diverges_in_analysis():
    """With h = 0 the abscissa is positive: continuous spins run away."""
    rng = np.random.default_rng(4)
    J = symmetrize_coupling(rng.normal(size=(6, 6)))
    assert spectral_abscissa(J, np.zeros(6)) > 0
