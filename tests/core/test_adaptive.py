"""Tests of adaptive step control and early-exit settling.

Two properties anchor the suite: the adaptive path must land within its
error tolerance of a tight fixed-step reference, and the fixed-step
default path must stay bit-for-bit identical whether or not the new
machinery is armed (early-exit with an unreachable tolerance exercises
the freeze-out code without ever freezing anyone).
"""

import numpy as np
import pytest

from repro import obs
from repro.core import (
    CircuitSimulator,
    IntegrationConfig,
    RealValuedHamiltonian,
    symmetrize_coupling,
)
from repro.core.operators import CouplingOperator


def _system(n=6, seed=0):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.4)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return RealValuedHamiltonian(J, h)


def _drift(ham):
    return lambda sigma: ham.J @ sigma + ham.h * sigma


def _batch_drift(ham):
    return lambda states: states @ ham.J + ham.h * states


class TestAdaptiveConfigValidation:
    def test_rejects_nonpositive_rtol(self):
        with pytest.raises(ValueError, match="rtol"):
            IntegrationConfig(adaptive=True, rtol=0.0)

    def test_rejects_negative_atol(self):
        with pytest.raises(ValueError, match="atol"):
            IntegrationConfig(adaptive=True, atol=-1e-9)

    def test_rejects_nonpositive_dt_min(self):
        with pytest.raises(ValueError, match="dt_min"):
            IntegrationConfig(adaptive=True, dt_min=0.0)

    def test_rejects_dt_min_above_dt_max(self):
        with pytest.raises(ValueError, match="dt_min"):
            IntegrationConfig(adaptive=True, dt_min=1.0, dt_max=0.5)

    def test_rejects_nonpositive_settle_tolerance(self):
        with pytest.raises(ValueError, match="settle_tolerance"):
            IntegrationConfig(early_exit=True, settle_tolerance=0.0)

    def test_rejects_bad_settle_check_every(self):
        with pytest.raises(ValueError, match="settle_check_every"):
            IntegrationConfig(early_exit=True, settle_check_every=0)

    def test_rejects_bad_settle_patience(self):
        with pytest.raises(ValueError, match="settle_patience"):
            IntegrationConfig(early_exit=True, settle_patience=0)

    def test_resolved_dt_bounds_default_from_dt(self):
        cfg = IntegrationConfig(dt=0.1, adaptive=True)
        assert cfg.resolved_dt_min() == pytest.approx(0.1 / 1000.0)
        assert cfg.resolved_dt_max(50.0) == pytest.approx(10.0)
        # The max step never exceeds the run itself.
        assert cfg.resolved_dt_max(2.0) == pytest.approx(2.0)

    def test_explicit_bounds_win(self):
        cfg = IntegrationConfig(dt=0.1, adaptive=True, dt_min=0.01, dt_max=0.5)
        assert cfg.resolved_dt_min() == 0.01
        assert cfg.resolved_dt_max(100.0) == 0.5


class TestAdaptiveAccuracy:
    @pytest.mark.parametrize("method", ["euler", "rk4"])
    def test_matches_tight_fixed_step_reference(self, method):
        ham = _system(seed=40)
        clamp_index = np.asarray([0, 2])
        clamp_value = np.asarray([0.5, -0.3])
        sigma0 = np.random.default_rng(41).uniform(-1, 1, size=6)
        reference = CircuitSimulator(
            IntegrationConfig(dt=0.001, method=method)
        ).run(_drift(ham), sigma0, 30.0, clamp_index, clamp_value)
        adaptive = CircuitSimulator(
            IntegrationConfig(
                dt=0.05, method=method, adaptive=True, rtol=1e-6, atol=1e-9
            )
        ).run(_drift(ham), sigma0, 30.0, clamp_index, clamp_value)
        assert np.allclose(
            adaptive.final_state, reference.final_state, atol=1e-4
        )

    def test_batch_adaptive_matches_reference(self):
        ham = _system(seed=42)
        clamp_index = np.asarray([1])
        clamp_value = np.asarray([[0.4], [-0.7], [0.1]])
        sigma0 = np.random.default_rng(43).uniform(-1, 1, size=(3, 6))
        reference = CircuitSimulator(IntegrationConfig(dt=0.001)).run_batch(
            _batch_drift(ham), sigma0, 30.0, clamp_index, clamp_value
        )
        adaptive = CircuitSimulator(
            IntegrationConfig(dt=0.05, adaptive=True, rtol=1e-6, atol=1e-9)
        ).run_batch(_batch_drift(ham), sigma0, 30.0, clamp_index, clamp_value)
        assert np.allclose(
            adaptive.final_states, reference.final_states, atol=1e-4
        )

    def test_step_sizes_grow_toward_equilibrium(self):
        """Once the transient decays the controller should open the step
        up well past the starting dt (the whole point of adaptivity)."""
        ham = _system(seed=44)
        run = CircuitSimulator(
            IntegrationConfig(
                dt=0.01, adaptive=True, rtol=1e-3, atol=1e-6, record_every=1
            )
        ).run(_drift(ham), np.random.default_rng(45).normal(size=6), 50.0)
        dts = np.diff(run.times)
        assert dts.max() > 5 * dts.min()
        assert run.times[-1] == pytest.approx(50.0)

    def test_clamps_held_exactly_under_adaptive_noise(self):
        ham = _system(seed=46)
        clamp_index = np.asarray([0, 3])
        clamp_value = np.asarray([0.3, -0.6])
        run = CircuitSimulator(
            IntegrationConfig(
                dt=0.02, adaptive=True, node_noise_std=0.1, record_every=1
            ),
            rng=np.random.default_rng(47),
        ).run(_drift(ham), np.zeros(6), 10.0, clamp_index, clamp_value)
        assert np.all(run.states[:, clamp_index] == clamp_value)

    def test_records_rejected_steps_counter(self):
        ham = _system(seed=48)
        with obs.metrics_enabled() as registry:
            CircuitSimulator(
                IntegrationConfig(dt=0.5, adaptive=True, rtol=1e-8, atol=1e-10)
            ).run(_drift(ham), np.random.default_rng(49).normal(size=6), 10.0)
            counters = registry.snapshot()["counters"]
        # Starting with a hopeless 0.5 step under a tight tolerance must
        # reject at least once, and the counter must surface it.
        assert counters.get("circuit.rejected_steps", 0) >= 1


class TestFixedPathBitwisePreserved:
    """Arming early-exit with an unreachable tolerance must not change a
    single output bit versus the plain fixed-step path."""

    @pytest.mark.parametrize("method", ["euler", "rk4"])
    @pytest.mark.parametrize("noise", [0.0, 0.1])
    def test_unreachable_tolerance_is_bitwise_identical(self, method, noise):
        ham = _system(seed=50)
        clamp_index = np.asarray([1, 4])
        clamp_value = np.asarray([[0.2, -0.8], [0.9, 0.0]])
        sigma0 = np.random.default_rng(51).uniform(-1, 1, size=(2, 6))
        fixed = CircuitSimulator(
            IntegrationConfig(dt=0.05, method=method, node_noise_std=noise),
            rng=np.random.default_rng(52),
        ).run_batch(_batch_drift(ham), sigma0, 5.0, clamp_index, clamp_value)
        armed = CircuitSimulator(
            IntegrationConfig(
                dt=0.05, method=method, node_noise_std=noise,
                early_exit=True, settle_tolerance=1e-300,
            ),
            rng=np.random.default_rng(52),
        ).run_batch(_batch_drift(ham), sigma0, 5.0, clamp_index, clamp_value)
        assert np.array_equal(fixed.final_states, armed.final_states)
        assert np.array_equal(fixed.times, armed.times)

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bitwise_across_operator_backends_and_dtypes(self, backend, dtype):
        rng = np.random.default_rng(53)
        n = 16
        J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.3)
        J[np.abs(J) < 0.2] = 0.0
        h = -(np.abs(J).sum(axis=1) + 1.0)
        operator = CouplingOperator(J, h, backend=backend, dtype=dtype)
        sigma0 = rng.uniform(-1, 1, size=(3, n))
        clamp_index = np.arange(4)
        clamp_value = sigma0[:, :4]
        fixed = CircuitSimulator(IntegrationConfig(dt=0.05)).run_batch(
            operator.drift, sigma0, 5.0, clamp_index, clamp_value
        )
        armed = CircuitSimulator(
            IntegrationConfig(dt=0.05, early_exit=True, settle_tolerance=1e-300)
        ).run_batch(operator.drift, sigma0, 5.0, clamp_index, clamp_value)
        assert np.array_equal(fixed.final_states, armed.final_states)


class TestEarlyExitSettling:
    def test_exits_before_budget_on_contracting_system(self):
        ham = _system(seed=60)
        clamp_index = np.asarray([0])
        clamp_value = np.asarray([[0.5], [-0.5], [0.1], [0.9]])
        sigma0 = np.random.default_rng(61).uniform(-1, 1, size=(4, 6))
        budget = 500.0
        fixed = CircuitSimulator(IntegrationConfig(dt=0.05)).run_batch(
            _batch_drift(ham), sigma0, budget, clamp_index, clamp_value
        )
        early = CircuitSimulator(
            IntegrationConfig(dt=0.05, early_exit=True, settle_tolerance=1e-10)
        ).run_batch(_batch_drift(ham), sigma0, budget, clamp_index, clamp_value)
        assert early.times[-1] < budget
        assert np.allclose(early.final_states, fixed.final_states, atol=1e-8)

    def test_frozen_members_stop_moving(self):
        """After a member freezes its state is carried forward verbatim;
        the recorded final state equals the state at freeze-out."""
        ham = _system(seed=62)
        early = CircuitSimulator(
            IntegrationConfig(
                dt=0.05, early_exit=True, settle_tolerance=1e-8,
                record_every=1,
            )
        ).run_batch(
            _batch_drift(ham),
            np.random.default_rng(63).uniform(-1, 1, size=(3, 6)),
            500.0,
        )
        # Every member's trailing window is constant to the tolerance.
        tail = early.states[-2:]
        assert np.max(np.abs(tail[1] - tail[0])) <= 1e-6

    def test_early_exit_counters_recorded(self):
        ham = _system(seed=64)
        with obs.metrics_enabled() as registry:
            CircuitSimulator(
                IntegrationConfig(dt=0.05, early_exit=True,
                                  settle_tolerance=1e-9)
            ).run_batch(
                _batch_drift(ham),
                np.random.default_rng(65).uniform(-1, 1, size=(4, 6)),
                500.0,
            )
            counters = registry.snapshot()["counters"]
        assert counters.get("circuit.frozen_members") == 4
        assert counters.get("circuit.early_exits") == 1
        # Freeze-out must have saved real member-step work.
        budget = counters["circuit.steps"] * counters["circuit.samples"]
        assert counters["circuit.member_steps"] < budget

    def test_adaptive_composes_with_early_exit(self):
        ham = _system(seed=66)
        clamp_index = np.asarray([2])
        clamp_value = np.asarray([[0.4], [-0.4]])
        sigma0 = np.random.default_rng(67).uniform(-1, 1, size=(2, 6))
        reference = CircuitSimulator(IntegrationConfig(dt=0.001)).run_batch(
            _batch_drift(ham), sigma0, 200.0, clamp_index, clamp_value
        )
        combined = CircuitSimulator(
            IntegrationConfig(
                dt=0.02, adaptive=True, rtol=1e-6, atol=1e-9,
                early_exit=True, settle_tolerance=1e-9,
            )
        ).run_batch(_batch_drift(ham), sigma0, 200.0, clamp_index, clamp_value)
        assert combined.times[-1] < 200.0
        assert np.allclose(
            combined.final_states, reference.final_states, atol=1e-4
        )
