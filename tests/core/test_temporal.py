"""Tests of the temporal unrolling."""

import numpy as np
import pytest

from repro.core import TemporalWindowing


class TestValidation:
    def test_rejects_short_window(self):
        with pytest.raises(ValueError, match="window"):
            TemporalWindowing(num_nodes=3, window=1)

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError, match="stride"):
            TemporalWindowing(num_nodes=3, window=2, stride=0)

    def test_rejects_wrong_series_width(self):
        tw = TemporalWindowing(num_nodes=3, window=2)
        with pytest.raises(ValueError, match="series"):
            tw.windows(np.zeros((10, 4)))

    def test_rejects_too_short_series(self):
        tw = TemporalWindowing(num_nodes=3, window=5)
        with pytest.raises(ValueError, match="at least"):
            tw.windows(np.zeros((3, 3)))


class TestWindows:
    def test_shapes_and_count(self):
        tw = TemporalWindowing(num_nodes=4, window=3)
        series = np.arange(40, dtype=float).reshape(10, 4)
        w = tw.windows(series)
        assert w.shape == (8, 12)
        assert tw.system_size == 12

    def test_frame_major_layout(self):
        tw = TemporalWindowing(num_nodes=2, window=3)
        series = np.arange(12, dtype=float).reshape(6, 2)
        w = tw.windows(series)
        # First window is frames 0..2 flattened frame-major.
        assert np.allclose(w[0], [0, 1, 2, 3, 4, 5])

    def test_stride_thins_windows(self):
        tw = TemporalWindowing(num_nodes=2, window=2, stride=3)
        series = np.arange(20, dtype=float).reshape(10, 2)
        assert tw.windows(series).shape[0] == 3

    def test_observed_and_target_partition(self):
        tw = TemporalWindowing(num_nodes=3, window=4)
        assert tw.observed_index.size == 9
        assert tw.target_index.size == 3
        combined = np.sort(np.concatenate([tw.observed_index, tw.target_index]))
        assert np.array_equal(combined, np.arange(12))


class TestHistoryAndSplit:
    def test_history_matches_window_prefix(self):
        tw = TemporalWindowing(num_nodes=3, window=3)
        series = np.random.default_rng(0).normal(size=(8, 3))
        w = tw.windows(series)
        history = tw.history_of(series, t=2)
        assert np.allclose(history, w[0][: tw.observed_index.size])

    def test_split_window_roundtrip(self):
        tw = TemporalWindowing(num_nodes=3, window=3)
        flat = np.arange(9, dtype=float)
        history, target = tw.split_window(flat)
        assert np.allclose(np.concatenate([history, target]), flat)
        assert target.size == 3

    def test_split_rejects_bad_length(self):
        tw = TemporalWindowing(num_nodes=3, window=3)
        with pytest.raises(ValueError, match="system size"):
            tw.split_window(np.zeros(7))

    def test_history_rejects_early_frames(self):
        tw = TemporalWindowing(num_nodes=2, window=4)
        series = np.zeros((10, 2))
        with pytest.raises(ValueError, match="window"):
            tw.history_of(series, t=2)

    def test_prediction_frames_have_full_history(self):
        tw = TemporalWindowing(num_nodes=2, window=4)
        series = np.zeros((10, 2))
        frames = tw.prediction_frames(series)
        assert frames[0] == 3
        assert frames[-1] == 9
