"""Tests of batched equilibrium inference and ridge model selection."""

import numpy as np
import pytest

from repro.core import (
    NaturalAnnealingEngine,
    TrainingConfig,
    fit_precision,
    select_ridge,
)


class TestBatchInference:
    def test_matches_sequential_exactly(self, traffic_setup):
        tw = traffic_setup["windowing"]
        model = traffic_setup["model"]
        engine = NaturalAnnealingEngine(model)
        series = traffic_setup["test"].series
        frames = tw.prediction_frames(series)[:10]
        histories = np.stack([tw.history_of(series, t) for t in frames])
        batch = engine.infer_equilibrium_batch(tw.observed_index, histories)
        for row, history in zip(batch, histories):
            single = engine.infer_equilibrium(tw.observed_index, history)
            assert np.allclose(row, single.prediction, atol=1e-10)

    def test_output_shape(self, traffic_setup):
        tw = traffic_setup["windowing"]
        engine = NaturalAnnealingEngine(traffic_setup["model"])
        histories = np.zeros((5, tw.observed_index.size))
        out = engine.infer_equilibrium_batch(tw.observed_index, histories)
        assert out.shape == (5, tw.target_index.size)

    def test_rejects_bad_shapes(self, traffic_setup):
        tw = traffic_setup["windowing"]
        engine = NaturalAnnealingEngine(traffic_setup["model"])
        with pytest.raises(ValueError, match="batch"):
            engine.infer_equilibrium_batch(
                tw.observed_index, np.zeros(tw.observed_index.size)
            )
        with pytest.raises(ValueError, match="batch"):
            engine.infer_equilibrium_batch(tw.observed_index, np.zeros((3, 2)))


class TestSelectRidge:
    def test_returns_candidate_and_convex_model(self, gaussian_samples):
        samples, _ = gaussian_samples
        candidates = (1e-3, 1e-1)
        ridge, model = select_ridge(samples, candidates=candidates)
        assert ridge in candidates
        assert model.convexity_margin() > 0

    def test_prefers_small_ridge_with_many_samples(self, gaussian_samples):
        """With 1200 samples of a 10-dim Gaussian, heavy regularization
        only hurts."""
        samples, _ = gaussian_samples
        ridge, _model = select_ridge(samples, candidates=(1e-3, 5.0))
        assert ridge == 1e-3

    def test_prefers_heavier_ridge_when_data_scarce(self):
        rng = np.random.default_rng(0)
        n = 30
        A = rng.normal(size=(n, n)) * 0.3
        cov = A @ A.T + np.eye(n)
        scarce = rng.multivariate_normal(np.zeros(n), cov, size=40)
        ridge, _model = select_ridge(scarce, candidates=(1e-4, 5e-1))
        assert ridge == 5e-1

    def test_validation(self, gaussian_samples):
        samples, _ = gaussian_samples
        with pytest.raises(ValueError, match="candidate"):
            select_ridge(samples, candidates=())
        with pytest.raises(ValueError, match="holdout"):
            select_ridge(samples, holdout_fraction=1.5)
