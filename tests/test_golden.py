"""Golden-file regression tests of the user-facing report surfaces.

Two fixed-seed toy problems are pinned against committed outputs in
``tests/golden/``:

* the ``repro faults sweep`` payload (schema exactly, float values to a
  BLAS-tolerant relative tolerance), and
* the ``repro obs summarize`` report over a committed trace JSONL
  fixture — pure text aggregation, so the comparison is byte-exact.

Regenerate deliberately (after verifying a change is intended) by
re-running the builders at the bottom of this module's docstrings; a
silent drift in either surface is a regression, not noise.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import ExperimentContext, fault_sweep_data
from repro.obs import format_summary, summarize_trace

GOLDEN = Path(__file__).parent / "golden"

#: Relative tolerance for golden floats: bitwise agreement holds on one
#: machine, but BLAS build differences legitimately move the last bits.
RTOL = 1e-6


def _assert_matches_golden(actual, expected, path="$"):
    """Structural equality with rtol on floats, exactness on the rest."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert sorted(actual) == sorted(expected), f"{path}: keys differ"
        for key in expected:
            _assert_matches_golden(
                actual[key], expected[key], f"{path}.{key}"
            )
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected list"
        assert len(actual) == len(expected), f"{path}: length differs"
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches_golden(a, e, f"{path}[{i}]")
    elif isinstance(expected, bool):
        assert actual is expected, f"{path}: {actual!r} != {expected!r}"
    elif isinstance(expected, float):
        assert np.isclose(actual, expected, rtol=RTOL, atol=0.0), (
            f"{path}: {actual!r} != {expected!r} (rtol={RTOL})"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


class TestFaultSweepGolden:
    @pytest.fixture(scope="class")
    def sweep(self):
        # Builder of tests/golden/fault_sweep.json: dump this payload
        # with json.dump(..., indent=2, sort_keys=True) to regenerate.
        return fault_sweep_data(
            ExperimentContext(size="small"),
            datasets=("traffic",),
            fault_rates=(0.0, 0.02),
            duration_ns=1000.0,
            max_windows=1,
            trials=1,
            seed=0,
        )

    def test_payload_matches_golden(self, sweep):
        golden = json.loads((GOLDEN / "fault_sweep.json").read_text())
        _assert_matches_golden(sweep, golden)

    def test_schema_fields(self, sweep):
        entry = sweep["traffic"]
        assert sorted(entry) == [
            "diverged", "fault_rates", "rmse", "scenarios", "trials",
        ]
        assert all(np.isfinite(v) for v in entry["rmse"])
        assert entry["scenarios"][0] == {"enabled": False}


class TestStreamRunGolden:
    """``repro stream run`` summary pinned byte-exact.

    The replay is a pure function of the config seed and the per-window
    MAE is rendered at 4 decimals (slack of ~5e-5, orders of magnitude
    above BLAS build jitter), so the pinned text is machine-independent.
    Latency columns are excluded via ``include_latency=False``.
    """

    CONFIG = dict(
        n=64, density=0.08, windows=6, batch=8, edges_per_window=3,
        h_edits_per_window=1, seed=42, backend="sparse",
    )

    def _summary(self, mode):
        # Builder of tests/golden/stream_run.txt: this expression (engine
        # mode) plus a trailing newline.
        from repro.stream import (
            StreamConfig, format_stream_summary, run_stream,
        )

        result = run_stream(StreamConfig(mode=mode, **self.CONFIG))
        return format_stream_summary(result, include_latency=False)

    def test_engine_replay_matches_golden_exactly(self):
        expected = (GOLDEN / "stream_run.txt").read_text()
        assert self._summary("engine") + "\n" == expected

    def test_serve_replay_matches_the_same_golden(self):
        """Routing every window through the dynamic-batching server must
        reproduce the direct-engine replay to the rendered digit —
        per-window update/refactor counts included."""
        expected = (GOLDEN / "stream_run.txt").read_text()
        engine_header, _, body = expected.partition("\n")
        serve = self._summary("serve") + "\n"
        serve_header, _, serve_body = serve.partition("\n")
        assert serve_body == body
        assert serve_header == engine_header.replace(
            "mode=engine", "mode=serve"
        )


class TestObsSummarizeGolden:
    def test_report_matches_golden_exactly(self):
        # Builder of tests/golden/obs_summary.txt: this expression plus a
        # trailing newline.  The fixture is hand-written (fixed timings),
        # so the aggregation is fully deterministic.
        report = format_summary(
            summarize_trace(GOLDEN / "trace_fixture.jsonl")
        )
        expected = (GOLDEN / "obs_summary.txt").read_text()
        assert report + "\n" == expected

    def test_cli_summarize_prints_the_report(self, capsys):
        assert main(
            ["obs", "summarize", str(GOLDEN / "trace_fixture.jsonl")]
        ) == 0
        out = capsys.readouterr().out
        assert "LU-cache hit rate: 75.0%" in out
        assert "circuit.run_batch" in out
