"""Tests of DSPU early-exit settling (rotation-orbit freeze-out).

Convergence on the time-multiplexed machine is judged over whole
rotations: within a rotation the duty-cycle boost makes the state
ripple, so a per-interval check would mistake the ripple for motion (or
a lull for convergence).  Early exit must therefore only fire on
rotation boundaries and must leave the disabled path untouched.
"""

import numpy as np
import pytest

from repro import obs
from repro.hardware import HardwareConfig, ScalableDSPU


@pytest.fixture(scope="module")
def dspu(decomposed_traffic):
    config = HardwareConfig(
        grid_shape=(3, 3),
        pe_capacity=decomposed_traffic.placement.capacity,
        lanes=8,
    )
    return ScalableDSPU(
        decomposed_traffic, config, node_time_constant_ns=500.0
    )


@pytest.fixture(scope="module")
def anneal_inputs(traffic_setup):
    tw = traffic_setup["windowing"]
    test = traffic_setup["test"].series
    return tw.observed_index, tw.history_of(test, 3)


class TestValidation:
    def test_rejects_nonpositive_settle_tolerance(self, dspu, anneal_inputs):
        observed, history = anneal_inputs
        with pytest.raises(ValueError, match="settle_tolerance"):
            dspu.anneal(
                observed, history, duration_ns=1000.0,
                early_exit=True, settle_tolerance=0.0,
            )

    def test_rejects_bad_settle_patience(self, dspu, anneal_inputs):
        observed, history = anneal_inputs
        with pytest.raises(ValueError, match="settle_patience"):
            dspu.anneal(
                observed, history, duration_ns=1000.0,
                early_exit=True, settle_patience=0,
            )


class TestEarlyExit:
    def test_disabled_path_identical(self, dspu, anneal_inputs):
        """An unreachable tolerance arms the check without ever firing;
        prediction and latency must match the legacy run exactly."""
        observed, history = anneal_inputs
        legacy = dspu.anneal(observed, history, duration_ns=20000.0)
        armed = dspu.anneal(
            observed, history, duration_ns=20000.0,
            early_exit=True, settle_tolerance=1e-300,
        )
        assert np.array_equal(legacy.prediction, armed.prediction)
        assert legacy.latency_ns == armed.latency_ns
        assert not legacy.exited_early
        assert not armed.exited_early

    def test_settled_run_exits_with_shorter_latency(self, dspu, anneal_inputs):
        observed, history = anneal_inputs
        full = dspu.anneal(observed, history, duration_ns=100000.0)
        early = dspu.anneal(
            observed, history, duration_ns=100000.0,
            early_exit=True, settle_tolerance=1e-3,
        )
        assert early.exited_early
        assert early.latency_ns < full.latency_ns
        # The freeze-out point is within tolerance of the full readout.
        assert np.max(np.abs(early.prediction - full.prediction)) < 0.05

    def test_exit_latency_is_whole_rotations(self, dspu, anneal_inputs):
        """Early exit only fires on rotation boundaries, so the realized
        latency stays a whole number of rotations."""
        observed, history = anneal_inputs
        early = dspu.anneal(
            observed, history, duration_ns=100000.0,
            early_exit=True, settle_tolerance=1e-3, sync_interval_ns=200.0,
        )
        assert early.exited_early
        rotation_ns = 200.0 * dspu.num_phases
        assert early.latency_ns % rotation_ns == pytest.approx(0.0)

    def test_early_exit_counter_recorded(self, dspu, anneal_inputs):
        observed, history = anneal_inputs
        with obs.metrics_enabled() as registry:
            dspu.anneal(
                observed, history, duration_ns=100000.0,
                early_exit=True, settle_tolerance=1e-3,
            )
            counters = registry.snapshot()["counters"]
        assert counters.get("dspu.early_exits") == 1
