"""Tests of the power/area/latency/energy cost models (Tables I & III)."""

import numpy as np
import pytest

from repro.hardware import (
    ACCELERATORS,
    BRIM_REFERENCE,
    AcceleratorModel,
    AcceleratorSpec,
    DSPUCostModel,
    dsgl_energy_mj,
)


class TestDSPUCostModel:
    def test_brim_matches_published_reference(self):
        cost = DSPUCostModel().brim(2000)
        assert cost.effective_spins == BRIM_REFERENCE["effective_spins"]
        assert np.isclose(cost.power_mw, BRIM_REFERENCE["power_mw"], rtol=0.02)
        assert np.isclose(cost.area_mm2, BRIM_REFERENCE["area_mm2"], rtol=0.02)
        assert not cost.scalable
        assert cost.data_type == "binary"

    def test_real_valued_dspu_matches_table1(self):
        cost = DSPUCostModel().real_valued_dspu(2000)
        # Table I: DSPU-2000 is 260 mW / 5.1 mm^2.
        assert np.isclose(cost.power_mw, 260.0, rtol=0.02)
        assert np.isclose(cost.area_mm2, 5.1, rtol=0.02)
        assert cost.data_type == "real-value"

    def test_scalable_dspu_matches_table1(self):
        cost = DSPUCostModel().scalable_dspu((4, 4), 500, 30)
        # Table I: DS-GL is 8000 spins, 550 mW, ~6.5 mm^2, scalable.
        assert cost.effective_spins == 8000
        assert np.isclose(cost.power_mw, 550.0, rtol=0.05)
        assert np.isclose(cost.area_mm2, 6.5, rtol=0.10)
        assert cost.scalable

    def test_headline_scaling_claim(self):
        """The paper's claim: 4x the spins for ~2x power and ~30% more area."""
        model = DSPUCostModel()
        brim = model.brim(2000)
        dsgl = model.scalable_dspu((4, 4), 500, 30)
        assert dsgl.effective_spins == 4 * brim.effective_spins
        assert dsgl.power_mw < 2.5 * brim.power_mw
        assert dsgl.area_mm2 < 1.45 * brim.area_mm2

    def test_monolithic_scaling_is_quadratic(self):
        """Why the mesh is needed: doubling a monolithic machine's spins
        roughly quadruples its crossbar power."""
        model = DSPUCostModel()
        small = model.real_valued_dspu(2000)
        big = model.real_valued_dspu(4000)
        assert big.power_mw > 3.0 * small.power_mw


class TestAcceleratorModel:
    def test_latency_inverse_in_peak_rate(self):
        flops = 1e9
        slow = AcceleratorModel(AcceleratorSpec("a", "p", 1.0, 100, 50))
        fast = AcceleratorModel(AcceleratorSpec("b", "p", 10.0, 100, 50))
        assert np.isclose(slow.latency_us(flops), 10 * fast.latency_us(flops))

    def test_known_values(self):
        model = AcceleratorModel(ACCELERATORS[-1])  # A100: 156 TFLOPS, 250 W
        flops = 156e12 * 1e-6  # one microsecond of peak work
        assert np.isclose(model.latency_us(flops), 1.0)
        assert np.isclose(model.energy_mj(flops), 0.25)

    def test_all_paper_platforms_present(self):
        platforms = {spec.platform for spec in ACCELERATORS}
        assert "NVIDIA A100 SXM" in platforms
        assert "Stratix 10 SX" in platforms
        assert len(ACCELERATORS) == 5

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError, match="non-negative"):
            AcceleratorModel(ACCELERATORS[0]).latency_us(-1.0)


class TestDsglEnergy:
    def test_known_value(self):
        # 1 us at 550 mW = 0.55 nJ = 5.5e-4 mJ.
        assert np.isclose(dsgl_energy_mj(1.0, 550.0), 5.5e-4)

    def test_orders_of_magnitude_vs_gpu(self):
        """The headline Table III gap: DS-GL energy is >= 4 orders of
        magnitude below a GNN inference on the A100 model."""
        gpu = AcceleratorModel(ACCELERATORS[-1])
        dsgl = dsgl_energy_mj(1.0, 550.0)
        gnn_energy = gpu.energy_mj(1e12)  # a TFLOP-scale GNN inference
        assert gnn_energy / dsgl > 1e6

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            dsgl_energy_mj(-1.0, 100.0)
