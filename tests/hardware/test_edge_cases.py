"""Degenerate and stress configurations of the hardware stack."""

import numpy as np
import pytest

from repro.core import TrainingConfig, fit_precision
from repro.decompose import DecompositionConfig, decompose
from repro.hardware import HardwareConfig, ScalableDSPU, build_schedule


@pytest.fixture(scope="module")
def small_model(gaussian_samples):
    samples, _cov = gaussian_samples
    return fit_precision(samples, TrainingConfig(ridge=1e-2)), samples


class TestSinglePEGrid:
    def test_everything_is_intra_pe(self, small_model):
        model, samples = small_model
        system = decompose(
            model,
            samples,
            DecompositionConfig(density=0.3, pattern="dmesh", grid_shape=(1, 1)),
        )
        dspu = ScalableDSPU(system)
        assert dspu.mode == "spatial"
        assert dspu.num_phases == 1
        assert dspu.schedule.assignments == []

    def test_single_pe_anneal_matches_equilibrium(self, small_model):
        from repro.core import NaturalAnnealingEngine

        model, samples = small_model
        system = decompose(
            model,
            samples,
            DecompositionConfig(density=0.5, pattern="mesh", grid_shape=(1, 1)),
        )
        dspu = ScalableDSPU(system, node_time_constant_ns=10.0)
        observed = np.arange(6)
        values = samples[0][:6]
        outcome = dspu.anneal(observed, values, duration_ns=20000.0)
        engine = NaturalAnnealingEngine(system.model)
        equilibrium = engine.infer_equilibrium(observed, values)
        assert np.allclose(outcome.prediction, equilibrium.prediction, atol=0.05)


class TestExtremeLaneScarcity:
    def test_one_lane_still_schedules_everything(self, small_model):
        model, samples = small_model
        system = decompose(
            model,
            samples,
            DecompositionConfig(density=0.4, pattern="dmesh", grid_shape=(2, 2)),
        )
        config = HardwareConfig(
            grid_shape=(2, 2), pe_capacity=system.placement.capacity, lanes=1
        )
        schedule = build_schedule(system.model.J, system.placement, config)
        # Every inter-PE coupling still gets a slot, just across many slices.
        J = system.model.J
        pe = system.placement.pe_of_node
        rows, cols = np.nonzero(np.triu(J, 1))
        inter = int(np.sum(pe[rows] != pe[cols]))
        assert len(schedule.assignments) == inter
        assert schedule.num_phases >= 1
        # Lane budget respected per phase.
        for phase in range(schedule.num_phases):
            usage: dict = {}
            for a in schedule.active_in_phase(phase):
                usage.setdefault((a.cu, a.pe_a), set()).add(a.node_a)
                usage.setdefault((a.cu, a.pe_b), set()).add(a.node_b)
            for nodes in usage.values():
                assert len(nodes) <= 1

    def test_scarce_lanes_anneal_converges_with_budget(self, small_model):
        model, samples = small_model
        system = decompose(
            model,
            samples,
            DecompositionConfig(density=0.3, pattern="dmesh", grid_shape=(2, 2)),
        )
        config = HardwareConfig(
            grid_shape=(2, 2), pe_capacity=system.placement.capacity, lanes=2
        )
        dspu = ScalableDSPU(system, config, node_time_constant_ns=500.0)
        observed = np.arange(5)
        outcome = dspu.anneal(observed, samples[0][:5], duration_ns=50000.0)
        assert np.all(np.isfinite(outcome.prediction))
        assert np.all(np.abs(outcome.state) <= 1.0 + 1e-9)


class TestObservedSetExtremes:
    def test_all_but_one_observed(self, small_model):
        model, _samples = small_model
        dspu = ScalableDSPU(
            _decomposed_trivial(model, _samples), node_time_constant_ns=10.0
        )
        observed = np.arange(model.n - 1)
        outcome = dspu.anneal(observed, np.zeros(model.n - 1), duration_ns=500.0)
        assert outcome.prediction.shape == (1,)

    def test_nothing_observed(self, small_model):
        """With no clamped nodes the convex system relaxes to the origin
        (the unconditional mean in the data domain)."""
        model, _samples = small_model
        dspu = ScalableDSPU(
            _decomposed_trivial(model, _samples), node_time_constant_ns=10.0
        )
        outcome = dspu.anneal(
            np.zeros(0, dtype=int), np.zeros(0), duration_ns=50000.0
        )
        assert np.allclose(outcome.state, 0.0, atol=0.05)


def _decomposed_trivial(model, samples):
    return decompose(
        model,
        samples,
        DecompositionConfig(density=0.5, pattern="mesh", grid_shape=(1, 1)),
    )
