"""Tests of the Scalable DSPU co-annealing simulator."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core import NaturalAnnealingEngine, rmse
from repro.core.model import DSGLModel
from repro.decompose.pipeline import DecomposedSystem, DecompositionConfig
from repro.decompose.redistribute import PlacementResult
from repro.hardware import HardwareConfig, ScalableDSPU
from repro.hardware.scalable_dspu import _forcing_integral, _pairs_matrix


@pytest.fixture(scope="module")
def dspu(decomposed_traffic):
    config = HardwareConfig(
        grid_shape=(3, 3),
        pe_capacity=decomposed_traffic.placement.capacity,
        lanes=8,
    )
    return ScalableDSPU(
        decomposed_traffic, config, node_time_constant_ns=500.0
    )


class TestConstruction:
    def test_mode_reflects_schedule(self, dspu):
        assert dspu.mode in ("spatial", "temporal+spatial")
        assert dspu.num_phases >= 1

    def test_pes_match_placement(self, dspu, decomposed_traffic):
        assert len(dspu.pes) == 9
        for pe, group in zip(dspu.pes, decomposed_traffic.placement.groups):
            assert np.array_equal(pe.nodes, group)

    def test_utilization_in_unit_interval(self, dspu):
        assert 0.0 < dspu.utilization() <= 1.0

    def test_duty_compensated_average_equals_trained_dynamics(self, dspu):
        """Time-average of the boosted per-phase matrices must equal the
        full scaled dynamics — the invariant behind PWM co-annealing."""
        average = dspu._A_local + sum(dspu._A_inter_boosted) / len(
            dspu._A_inter_boosted
        )
        assert np.allclose(average, dspu._A, atol=1e-12)

    def test_rejects_bad_time_constant(self, decomposed_traffic):
        with pytest.raises(ValueError, match="time_constant"):
            ScalableDSPU(
                decomposed_traffic,
                HardwareConfig(
                    grid_shape=(3, 3),
                    pe_capacity=decomposed_traffic.placement.capacity,
                ),
                node_time_constant_ns=0.0,
            )


class TestAnnealing:
    def _one_inference(self, dspu, traffic_setup, **kwargs):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 3)
        return tw, test, dspu.anneal(tw.observed_index, history, **kwargs)

    def test_converges_to_equilibrium(self, dspu, traffic_setup, decomposed_traffic):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 3)
        outcome = dspu.anneal(tw.observed_index, history, duration_ns=100000.0)
        engine = NaturalAnnealingEngine(decomposed_traffic.model)
        equilibrium = engine.infer_equilibrium(tw.observed_index, history)
        gap = np.max(np.abs(outcome.prediction - equilibrium.prediction))
        assert gap < 0.12

    def test_accuracy_improves_with_latency(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        frames = tw.prediction_frames(test)[:8]

        def score(duration):
            predictions, targets = [], []
            for t in frames:
                history = tw.history_of(test, t)
                out = dspu.anneal(tw.observed_index, history, duration_ns=duration)
                predictions.append(out.prediction)
                targets.append(test[t])
            return rmse(np.asarray(predictions), np.asarray(targets))

        short = score(2000.0)
        long = score(50000.0)
        assert long < short

    def test_observed_nodes_clamped(self, dspu, traffic_setup):
        tw, test, outcome = self._one_inference(
            dspu, traffic_setup, duration_ns=2000.0
        )
        clamp = dspu._normalize_subset(
            tw.observed_index, tw.history_of(test, 3)
        )
        assert np.allclose(outcome.state[tw.observed_index], clamp)

    def test_latency_reported(self, dspu, traffic_setup):
        _tw, _test, outcome = self._one_inference(
            dspu, traffic_setup, duration_ns=4000.0
        )
        assert np.isclose(outcome.latency_ns, 4000.0, rtol=0.1)

    def test_latency_never_undershoots_request(self, dspu, traffic_setup):
        """Regression: 500 ns at a 200 ns sync interval used to round down
        to 2 intervals (400 ns), annealing less than requested."""
        _tw, _test, outcome = self._one_inference(
            dspu, traffic_setup, duration_ns=500.0, sync_interval_ns=200.0
        )
        assert outcome.latency_ns == 600.0
        for duration in (100.0, 250.0, 999.0, 1000.0):
            _tw, _test, out = self._one_inference(
                dspu, traffic_setup,
                duration_ns=duration, sync_interval_ns=200.0,
            )
            assert out.latency_ns >= duration
            # Exact multiples stay exact — no spurious extra interval.
            if duration % 200.0 == 0.0:
                assert out.latency_ns == duration

    def test_phases_completed_counts_executed_phases(
        self, dspu, traffic_setup
    ):
        """Regression: the counter only advanced when a new rotation began,
        so e.g. 4 intervals over 4 phases reported 0 phases."""
        phases = dspu.num_phases
        assert phases > 1  # the mapping must exercise the rotation
        for extra in (0, 2):
            intervals = phases + extra
            _tw, _test, outcome = self._one_inference(
                dspu, traffic_setup,
                duration_ns=200.0 * intervals, sync_interval_ns=200.0,
            )
            assert outcome.phases_completed == intervals

    def test_spatial_only_mode_flagged(self, dspu, traffic_setup):
        _tw, _test, outcome = self._one_inference(
            dspu, traffic_setup, duration_ns=2000.0, force_spatial_only=True
        )
        assert outcome.mode == "spatial"

    def test_noise_degrades_gracefully(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        frames = tw.prediction_frames(test)[:6]

        def score(noise):
            predictions, targets = [], []
            for t in frames:
                history = tw.history_of(test, t)
                out = dspu.anneal(
                    tw.observed_index,
                    history,
                    duration_ns=20000.0,
                    node_noise_std=noise * 0.1,
                    coupling_noise_std=noise,
                )
                predictions.append(out.prediction)
                targets.append(test[t])
            return rmse(np.asarray(predictions), np.asarray(targets))

        clean = score(0.0)
        noisy = score(0.15)
        assert noisy < 2.0 * clean  # Sec. V.G: impact "not significant"

    def test_reproducible_with_seed(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 4)
        a = dspu.anneal(
            tw.observed_index, history, duration_ns=2000.0,
            rng=np.random.default_rng(5),
        )
        b = dspu.anneal(
            tw.observed_index, history, duration_ns=2000.0,
            rng=np.random.default_rng(5),
        )
        assert np.allclose(a.prediction, b.prediction)

    def test_validation(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        history = tw.history_of(traffic_setup["test"].series, 3)
        with pytest.raises(ValueError, match="duration"):
            dspu.anneal(tw.observed_index, history, duration_ns=0.0)
        with pytest.raises(ValueError, match="sync"):
            dspu.anneal(
                tw.observed_index, history, duration_ns=100.0,
                sync_interval_ns=0.0,
            )


class TestEnergyTrace:
    def test_trace_recorded_and_descending_overall(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 3)
        outcome = dspu.anneal(
            tw.observed_index, history, duration_ns=20000.0, record_energy=True
        )
        trace = outcome.energy_trace
        assert trace is not None
        assert len(trace) >= 10
        # Overall descent: final energy far below initial (ripple allowed).
        assert trace[-1] < trace[0]
        # The last quarter of the run is near-stationary.
        tail = trace[-len(trace) // 4 :]
        assert np.std(tail) < 0.2 * (trace[0] - trace[-1] + 1e-9)

    def test_trace_absent_by_default(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        history = tw.history_of(traffic_setup["test"].series, 3)
        outcome = dspu.anneal(tw.observed_index, history, duration_ns=1000.0)
        assert outcome.energy_trace is None


class TestSparseBackend:
    def test_backend_attribute_and_validation(self, decomposed_traffic):
        config = HardwareConfig(
            grid_shape=(3, 3),
            pe_capacity=decomposed_traffic.placement.capacity,
            lanes=8,
        )
        for backend in ("dense", "sparse"):
            dspu = ScalableDSPU(
                decomposed_traffic,
                config,
                node_time_constant_ns=500.0,
                backend=backend,
            )
            assert dspu.backend == backend
        with pytest.raises(ValueError, match="backend"):
            ScalableDSPU(
                decomposed_traffic,
                config,
                node_time_constant_ns=500.0,
                backend="tpu",
            )

    def test_duplicate_pairs_accumulate_identically(self):
        """Regression: the dense path assigned (last-write-wins) while the
        CSR constructor summed duplicate (i, j) entries, so any schedule
        emitting the same pair twice silently diverged across backends."""
        entries = [(0, 1, 2.0), (0, 1, 3.0), (1, 2, -1.0)]
        dense = _pairs_matrix(entries, 4, sparse=False)
        sparse = _pairs_matrix(entries, 4, sparse=True)
        assert dense[0, 1] == dense[1, 0] == 5.0
        assert np.allclose(dense, sparse.toarray())
        assert np.allclose(dense, dense.T)

    def test_sparse_anneal_matches_dense(self, decomposed_traffic, traffic_setup):
        """The CSR phase matrices must reproduce dense anneal outcomes
        bit-for-bit given identical seeds, clean and noisy alike."""
        config = HardwareConfig(
            grid_shape=(3, 3),
            pe_capacity=decomposed_traffic.placement.capacity,
            lanes=8,
        )
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 3)
        kwargs_grid = [
            dict(duration_ns=20000.0),
            dict(
                duration_ns=20000.0,
                node_noise_std=0.01,
                coupling_noise_std=0.05,
            ),
        ]
        for kwargs in kwargs_grid:
            outcomes = {}
            for backend in ("dense", "sparse"):
                dspu = ScalableDSPU(
                    decomposed_traffic,
                    config,
                    node_time_constant_ns=500.0,
                    backend=backend,
                )
                outcomes[backend] = dspu.anneal(
                    tw.observed_index,
                    history,
                    rng=np.random.default_rng(7),
                    **kwargs,
                )
            assert np.allclose(
                outcomes["dense"].prediction,
                outcomes["sparse"].prediction,
                atol=1e-8,
            )
            assert np.isclose(
                outcomes["dense"].latency_ns, outcomes["sparse"].latency_ns
            )


class TestSingularPropagators:
    def test_forcing_integral_zero_block(self):
        """An isolated free node (zero self-dynamics) integrates to t*I."""
        integral = _forcing_integral(np.zeros((1, 1)), 3.0, np.eye(1))
        assert np.allclose(integral, 3.0)

    def test_forcing_integral_singular_matches_quadrature(self):
        B = np.array([[-1.0, 1.0], [1.0, -1.0]])  # eigenvalues 0 and -2
        t = 2.0
        phi = expm(B * t)
        with pytest.raises(np.linalg.LinAlgError):
            np.linalg.solve(B, phi - np.eye(2))  # the old closed form
        integral = _forcing_integral(B, t, phi)
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        s = np.linspace(0.0, t, 4001)
        samples = np.stack([expm(B * si) for si in s])
        reference = trapezoid(samples, s, axis=0)
        assert np.allclose(integral, reference, atol=1e-6)

    def test_forcing_integral_regular_matches_solve(self):
        rng = np.random.default_rng(0)
        B = rng.normal(size=(5, 5))
        B = -(B @ B.T) - np.eye(5)
        t = 1.5
        phi = expm(B * t)
        expected = np.linalg.solve(B, phi - np.eye(5))
        assert np.allclose(_forcing_integral(B, t, phi), expected, atol=1e-12)

    def test_build_propagators_handle_singular_free_block(self, dspu):
        B = np.array([[-1.0, 1.0], [1.0, -1.0]])
        propagators = dspu._build_propagators([B], np.array([0, 1]), 1.0)
        phi, integral, _damped = propagators[0]
        assert np.isfinite(phi).all()
        assert np.isfinite(integral).all()

    def test_anneal_with_singular_dynamics(self):
        """Regression: a mapping whose free-node block is exactly singular
        (here J12 = |h|, a realistic trained configuration) crashed
        ``_build_propagators`` with ``LinAlgError: Singular matrix``."""
        J = np.array([[0.0, 1.0], [1.0, 0.0]])
        model = DSGLModel(J=J, h=np.array([-1.0, -1.0]))
        placement = PlacementResult(
            pe_of_node=np.zeros(2, dtype=int),
            grid_shape=(1, 1),
            capacity=2,
            groups=[np.arange(2)],
        )
        system = DecomposedSystem(
            model=model,
            placement=placement,
            mask=np.ones((2, 2), dtype=bool),
            config=DecompositionConfig(grid_shape=(1, 1)),
            dense_model=model,
        )
        machine = ScalableDSPU(
            system,
            HardwareConfig(grid_shape=(1, 1), pe_capacity=2),
            node_time_constant_ns=500.0,
        )
        outcome = machine.anneal(
            np.zeros(0, dtype=int), np.zeros(0), duration_ns=1000.0
        )
        assert np.isfinite(outcome.state).all()
        assert np.isfinite(outcome.prediction).all()
