"""Tests of the Scalable DSPU co-annealing simulator."""

import numpy as np
import pytest

from repro.core import NaturalAnnealingEngine, rmse
from repro.hardware import HardwareConfig, ScalableDSPU


@pytest.fixture(scope="module")
def dspu(decomposed_traffic):
    config = HardwareConfig(
        grid_shape=(3, 3),
        pe_capacity=decomposed_traffic.placement.capacity,
        lanes=8,
    )
    return ScalableDSPU(
        decomposed_traffic, config, node_time_constant_ns=500.0
    )


class TestConstruction:
    def test_mode_reflects_schedule(self, dspu):
        assert dspu.mode in ("spatial", "temporal+spatial")
        assert dspu.num_phases >= 1

    def test_pes_match_placement(self, dspu, decomposed_traffic):
        assert len(dspu.pes) == 9
        for pe, group in zip(dspu.pes, decomposed_traffic.placement.groups):
            assert np.array_equal(pe.nodes, group)

    def test_utilization_in_unit_interval(self, dspu):
        assert 0.0 < dspu.utilization() <= 1.0

    def test_duty_compensated_average_equals_trained_dynamics(self, dspu):
        """Time-average of the boosted per-phase matrices must equal the
        full scaled dynamics — the invariant behind PWM co-annealing."""
        average = dspu._A_local + sum(dspu._A_inter_boosted) / len(
            dspu._A_inter_boosted
        )
        assert np.allclose(average, dspu._A, atol=1e-12)

    def test_rejects_bad_time_constant(self, decomposed_traffic):
        with pytest.raises(ValueError, match="time_constant"):
            ScalableDSPU(
                decomposed_traffic,
                HardwareConfig(
                    grid_shape=(3, 3),
                    pe_capacity=decomposed_traffic.placement.capacity,
                ),
                node_time_constant_ns=0.0,
            )


class TestAnnealing:
    def _one_inference(self, dspu, traffic_setup, **kwargs):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 3)
        return tw, test, dspu.anneal(tw.observed_index, history, **kwargs)

    def test_converges_to_equilibrium(self, dspu, traffic_setup, decomposed_traffic):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 3)
        outcome = dspu.anneal(tw.observed_index, history, duration_ns=100000.0)
        engine = NaturalAnnealingEngine(decomposed_traffic.model)
        equilibrium = engine.infer_equilibrium(tw.observed_index, history)
        gap = np.max(np.abs(outcome.prediction - equilibrium.prediction))
        assert gap < 0.12

    def test_accuracy_improves_with_latency(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        frames = tw.prediction_frames(test)[:8]

        def score(duration):
            predictions, targets = [], []
            for t in frames:
                history = tw.history_of(test, t)
                out = dspu.anneal(tw.observed_index, history, duration_ns=duration)
                predictions.append(out.prediction)
                targets.append(test[t])
            return rmse(np.asarray(predictions), np.asarray(targets))

        short = score(2000.0)
        long = score(50000.0)
        assert long < short

    def test_observed_nodes_clamped(self, dspu, traffic_setup):
        tw, test, outcome = self._one_inference(
            dspu, traffic_setup, duration_ns=2000.0
        )
        clamp = dspu._normalize_subset(
            tw.observed_index, tw.history_of(test, 3)
        )
        assert np.allclose(outcome.state[tw.observed_index], clamp)

    def test_latency_reported(self, dspu, traffic_setup):
        _tw, _test, outcome = self._one_inference(
            dspu, traffic_setup, duration_ns=4000.0
        )
        assert np.isclose(outcome.latency_ns, 4000.0, rtol=0.1)

    def test_spatial_only_mode_flagged(self, dspu, traffic_setup):
        _tw, _test, outcome = self._one_inference(
            dspu, traffic_setup, duration_ns=2000.0, force_spatial_only=True
        )
        assert outcome.mode == "spatial"

    def test_noise_degrades_gracefully(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        frames = tw.prediction_frames(test)[:6]

        def score(noise):
            predictions, targets = [], []
            for t in frames:
                history = tw.history_of(test, t)
                out = dspu.anneal(
                    tw.observed_index,
                    history,
                    duration_ns=20000.0,
                    node_noise_std=noise * 0.1,
                    coupling_noise_std=noise,
                )
                predictions.append(out.prediction)
                targets.append(test[t])
            return rmse(np.asarray(predictions), np.asarray(targets))

        clean = score(0.0)
        noisy = score(0.15)
        assert noisy < 2.0 * clean  # Sec. V.G: impact "not significant"

    def test_reproducible_with_seed(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 4)
        a = dspu.anneal(
            tw.observed_index, history, duration_ns=2000.0,
            rng=np.random.default_rng(5),
        )
        b = dspu.anneal(
            tw.observed_index, history, duration_ns=2000.0,
            rng=np.random.default_rng(5),
        )
        assert np.allclose(a.prediction, b.prediction)

    def test_validation(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        history = tw.history_of(traffic_setup["test"].series, 3)
        with pytest.raises(ValueError, match="duration"):
            dspu.anneal(tw.observed_index, history, duration_ns=0.0)
        with pytest.raises(ValueError, match="sync"):
            dspu.anneal(
                tw.observed_index, history, duration_ns=100.0,
                sync_interval_ns=0.0,
            )


class TestEnergyTrace:
    def test_trace_recorded_and_descending_overall(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 3)
        outcome = dspu.anneal(
            tw.observed_index, history, duration_ns=20000.0, record_energy=True
        )
        trace = outcome.energy_trace
        assert trace is not None
        assert len(trace) >= 10
        # Overall descent: final energy far below initial (ripple allowed).
        assert trace[-1] < trace[0]
        # The last quarter of the run is near-stationary.
        tail = trace[-len(trace) // 4 :]
        assert np.std(tail) < 0.2 * (trace[0] - trace[-1] + 1e-9)

    def test_trace_absent_by_default(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        history = tw.history_of(traffic_setup["test"].series, 3)
        outcome = dspu.anneal(tw.observed_index, history, duration_ns=1000.0)
        assert outcome.energy_trace is None


class TestSparseBackend:
    def test_backend_attribute_and_validation(self, decomposed_traffic):
        config = HardwareConfig(
            grid_shape=(3, 3),
            pe_capacity=decomposed_traffic.placement.capacity,
            lanes=8,
        )
        for backend in ("dense", "sparse"):
            dspu = ScalableDSPU(
                decomposed_traffic,
                config,
                node_time_constant_ns=500.0,
                backend=backend,
            )
            assert dspu.backend == backend
        with pytest.raises(ValueError, match="backend"):
            ScalableDSPU(
                decomposed_traffic,
                config,
                node_time_constant_ns=500.0,
                backend="tpu",
            )

    def test_sparse_anneal_matches_dense(self, decomposed_traffic, traffic_setup):
        """The CSR phase matrices must reproduce dense anneal outcomes
        bit-for-bit given identical seeds, clean and noisy alike."""
        config = HardwareConfig(
            grid_shape=(3, 3),
            pe_capacity=decomposed_traffic.placement.capacity,
            lanes=8,
        )
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series
        history = tw.history_of(test, 3)
        kwargs_grid = [
            dict(duration_ns=20000.0),
            dict(
                duration_ns=20000.0,
                node_noise_std=0.01,
                coupling_noise_std=0.05,
            ),
        ]
        for kwargs in kwargs_grid:
            outcomes = {}
            for backend in ("dense", "sparse"):
                dspu = ScalableDSPU(
                    decomposed_traffic,
                    config,
                    node_time_constant_ns=500.0,
                    backend=backend,
                )
                outcomes[backend] = dspu.anneal(
                    tw.observed_index,
                    history,
                    rng=np.random.default_rng(7),
                    **kwargs,
                )
            assert np.allclose(
                outcomes["dense"].prediction,
                outcomes["sparse"].prediction,
                atol=1e-8,
            )
            assert np.isclose(
                outcomes["dense"].latency_ns, outcomes["sparse"].latency_ns
            )
