"""Tests of PEs, CUs, routers, and the mesh topology."""

import numpy as np
import pytest

from repro.hardware import (
    CouplingUnit,
    CUCapacityError,
    HardwareConfig,
    MeshTopology,
    PortalOverflowError,
    ProcessingElement,
    Router,
)
from repro.hardware.interconnect import CUSite


class TestHardwareConfig:
    def test_derived_quantities(self):
        cfg = HardwareConfig(grid_shape=(4, 4), pe_capacity=500, lanes=30)
        assert cfg.num_pes == 16
        assert cfg.total_capacity == 8000
        assert cfg.cu_crossbar_shape == (120, 90)

    def test_validation(self):
        with pytest.raises(ValueError, match="grid"):
            HardwareConfig(grid_shape=(0, 4))
        with pytest.raises(ValueError, match="capacity"):
            HardwareConfig(pe_capacity=0)
        with pytest.raises(ValueError, match="lanes"):
            HardwareConfig(lanes=0)
        with pytest.raises(ValueError, match="timing"):
            HardwareConfig(sync_interval_ns=0.0)


class TestRouter:
    def test_allocation_and_overflow(self):
        router = Router("TL", lanes=2)
        assert router.allocate(10) == 0
        assert router.allocate(11) == 1
        assert router.allocate(10) == 0  # idempotent
        with pytest.raises(PortalOverflowError):
            router.allocate(12)

    def test_release_frees_lane(self):
        router = Router("BR", lanes=1)
        router.allocate(5)
        router.release(5)
        assert router.allocate(6) == 0

    def test_unknown_portal(self):
        with pytest.raises(ValueError, match="portal"):
            Router("XX", lanes=1)


class TestProcessingElement:
    def test_capacity_enforced(self):
        with pytest.raises(ValueError, match="capacity"):
            ProcessingElement(index=0, nodes=np.arange(5), capacity=4, lanes=2)

    def test_partitions_split_in_half(self):
        pe = ProcessingElement(index=0, nodes=np.arange(6), capacity=8, lanes=2)
        first, second = pe.partitions()
        assert first.size == 3 and second.size == 3

    def test_routers_of_node_by_partition(self):
        pe = ProcessingElement(index=0, nodes=np.arange(4), capacity=4, lanes=2)
        assert pe.routers_of_node(0) == ("BL", "TR")
        assert pe.routers_of_node(3) == ("TL", "BR")
        with pytest.raises(ValueError, match="not on PE"):
            pe.routers_of_node(99)

    def test_boundary_nodes(self):
        J = np.zeros((6, 6))
        J[0, 4] = J[4, 0] = 1.0  # node 0 talks to external node 4
        pe = ProcessingElement(index=0, nodes=np.arange(3), capacity=4, lanes=2)
        assert np.array_equal(pe.boundary_nodes(J), [0])

    def test_local_coupling_block(self):
        J = np.arange(36, dtype=float).reshape(6, 6)
        pe = ProcessingElement(index=0, nodes=np.asarray([1, 3]), capacity=4, lanes=2)
        block = pe.local_coupling(J)
        assert block.shape == (2, 2)
        assert block[0, 1] == J[1, 3]


class TestCouplingUnit:
    def _cu(self):
        site = CUSite(corner=(1, 1), pes=(0, 1, 2, 3))
        return CouplingUnit(site=site, lanes=2)

    def test_connect_and_program(self):
        cu = self._cu()
        cu.connect_node(0, 10)
        cu.connect_node(1, 20)
        cu.program_coupling(10, 20, weight=-0.5)
        assert cu.weight_buffer[(10, 20)] == -0.5

    def test_same_pe_pair_rejected(self):
        cu = self._cu()
        cu.connect_node(0, 10)
        cu.connect_node(0, 11)
        with pytest.raises(ValueError, match="local crossbar"):
            cu.program_coupling(10, 11, 1.0)

    def test_port_capacity(self):
        cu = self._cu()
        cu.connect_node(0, 1)
        cu.connect_node(0, 2)
        with pytest.raises(CUCapacityError):
            cu.connect_node(0, 3)

    def test_buffer_weight_bypasses_ports(self):
        cu = self._cu()
        cu.buffer_weight(5, 6, 0.3)
        assert cu.weight_buffer[(5, 6)] == 0.3

    def test_clear(self):
        cu = self._cu()
        cu.connect_node(0, 1)
        cu.buffer_weight(1, 2, 1.0)
        cu.clear()
        assert not cu.weight_buffer
        assert cu.free_ports(0) == 2

    def test_unattached_pe_rejected(self):
        cu = self._cu()
        with pytest.raises(ValueError, match="not attached"):
            cu.connect_node(9, 1)


class TestMeshTopology:
    def test_cu_sites_count(self):
        topo = MeshTopology((2, 3))
        assert len(topo.cu_sites) == 3 * 4

    def test_corner_cu_has_one_pe(self):
        topo = MeshTopology((2, 2))
        sites = {s.corner: s for s in topo.cu_sites}
        assert sites[(0, 0)].pes == (0,)
        assert len(sites[(1, 1)].pes) == 4

    def test_shared_cus_for_neighbors(self):
        topo = MeshTopology((2, 2))
        assert len(topo.shared_cus(0, 1)) == 2  # horizontal neighbors
        assert len(topo.shared_cus(0, 3)) == 1  # diagonal
        topo3 = MeshTopology((1, 3))
        assert topo3.shared_cus(0, 2) == []  # remote

    def test_neighbor_predicates(self):
        topo = MeshTopology((3, 3))
        assert topo.are_mesh_neighbors(0, 1)
        assert not topo.are_mesh_neighbors(0, 4)
        assert topo.are_dmesh_neighbors(0, 4)
        assert not topo.are_dmesh_neighbors(0, 8)

    def test_wormhole_route_connects_endpoints(self):
        topo = MeshTopology((3, 3))
        route = topo.wormhole_route(0, 8)
        assert len(route) >= 2
        # Route endpoints must touch the two PEs.
        assert 0 in topo._sites[route[0]].pes
        assert 8 in topo._sites[route[-1]].pes
        # Consecutive corners are super-connection neighbors.
        for a, b in zip(route, route[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_pe_coordinates_validation(self):
        topo = MeshTopology((2, 2))
        with pytest.raises(ValueError, match="grid"):
            topo.pe_coordinates(7)
