"""Tests of the configuration-time (programming) model."""

import numpy as np
import pytest

from repro.hardware import HardwareConfig, ProgrammingModel


class TestMonolithic:
    def test_scales_with_spin_count(self):
        model = ProgrammingModel()
        small = model.monolithic(2000)
        big = model.monolithic(8000)
        assert np.isclose(big.full_program_ns, 4 * small.full_program_ns)

    def test_no_slice_switching(self):
        assert ProgrammingModel().monolithic(100).slice_switch_ns == 0.0

    def test_amortized_overhead_bounds(self):
        cost = ProgrammingModel().monolithic(1000, annealing_ns=5000.0)
        assert 0.0 < cost.amortized_overhead < 1.0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match="num_spins"):
            ProgrammingModel().monolithic(0)


class TestScalable:
    def test_mesh_programs_faster_than_monolithic(self, decomposed_traffic):
        """The scalability win: a grid of small crossbars configures in
        PE-capacity column writes, not total-capacity ones."""
        from repro.hardware import ScalableDSPU

        config = HardwareConfig(
            grid_shape=(3, 3),
            pe_capacity=decomposed_traffic.placement.capacity,
            lanes=8,
        )
        dspu = ScalableDSPU(decomposed_traffic, config)
        model = ProgrammingModel()
        speedup = model.speedup_over_monolithic(config, dspu.schedule)
        assert speedup > 2.0

    def test_slice_switch_fits_switch_interval(self, decomposed_traffic):
        """Weight Select must swap a slice's weights within one switch
        interval or temporal co-annealing cannot keep its schedule."""
        from repro.hardware import ScalableDSPU

        config = HardwareConfig(
            grid_shape=(3, 3),
            pe_capacity=decomposed_traffic.placement.capacity,
            lanes=8,
        )
        dspu = ScalableDSPU(decomposed_traffic, config)
        cost = ProgrammingModel().scalable(config, dspu.schedule)
        assert cost.slice_switch_ns < config.switch_interval_ns

    def test_without_schedule_only_pe_pass(self):
        config = HardwareConfig(grid_shape=(2, 2), pe_capacity=100, lanes=4)
        model = ProgrammingModel(column_write_ns=10.0)
        cost = model.scalable(config)
        assert np.isclose(cost.full_program_ns, 1000.0)
        assert cost.slice_switch_ns == 0.0

    def test_paper_configuration_point(self):
        """DS-GL (16 PEs x 500 spins) configures ~16x faster than a
        monolithic 8000-spin crossbar."""
        config = HardwareConfig(grid_shape=(4, 4), pe_capacity=500, lanes=30)
        model = ProgrammingModel()
        assert model.speedup_over_monolithic(config) >= 16.0 - 1e-9
