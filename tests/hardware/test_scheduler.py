"""Tests of the spatial/temporal co-annealing schedulers."""

import numpy as np
import pytest

from repro.decompose import PlacementResult
from repro.hardware import HardwareConfig, build_schedule


def _placement(n=24, grid=(2, 3)):
    num_pes = grid[0] * grid[1]
    per = n // num_pes
    groups = [np.arange(p * per, (p + 1) * per) for p in range(num_pes)]
    return PlacementResult(
        pe_of_node=np.repeat(np.arange(num_pes), per),
        grid_shape=grid,
        capacity=per,
        groups=groups,
    )


def _sparse_J(placement, pairs):
    n = placement.pe_of_node.size
    J = np.zeros((n, n))
    for a, b, w in pairs:
        J[a, b] = J[b, a] = w
    return J


class TestBuildSchedule:
    def test_all_inter_pe_pairs_scheduled(self):
        placement = _placement()
        J = _sparse_J(placement, [(0, 4, 1.0), (1, 5, 0.5), (8, 12, 0.2)])
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=4))
        scheduled = {(a.node_a, a.node_b) for a in schedule.assignments}
        assert scheduled == {(0, 4), (1, 5), (8, 12)}

    def test_intra_pe_pairs_not_scheduled(self):
        placement = _placement()
        J = _sparse_J(placement, [(0, 1, 1.0)])  # same PE
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=4))
        assert schedule.assignments == []
        assert schedule.is_spatial_only

    def test_neighbors_use_shared_cu(self):
        placement = _placement()
        J = _sparse_J(placement, [(0, 4, 1.0)])  # PE0-PE1 horizontal
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=4))
        a = schedule.assignments[0]
        assert not a.wormhole
        assert a.route_length == 1

    def test_remote_pairs_get_wormholes(self):
        placement = _placement()
        J = _sparse_J(placement, [(0, 20, 1.0)])  # PE0-PE5 remote
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=4))
        a = schedule.assignments[0]
        assert a.wormhole
        assert a.route_length >= 2
        assert schedule.wormhole_count() == 1

    def test_low_demand_is_spatial_only(self):
        placement = _placement()
        J = _sparse_J(placement, [(0, 4, 1.0), (1, 5, 0.9)])
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=8))
        assert schedule.is_spatial_only
        assert schedule.num_phases == 1

    def test_high_demand_triggers_temporal_slicing(self):
        placement = _placement()
        # Every node of PE0 couples to every node of PE1 -> demand 4 > L=2.
        pairs = [(i, j, 1.0) for i in range(4) for j in range(4, 8)]
        J = _sparse_J(placement, pairs)
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=2))
        assert not schedule.is_spatial_only
        assert schedule.num_phases > 1

    def test_slice_counts_are_powers_of_two(self):
        placement = _placement()
        pairs = [(i, j, float(i + j)) for i in range(4) for j in range(4, 8)]
        J = _sparse_J(placement, pairs)
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=2))
        for count in schedule.slices_per_cu.values():
            assert count & (count - 1) == 0  # power of two

    def test_lane_budget_respected_per_phase(self):
        placement = _placement()
        pairs = [(i, j, 1.0 + i) for i in range(4) for j in range(4, 8)]
        J = _sparse_J(placement, pairs)
        lanes = 2
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=lanes))
        for phase in range(schedule.num_phases):
            usage: dict = {}
            for a in schedule.active_in_phase(phase):
                usage.setdefault((a.cu, a.pe_a), set()).add(a.node_a)
                usage.setdefault((a.cu, a.pe_b), set()).add(a.node_b)
            for nodes in usage.values():
                assert len(nodes) <= lanes

    def test_every_assignment_live_in_exactly_its_duty(self):
        placement = _placement()
        pairs = [(i, j, 1.0) for i in range(4) for j in range(4, 8)]
        J = _sparse_J(placement, pairs)
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=2))
        for a in schedule.assignments:
            s = schedule.slices_per_cu[a.cu]
            live = sum(
                1
                for phase in range(schedule.num_phases)
                if a in schedule.active_in_phase(phase)
            )
            assert live == schedule.num_phases // s

    def test_weights_buffered_in_cus(self):
        placement = _placement()
        J = _sparse_J(placement, [(0, 4, -0.7)])
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=4))
        a = schedule.assignments[0]
        assert schedule.cus[a.cu].weight_buffer[(0, 4)] == -0.7

    def test_grid_mismatch_rejected(self):
        placement = _placement()
        with pytest.raises(ValueError, match="grid"):
            build_schedule(
                np.zeros((24, 24)),
                placement,
                HardwareConfig(grid_shape=(3, 3), pe_capacity=4),
            )

    def test_overloaded_pe_rejected(self):
        placement = _placement()
        with pytest.raises(ValueError, match="capacity"):
            build_schedule(
                np.zeros((24, 24)),
                placement,
                HardwareConfig(grid_shape=(2, 3), pe_capacity=2),
            )

    def test_duty_cycle_in_unit_interval(self):
        placement = _placement()
        pairs = [(i, j, 1.0) for i in range(4) for j in range(4, 8)]
        J = _sparse_J(placement, pairs)
        schedule = build_schedule(J, placement, HardwareConfig(grid_shape=(2, 3), pe_capacity=4, lanes=2))
        assert 0.0 < schedule.duty_cycle() <= 1.0
