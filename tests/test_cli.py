"""Tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "traffic"])
        assert args.dataset == "traffic"
        assert args.size == "small"
        assert args.window == 3

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "imagenet"])

    def test_table_numbers_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7"])

    def test_decompose_grid_option(self):
        args = build_parser().parse_args(
            ["decompose", "no2", "--grid", "2", "4", "--pattern", "mesh"]
        )
        assert tuple(args.grid) == (2, 4)
        assert args.pattern == "mesh"

    def test_observability_flags_on_every_subcommand(self):
        parser = build_parser()
        for argv in (
            ["datasets"],
            ["train", "o3"],
            ["decompose", "o3"],
            ["table", "1"],
            ["figure", "4"],
            ["bench"],
        ):
            args = parser.parse_args(argv + ["--trace", "t.jsonl", "--metrics"])
            assert args.trace == "t.jsonl"
            assert args.metrics is True

    def test_observability_flags_before_positionals(self):
        args = build_parser().parse_args(
            ["train", "--trace", "t.jsonl", "-vv", "o3"]
        )
        assert args.trace == "t.jsonl"
        assert args.verbose == 2
        assert args.dataset == "o3"

    def test_obs_summarize_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "summarize"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("traffic", "covid", "powergrid", "climate"):
            assert name in out

    def test_train_reports_rmse(self, capsys, tmp_path):
        path = tmp_path / "model.npz"
        assert main(["train", "o3", "--save", str(path)]) == 0
        out = capsys.readouterr().out
        assert "test RMSE" in out
        assert path.exists()
        from repro.core import DSGLModel

        loaded = DSGLModel.load(path)
        assert loaded.metadata["dataset"] == "o3"

    def test_decompose_reports_structure(self, capsys):
        assert main(["decompose", "o3", "--density", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "modularity" in out
        assert "decomposed RMSE" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "BRIM" in out and "DS-GL" in out

    def test_figure4(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "DSPU final" in out and "BRIM final" in out


class TestObservability:
    def test_train_trace_then_summarize(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "trace.jsonl"
        assert main(["train", "o3", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "circuit check" in out
        assert "settled fraction" in out
        assert f"trace written to {trace}" in out
        assert not obs.enabled()  # main() restores the disabled state

        records = obs.read_trace(trace)
        span_names = {r["name"] for r in records if r["kind"] == "span"}
        assert "circuit.run_batch" in span_names
        assert "engine.factorize" in span_names
        assert records[-1]["kind"] == "metrics"

        assert main(["obs", "summarize", str(trace)]) == 0
        summary = capsys.readouterr().out
        assert "circuit.run_batch" in summary
        assert "steps" in summary
        assert "settled_fraction" in summary
        assert "circuit.energy_probe" in summary
        assert "LU-cache hit rate" in summary

    def test_metrics_flag_prints_snapshot(self, capsys):
        assert main(["train", "o3", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "engine.cache_misses" in out
        assert "circuit.runs" in out
        assert "LU-cache hit rate" in out

    def test_no_flags_leaves_observability_disabled(self, capsys):
        from repro import obs

        assert main(["datasets"]) == 0
        assert not obs.enabled()
        assert "trace written" not in capsys.readouterr().out


class TestBenchCommand:
    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.suite == "core"
        assert args.out is None  # resolved to BENCH_<suite>.json at run time
        assert args.smoke is False
        assert args.batch == 64
        assert args.repeats == 3

    def test_bench_suite_nn_parses(self):
        args = build_parser().parse_args(["bench", "--suite", "nn"])
        assert args.suite == "nn"

    def test_bench_suite_nn_smoke_writes_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_nn.json"
        assert main(
            ["bench", "--suite", "nn", "--smoke", "--out", str(out),
             "--repeats", "1"]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "nn_fast_path"
        assert payload["smoke"] is True
        names = [r["name"] for r in payload["results"]]
        assert any("train_epoch" in n for n in names)
        assert any("graphconv" in n for n in names)
        stdout = capsys.readouterr().out
        assert "speedup" in stdout

    def test_bench_smoke_writes_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_core.json"
        assert main(["bench", "--smoke", "--out", str(out), "--repeats", "1"]) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "core_hot_paths"
        assert payload["smoke"] is True
        for result in payload["results"]:
            if result["name"] == "parallel_scaling_curve":
                # The scaling curve carries per-row deviations instead of
                # one comparison pair.
                for row in result["rows"]:
                    assert row["max_abs_diff"] < 1e-8
                    assert row["transport_max_abs_diff"] < 1e-8
                continue
            if result["name"].startswith("tune_"):
                # Tune rows judge both arms against an absolute MAE
                # ceiling instead of diffing the two outputs.
                assert result["equal_accuracy"] is True
                continue
            assert result["max_abs_diff"] < 1e-8
        stdout = capsys.readouterr().out
        assert "speedup" in stdout
        assert "scaling curve" in stdout
        assert str(out) in stdout

    def test_bench_embeds_samples_and_metrics(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_core.json"
        repeats = 2
        assert main(
            ["bench", "--smoke", "--out", str(out), "--repeats", str(repeats)]
        ) == 0
        payload = json.loads(out.read_text())
        for result in payload["results"]:
            if "baseline_stats" not in result:
                continue
            for stats_key in ("baseline_stats", "optimized_stats"):
                stats = result[stats_key]
                assert len(stats["samples_ms"]) == repeats
                assert stats["best_ms"] == min(stats["samples_ms"])
                assert stats["best_ms"] <= stats["median_ms"] <= stats["p90_ms"]
        equilibrium = next(
            r for r in payload["results"] if "equilibrium" in r["name"]
        )
        assert equilibrium["cache_hits"] > 0
        assert equilibrium["cache_misses"] >= 1
        counters = payload["metrics"]["counters"]
        assert counters["engine.cache_hits"] > 0
        assert counters["circuit.runs"] > 0
        stdout = capsys.readouterr().out
        assert "opt p50" in stdout
        assert "LU-cache hit rate" in stdout


class TestObsCliErrors:
    """Satellite: obs subcommands fail cleanly, never with a traceback."""

    def _fails_cleanly(self, capsys, argv, fragment):
        assert main(argv) == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert fragment in captured.err
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out

    def test_summarize_empty_trace(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        self._fails_cleanly(
            capsys, ["obs", "summarize", str(empty)], "trace is empty"
        )

    def test_summarize_truncated_trace(self, capsys, tmp_path):
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(
            '{"kind": "span", "name": "a", "span_id": 1, "parent_id": null,'
            ' "duration_ms": 1.0, "attributes": {}}\n'
            '{"kind": "span", "name": "b", "span_id'
        )
        self._fails_cleanly(
            capsys, ["obs", "summarize", str(truncated)], "line 2"
        )

    def test_summarize_missing_file(self, capsys, tmp_path):
        self._fails_cleanly(
            capsys,
            ["obs", "summarize", str(tmp_path / "nope.jsonl")],
            "no such trace file",
        )

    def test_timeline_shares_clean_error_handling(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        self._fails_cleanly(
            capsys, ["obs", "timeline", str(empty)], "trace is empty"
        )

    def test_export_without_embedded_metrics(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            '{"kind": "span", "name": "a", "span_id": 1, "parent_id": null,'
            ' "duration_ms": 1.0, "attributes": {}}\n'
        )
        self._fails_cleanly(
            capsys,
            ["obs", "export", str(trace)],
            "no embedded metrics snapshot",
        )

    def test_flame_missing_profile(self, capsys, tmp_path):
        self._fails_cleanly(
            capsys,
            ["obs", "flame", str(tmp_path / "nope.txt")],
            "no such profile file",
        )

    def test_diff_missing_snapshot(self, capsys, tmp_path):
        self._fails_cleanly(
            capsys,
            ["obs", "diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")],
            "no such bench snapshot",
        )


class TestObsToolingCli:
    """End-to-end smoke of the new obs subcommands on one traced run."""

    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs-cli")
        trace = tmp / "trace.jsonl"
        profile = tmp / "profile.txt"
        assert main(
            [
                "train", "o3",
                "--trace", str(trace),
                "--profile", str(profile),
                "--profile-interval", "0.002",
            ]
        ) == 0
        return trace, profile

    def test_profile_flag_writes_collapsed_stacks(self, traced_run):
        from repro import obs

        _trace, profile = traced_run
        assert profile.exists()
        samples = obs.read_profile(profile)
        assert sum(samples.values()) > 0
        assert all(stack[0].startswith("span:") for stack in samples)

    def test_timeline_renders_trace(self, capsys, traced_run):
        trace, _profile = traced_run
        assert main(["obs", "timeline", str(trace), "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "spans over" in out
        assert "no orphan spans" in out
        assert "critical path" in out

    def test_export_openmetrics_to_stdout(self, capsys, traced_run):
        trace, _profile = traced_run
        assert main(["obs", "export", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_circuit_runs_total counter" in out
        assert out.rstrip().endswith("# EOF")

    def test_export_json_to_file(self, capsys, traced_run, tmp_path):
        import json

        trace, _profile = traced_run
        out_path = tmp_path / "metrics.json"
        assert main(
            ["obs", "export", str(trace), "--format", "json",
             "--out", str(out_path)]
        ) == 0
        assert f"wrote {out_path}" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro.obs.metrics/v1"
        assert "circuit.runs" in document["snapshot"]["counters"]

    def test_flame_summarizes_profile(self, capsys, traced_run):
        _trace, profile = traced_run
        assert main(["obs", "flame", str(profile), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "samples across" in out
        assert "span:" in out


class TestObsDiffCli:
    def _bench(self, tmp_path, name, scale):
        import json

        samples = [scale * s for s in (10.0, 10.1, 10.2)]
        path = tmp_path / name
        path.write_text(json.dumps({
            "benchmark": "core",
            "results": [{
                "name": "engine_infer",
                "n": 96,
                "optimized_stats": {
                    "best_ms": min(samples),
                    "median_ms": sorted(samples)[1],
                    "samples_ms": samples,
                },
            }],
        }))
        return path

    def test_identical_snapshots_exit_zero(self, capsys, tmp_path):
        base = self._bench(tmp_path, "base.json", 1.0)
        cand = self._bench(tmp_path, "cand.json", 1.0)
        assert main(["obs", "diff", str(base), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out
        assert "REGRESSION" not in out

    def test_synthetic_slowdown_exits_three(self, capsys, tmp_path):
        base = self._bench(tmp_path, "base.json", 1.0)
        cand = self._bench(tmp_path, "cand.json", 2.0)
        assert main(["obs", "diff", str(base), str(cand)]) == 3
        out = capsys.readouterr().out
        assert "1 regression(s)" in out
        assert "REGRESSION" in out

    def test_min_band_flag_widens_tolerance(self, capsys, tmp_path):
        base = self._bench(tmp_path, "base.json", 1.0)
        cand = self._bench(tmp_path, "cand.json", 1.15)
        assert main(["obs", "diff", str(base), str(cand)]) == 3
        capsys.readouterr()
        assert main(
            ["obs", "diff", str(base), str(cand), "--min-band", "0.3"]
        ) == 0


class TestServeCli:
    def test_serve_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_run_defaults(self):
        args = build_parser().parse_args(["serve", "run"])
        assert args.serve_command == "run"
        assert args.batch_window_ms == 2.0
        assert args.max_batch_size == 64
        assert args.max_queue == 256
        assert args.closed_loop is False

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve", "bench", "--smoke"])
        assert args.serve_command == "bench"
        assert args.smoke is True
        assert args.repeats == 3

    def test_serve_accepts_observability_flags(self):
        args = build_parser().parse_args(
            ["serve", "run", "--trace", "t.jsonl", "--metrics"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics is True

    def test_serve_run_executes(self, capsys, tmp_path):
        out = tmp_path / "serve_run.json"
        code = main(
            [
                "serve", "run", "--n", "32", "--requests", "20",
                "--rate", "4000", "--json", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "open-loop: 20/20 served" in printed
        assert "p99.9" in printed
        import json

        document = json.loads(out.read_text())
        assert document["completed"] == 20
        assert document["latency_quantiles"]["p999_ms"] > 0

    def test_serve_run_closed_loop_executes(self, capsys):
        code = main(
            [
                "serve", "run", "--n", "32", "--requests", "12",
                "--closed-loop", "--concurrency", "3",
            ]
        )
        assert code == 0
        assert "closed-loop: 12/12 served" in capsys.readouterr().out

    def test_serve_bench_smoke_writes_payload(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "serve", "bench", "--smoke", "--repeats", "1",
                "--out", str(out), "--seed", "1",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "bitwise_identical=True" in printed
        import json

        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "serve_slo"
        names = {row["name"] for row in payload["results"]}
        assert {
            "serve_open_loop",
            "serve_batched_vs_serial",
            "serve_overload_shed",
        } <= names

    def test_serve_run_records_serve_spans(self, tmp_path):
        trace = tmp_path / "serve.jsonl"
        code = main(
            [
                "serve", "run", "--n", "32", "--requests", "10",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        from repro import obs

        records = obs.read_trace(trace)
        names = {
            r["name"] for r in records if r.get("kind") == "span"
        }
        assert "serve.batch" in names
        assert "serve.request" in names
