"""Tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "traffic"])
        assert args.dataset == "traffic"
        assert args.size == "small"
        assert args.window == 3

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "imagenet"])

    def test_table_numbers_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7"])

    def test_decompose_grid_option(self):
        args = build_parser().parse_args(
            ["decompose", "no2", "--grid", "2", "4", "--pattern", "mesh"]
        )
        assert tuple(args.grid) == (2, 4)
        assert args.pattern == "mesh"

    def test_observability_flags_on_every_subcommand(self):
        parser = build_parser()
        for argv in (
            ["datasets"],
            ["train", "o3"],
            ["decompose", "o3"],
            ["table", "1"],
            ["figure", "4"],
            ["bench"],
        ):
            args = parser.parse_args(argv + ["--trace", "t.jsonl", "--metrics"])
            assert args.trace == "t.jsonl"
            assert args.metrics is True

    def test_observability_flags_before_positionals(self):
        args = build_parser().parse_args(
            ["train", "--trace", "t.jsonl", "-vv", "o3"]
        )
        assert args.trace == "t.jsonl"
        assert args.verbose == 2
        assert args.dataset == "o3"

    def test_obs_summarize_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "summarize"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("traffic", "covid", "powergrid", "climate"):
            assert name in out

    def test_train_reports_rmse(self, capsys, tmp_path):
        path = tmp_path / "model.npz"
        assert main(["train", "o3", "--save", str(path)]) == 0
        out = capsys.readouterr().out
        assert "test RMSE" in out
        assert path.exists()
        from repro.core import DSGLModel

        loaded = DSGLModel.load(path)
        assert loaded.metadata["dataset"] == "o3"

    def test_decompose_reports_structure(self, capsys):
        assert main(["decompose", "o3", "--density", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "modularity" in out
        assert "decomposed RMSE" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "BRIM" in out and "DS-GL" in out

    def test_figure4(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "DSPU final" in out and "BRIM final" in out


class TestObservability:
    def test_train_trace_then_summarize(self, capsys, tmp_path):
        from repro import obs

        trace = tmp_path / "trace.jsonl"
        assert main(["train", "o3", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "circuit check" in out
        assert "settled fraction" in out
        assert f"trace written to {trace}" in out
        assert not obs.enabled()  # main() restores the disabled state

        records = obs.read_trace(trace)
        span_names = {r["name"] for r in records if r["kind"] == "span"}
        assert "circuit.run_batch" in span_names
        assert "engine.factorize" in span_names
        assert records[-1]["kind"] == "metrics"

        assert main(["obs", "summarize", str(trace)]) == 0
        summary = capsys.readouterr().out
        assert "circuit.run_batch" in summary
        assert "steps" in summary
        assert "settled_fraction" in summary
        assert "circuit.energy_probe" in summary
        assert "LU-cache hit rate" in summary

    def test_metrics_flag_prints_snapshot(self, capsys):
        assert main(["train", "o3", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "engine.cache_misses" in out
        assert "circuit.runs" in out
        assert "LU-cache hit rate" in out

    def test_no_flags_leaves_observability_disabled(self, capsys):
        from repro import obs

        assert main(["datasets"]) == 0
        assert not obs.enabled()
        assert "trace written" not in capsys.readouterr().out


class TestBenchCommand:
    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.suite == "core"
        assert args.out is None  # resolved to BENCH_<suite>.json at run time
        assert args.smoke is False
        assert args.batch == 64
        assert args.repeats == 3

    def test_bench_suite_nn_parses(self):
        args = build_parser().parse_args(["bench", "--suite", "nn"])
        assert args.suite == "nn"

    def test_bench_suite_nn_smoke_writes_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_nn.json"
        assert main(
            ["bench", "--suite", "nn", "--smoke", "--out", str(out),
             "--repeats", "1"]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "nn_fast_path"
        assert payload["smoke"] is True
        names = [r["name"] for r in payload["results"]]
        assert any("train_epoch" in n for n in names)
        assert any("graphconv" in n for n in names)
        stdout = capsys.readouterr().out
        assert "speedup" in stdout

    def test_bench_smoke_writes_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_core.json"
        assert main(["bench", "--smoke", "--out", str(out), "--repeats", "1"]) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "core_hot_paths"
        assert payload["smoke"] is True
        for result in payload["results"]:
            if result["name"] == "parallel_scaling_curve":
                # The scaling curve carries per-row deviations instead of
                # one comparison pair.
                for row in result["rows"]:
                    assert row["max_abs_diff"] < 1e-8
                    assert row["transport_max_abs_diff"] < 1e-8
                continue
            assert result["max_abs_diff"] < 1e-8
        stdout = capsys.readouterr().out
        assert "speedup" in stdout
        assert "scaling curve" in stdout
        assert str(out) in stdout

    def test_bench_embeds_samples_and_metrics(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_core.json"
        repeats = 2
        assert main(
            ["bench", "--smoke", "--out", str(out), "--repeats", str(repeats)]
        ) == 0
        payload = json.loads(out.read_text())
        for result in payload["results"]:
            if "baseline_stats" not in result:
                continue
            for stats_key in ("baseline_stats", "optimized_stats"):
                stats = result[stats_key]
                assert len(stats["samples_ms"]) == repeats
                assert stats["best_ms"] == min(stats["samples_ms"])
                assert stats["best_ms"] <= stats["median_ms"] <= stats["p90_ms"]
        equilibrium = next(
            r for r in payload["results"] if "equilibrium" in r["name"]
        )
        assert equilibrium["cache_hits"] > 0
        assert equilibrium["cache_misses"] >= 1
        counters = payload["metrics"]["counters"]
        assert counters["engine.cache_hits"] > 0
        assert counters["circuit.runs"] > 0
        stdout = capsys.readouterr().out
        assert "opt p50" in stdout
        assert "LU-cache hit rate" in stdout
