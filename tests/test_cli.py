"""Tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "traffic"])
        assert args.dataset == "traffic"
        assert args.size == "small"
        assert args.window == 3

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "imagenet"])

    def test_table_numbers_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "7"])

    def test_decompose_grid_option(self):
        args = build_parser().parse_args(
            ["decompose", "no2", "--grid", "2", "4", "--pattern", "mesh"]
        )
        assert tuple(args.grid) == (2, 4)
        assert args.pattern == "mesh"


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("traffic", "covid", "powergrid", "climate"):
            assert name in out

    def test_train_reports_rmse(self, capsys, tmp_path):
        path = tmp_path / "model.npz"
        assert main(["train", "o3", "--save", str(path)]) == 0
        out = capsys.readouterr().out
        assert "test RMSE" in out
        assert path.exists()
        from repro.core import DSGLModel

        loaded = DSGLModel.load(path)
        assert loaded.metadata["dataset"] == "o3"

    def test_decompose_reports_structure(self, capsys):
        assert main(["decompose", "o3", "--density", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "modularity" in out
        assert "decomposed RMSE" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "BRIM" in out and "DS-GL" in out

    def test_figure4(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "DSPU final" in out and "BRIM final" in out


class TestBenchCommand:
    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.out == "BENCH_core.json"
        assert args.smoke is False
        assert args.batch == 64
        assert args.repeats == 3

    def test_bench_smoke_writes_json(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_core.json"
        assert main(["bench", "--smoke", "--out", str(out), "--repeats", "1"]) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "core_hot_paths"
        assert payload["smoke"] is True
        for result in payload["results"]:
            assert result["max_abs_diff"] < 1e-8
        stdout = capsys.readouterr().out
        assert "speedup" in stdout
        assert str(out) in stdout
