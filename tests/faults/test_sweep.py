"""Tests of the accuracy-vs-fault-rate sweep and its CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    ExperimentContext,
    evaluate_hardware,
    fault_sweep_data,
    format_fault_sweep,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(size="small")


@pytest.fixture(scope="module")
def sweep(context):
    return fault_sweep_data(
        context,
        datasets=("traffic",),
        fault_rates=(0.0, 0.05),
        duration_ns=2000.0,
        max_windows=2,
    )


class TestSweepData:
    def test_structure(self, sweep):
        entry = sweep["traffic"]
        assert entry["fault_rates"] == [0.0, 0.05]
        assert len(entry["rmse"]) == 2
        assert len(entry["diverged"]) == 2
        assert len(entry["scenarios"]) == 2
        assert entry["scenarios"][0] == {"enabled": False}
        assert entry["scenarios"][1]["enabled"] is True

    def test_zero_rate_reproduces_baseline_bit_for_bit(self, context, sweep):
        """The integrity anchor: a disabled fault layer is a true no-op."""
        trained = context.dense("traffic")
        dspu = context.dspu("traffic", 0.15, "dmesh")
        baseline = evaluate_hardware(
            dspu,
            trained.windowing,
            trained.test.flat_series(),
            duration_ns=2000.0,
            max_windows=2,
        )
        assert sweep["traffic"]["rmse"][0] == baseline

    def test_faults_change_accuracy(self, sweep):
        rmse = sweep["traffic"]["rmse"]
        assert rmse[1] != rmse[0]
        assert np.isfinite(rmse).all() or sweep["traffic"]["diverged"][1]

    def test_trials_validated(self, context):
        with pytest.raises(ValueError, match="trials"):
            fault_sweep_data(context, trials=0)

    def test_json_serializable(self, sweep):
        payload = json.dumps(sweep)
        assert "fault_rates" in payload


class TestReporting:
    def test_format_renders_rates_and_counts(self, sweep):
        text = format_fault_sweep(sweep)
        assert "traffic" in text
        assert "0.050" in text
        assert "diverged" in text

    def test_nan_rendered_as_na(self):
        data = {
            "x": {
                "fault_rates": [0.5],
                "rmse": [float("nan")],
                "diverged": [3],
                "scenarios": [{"stuck_nodes": 1, "dead_couplers": 2}],
                "trials": 3,
            }
        }
        assert "n/a" in format_fault_sweep(data)


class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults", "sweep"])
        assert args.faults_command == "sweep"
        assert args.dataset is None
        assert args.rates is None
        assert not args.smoke

    def test_parser_options(self):
        args = build_parser().parse_args(
            [
                "faults", "sweep", "--smoke", "--dataset", "traffic",
                "--rates", "0.0", "0.02", "--trials", "2",
                "--json", "out.json", "--trace", "t.jsonl",
            ]
        )
        assert args.smoke
        assert args.dataset == ["traffic"]
        assert args.rates == [0.0, 0.02]
        assert args.trials == 2
        assert args.json == "out.json"
        assert args.trace == "t.jsonl"

    def test_smoke_run_writes_json(self, capsys, tmp_path):
        out = tmp_path / "fault_sweep.json"
        assert (
            main(
                [
                    "faults", "sweep", "--smoke", "--max-windows", "1",
                    "--duration-ns", "1000", "--json", str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "rate" in printed
        payload = json.loads(out.read_text())
        assert payload["traffic"]["fault_rates"] == [0.0, 0.02]
