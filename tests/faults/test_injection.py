"""Tests of fault-injection hooks across the annealing stack.

Covers the three injection points (circuit simulator, annealing engine,
Scalable DSPU) and the bit-for-bit null-object guarantee of
:data:`repro.faults.NO_FAULTS`.
"""

import numpy as np
import pytest

from repro.core import IntegrationConfig, NaturalAnnealingEngine
from repro.core.dynamics import CircuitSimulator
from repro.faults import NO_FAULTS, FaultModel, FaultScenario
from repro.hardware import HardwareConfig, ScalableDSPU


@pytest.fixture(scope="module")
def dspu(decomposed_traffic):
    config = HardwareConfig(
        grid_shape=(3, 3),
        pe_capacity=decomposed_traffic.placement.capacity,
        lanes=8,
    )
    return ScalableDSPU(
        decomposed_traffic, config, node_time_constant_ns=500.0
    )


def _anneal(dspu, traffic_setup, seed=5, **kwargs):
    tw = traffic_setup["windowing"]
    history = tw.history_of(traffic_setup["test"].series, 3)
    kwargs.setdefault("duration_ns", 2000.0)
    return dspu.anneal(
        tw.observed_index,
        history,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestCircuitInjection:
    def _settle(self, faults=NO_FAULTS, rail=1.0):
        n = 4
        J = np.zeros((n, n))
        J[0, 1] = J[1, 0] = 0.4
        h = -2.0

        def drift(sigma):
            return J @ sigma + h * sigma

        simulator = CircuitSimulator(
            config=IntegrationConfig(dt=0.05, rail=rail),
            rng=np.random.default_rng(0),
            faults=faults,
        )
        return simulator.run(drift, np.zeros(n), 40.0)

    def test_stuck_node_pinned_to_rail(self):
        scenario = FaultScenario(
            n=4,
            stuck_index=np.array([2]),
            stuck_sign=np.array([-1.0]),
        )
        run = self._settle(faults=scenario)
        assert run.final_state[2] == -1.0
        assert np.all(run.states[:, 2] == -1.0)

    def test_stuck_node_overrides_observation(self):
        scenario = FaultScenario(
            n=4,
            stuck_index=np.array([1]),
            stuck_sign=np.array([1.0]),
        )
        simulator = CircuitSimulator(
            config=IntegrationConfig(dt=0.05, rail=1.0),
            rng=np.random.default_rng(0),
            faults=scenario,
        )
        run = simulator.run(
            lambda s: -s,
            np.zeros(4),
            10.0,
            clamp_index=np.array([1]),
            clamp_value=np.array([0.25]),
        )
        # The defect wins: the clamp drive cannot move a latched node.
        assert run.final_state[1] == 1.0

    def test_null_scenario_bit_for_bit(self):
        baseline = self._settle()
        nulled = self._settle(faults=FaultModel().sample(4))
        assert np.array_equal(baseline.states, nulled.states)


class TestEngineInjection:
    def test_dead_coupler_reshapes_operator(self, trained_model):
        engine = NaturalAnnealingEngine(trained_model, backend="dense")
        i, j = np.nonzero(np.triu(trained_model.J, k=1))
        pair = np.array([[i[0], j[0]]])
        engine.set_faults(FaultScenario(n=trained_model.n, dead_pairs=pair))
        J_eff = np.asarray(engine.operator._J)
        assert J_eff[pair[0, 0], pair[0, 1]] == 0.0
        assert trained_model.J[pair[0, 0], pair[0, 1]] != 0.0

    def test_set_faults_invalidates_operator_cache(self, trained_model):
        engine = NaturalAnnealingEngine(trained_model, backend="dense")
        before = np.asarray(engine.operator._J).copy()
        i, j = np.nonzero(np.triu(trained_model.J, k=1))
        engine.set_faults(
            FaultScenario(n=trained_model.n, dead_pairs=np.array([[i[0], j[0]]]))
        )
        after = np.asarray(engine.operator._J)
        assert not np.array_equal(before, after)

    def test_stuck_node_threads_to_simulator(self, trained_model):
        n = trained_model.n
        engine = NaturalAnnealingEngine(
            trained_model,
            faults=FaultScenario(
                n=n, stuck_index=np.array([n - 1]), stuck_sign=np.array([1.0])
            ),
        )
        observed = np.arange(3)
        result = engine.infer(observed, np.zeros(3), duration=10.0)
        rail = engine.config.rail if engine.config.rail is not None else 1.0
        assert result.state[n - 1] == rail

    def test_null_faults_identical_inference(self, trained_model):
        observed = np.arange(3)
        values = np.zeros((2, 3))
        plain = NaturalAnnealingEngine(trained_model).infer_batch(
            observed, values, duration=10.0
        )
        nulled = NaturalAnnealingEngine(
            trained_model, faults=NO_FAULTS
        ).infer_batch(observed, values, duration=10.0)
        assert np.array_equal(plain.states, nulled.states)
        assert np.array_equal(plain.predictions, nulled.predictions)


class TestDSPUInjection:
    def test_null_faults_bit_for_bit(self, dspu, traffic_setup):
        baseline = _anneal(dspu, traffic_setup)
        explicit = _anneal(dspu, traffic_setup, faults=NO_FAULTS)
        sampled = _anneal(
            dspu, traffic_setup, faults=FaultModel().sample(dspu.model.n)
        )
        for other in (explicit, sampled):
            assert np.array_equal(baseline.prediction, other.prediction)
            assert np.array_equal(baseline.state, other.state)
            assert baseline.latency_ns == other.latency_ns
            assert other.sync_skips == 0

    def test_stuck_free_node_reads_rail(self, dspu, traffic_setup):
        tw = traffic_setup["windowing"]
        free = np.setdiff1d(np.arange(dspu.model.n), tw.observed_index)
        node = int(free[0])
        scenario = FaultScenario(
            n=dspu.model.n,
            stuck_index=np.array([node]),
            stuck_sign=np.array([1.0]),
        )
        outcome = _anneal(dspu, traffic_setup, faults=scenario)
        assert outcome.state[node] == dspu.config.rail_volts

    def test_sync_skips_stall_rotation(self, dspu, traffic_setup):
        scenario = FaultScenario(n=dspu.model.n, sync_skip_rate=0.5, seed=3)
        outcome = _anneal(
            dspu, traffic_setup, faults=scenario, duration_ns=4000.0
        )
        num_intervals = int(round(outcome.latency_ns / 200.0))
        expected = int(scenario.sync_skip_mask(num_intervals).sum())
        assert outcome.sync_skips == expected > 0
        # Executed phases are counted per interval even when stalled.
        assert outcome.phases_completed == num_intervals

    def test_coupler_faults_change_outcome(self, dspu, traffic_setup):
        scenario = FaultModel(
            dead_coupler_rate=0.2, coupler_gain_std=0.1, seed=2
        ).sample(dspu.model.n, J=dspu.model.J)
        clean = _anneal(dspu, traffic_setup)
        faulty = _anneal(dspu, traffic_setup, faults=scenario)
        assert not np.allclose(clean.prediction, faulty.prediction)

    def test_sparse_dense_parity_under_faults(
        self, decomposed_traffic, traffic_setup
    ):
        config = HardwareConfig(
            grid_shape=(3, 3),
            pe_capacity=decomposed_traffic.placement.capacity,
            lanes=8,
        )
        scenario = FaultModel.uniform(0.05, seed=8).sample(
            decomposed_traffic.model.n, J=decomposed_traffic.model.J
        )
        outcomes = {}
        for backend in ("dense", "sparse"):
            machine = ScalableDSPU(
                decomposed_traffic,
                config,
                node_time_constant_ns=500.0,
                backend=backend,
            )
            outcomes[backend] = _anneal(
                machine, traffic_setup, faults=scenario
            )
        assert np.allclose(
            outcomes["dense"].prediction,
            outcomes["sparse"].prediction,
            atol=1e-8,
        )
