"""Tests of the divergence guard and the random-restart policy."""

import numpy as np
import pytest

from repro import obs
from repro.core import IntegrationConfig, NaturalAnnealingEngine
from repro.core.dynamics import CircuitSimulator
from repro.faults import (
    DivergenceError,
    RestartOutcome,
    RestartPolicy,
    check_finite,
)


def _explosive_run(check_every):
    """An unrailed positive-feedback circuit that overflows quickly."""
    simulator = CircuitSimulator(
        config=IntegrationConfig(
            dt=1.0, rail=None, divergence_check_every=check_every
        ),
        rng=np.random.default_rng(0),
    )
    return simulator.run(
        lambda s: 1e10 * s**3, np.ones(3), duration=20.0
    )


class TestCheckFinite:
    def test_finite_state_passes(self):
        check_finite(np.zeros(5), "test", 1, 0.1)

    def test_nan_raises_with_diagnostics(self):
        sigma = np.array([0.0, np.nan, np.inf])
        with pytest.raises(DivergenceError, match="non-contractive") as info:
            check_finite(sigma, "unit", 7, 3.5)
        error = info.value
        assert error.where == "unit"
        assert error.step == 7
        assert error.time_ns == 3.5
        assert error.bad_nodes == 2
        assert "step 7" in str(error)

    def test_counter_and_event_recorded(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with obs.observe(trace_path=trace):
            with pytest.raises(DivergenceError):
                check_finite(np.array([np.nan]), "unit", 1, 0.5)
            assert (
                obs.metrics().counter("faults.divergence_errors").value == 1
            )
        assert "circuit.divergence" in trace.read_text()


class TestIntegrationGuard:
    def test_config_validated(self):
        with pytest.raises(ValueError, match="divergence_check_every"):
            IntegrationConfig(divergence_check_every=-1)

    def test_guard_off_returns_garbage_silently(self):
        np.seterr(all="ignore")
        try:
            run = _explosive_run(check_every=0)
        finally:
            np.seterr(all="warn")
        assert not np.isfinite(run.final_state).all()

    def test_guard_raises_mid_integration(self):
        np.seterr(all="ignore")
        try:
            with pytest.raises(DivergenceError, match="circuit"):
                _explosive_run(check_every=1)
        finally:
            np.seterr(all="warn")


class _FlakyEngine:
    """Wraps a real engine, failing the first ``fail_times`` batch calls."""

    def __init__(self, inner, fail_times):
        self.inner = inner
        self.operator = inner.operator
        self.fail_times = fail_times
        self.calls = 0

    def infer_batch(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise DivergenceError("stub", 3, 1.5, 2)
        return self.inner.infer_batch(*args, **kwargs)


class TestRestartPolicy:
    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="restarts"):
            RestartPolicy(restarts=0)
        with pytest.raises(ValueError, match="max_retries"):
            RestartPolicy(max_retries=-1)

    def test_best_energy_survivor_selected(self, trained_model):
        engine = NaturalAnnealingEngine(trained_model)
        policy = RestartPolicy(restarts=4, seed=1)
        outcome = policy.infer(
            engine, np.arange(3), np.zeros(3), duration=10.0
        )
        assert isinstance(outcome, RestartOutcome)
        assert outcome.energies.shape == (4,)
        assert outcome.best_index == int(np.argmin(outcome.energies))
        assert outcome.attempts == 1
        assert outcome.diverged == 0
        assert outcome.state.shape == (trained_model.n,)
        assert outcome.prediction.shape == (trained_model.n - 3,)

    def test_deterministic_given_seed(self, trained_model):
        engine = NaturalAnnealingEngine(trained_model)
        a = RestartPolicy(restarts=3, seed=5).infer(
            engine, np.arange(3), np.zeros(3), duration=10.0
        )
        b = RestartPolicy(restarts=3, seed=5).infer(
            engine, np.arange(3), np.zeros(3), duration=10.0
        )
        assert np.array_equal(a.state, b.state)
        assert np.array_equal(a.energies, b.energies)

    def test_recovers_after_divergence(self, trained_model):
        engine = _FlakyEngine(NaturalAnnealingEngine(trained_model), 1)
        policy = RestartPolicy(restarts=2, max_retries=2, seed=0)
        outcome = policy.infer(
            engine, np.arange(3), np.zeros(3), duration=10.0
        )
        assert outcome.diverged == 1
        assert outcome.attempts == 2
        assert np.isfinite(outcome.energies).all()

    def test_exhausted_retries_reraise(self, trained_model):
        engine = _FlakyEngine(NaturalAnnealingEngine(trained_model), 99)
        policy = RestartPolicy(restarts=2, max_retries=1, seed=0)
        with pytest.raises(DivergenceError, match="restart_policy"):
            policy.infer(engine, np.arange(3), np.zeros(3), duration=10.0)
        assert engine.calls == 2

    def test_recovery_counters_flow_through_obs(self, trained_model, tmp_path):
        engine = _FlakyEngine(NaturalAnnealingEngine(trained_model), 1)
        policy = RestartPolicy(restarts=3, max_retries=1, seed=0)
        with obs.observe(trace_path=tmp_path / "trace.jsonl"):
            policy.infer(engine, np.arange(3), np.zeros(3), duration=10.0)
            registry = obs.metrics()
            assert registry.counter("faults.restart_runs").value == 1
            assert registry.counter("faults.restarts").value == 3
            assert registry.counter("faults.restart_divergences").value == 1
