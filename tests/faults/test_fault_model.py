"""Tests of the declarative fault model and scenario sampling."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.faults import NO_FAULTS, FaultModel, FaultScenario


def _coupling(n=12, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    J = rng.normal(size=(n, n)) * (rng.random((n, n)) < density)
    J = (J + J.T) / 2.0
    np.fill_diagonal(J, 0.0)
    return J


class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="stuck_node_rate"):
            FaultModel(stuck_node_rate=1.5)
        with pytest.raises(ValueError, match="sync_skip_rate"):
            FaultModel(sync_skip_rate=-0.1)
        with pytest.raises(ValueError, match="coupler_gain_std"):
            FaultModel(coupler_gain_std=-1.0)

    def test_uniform_drives_all_device_channels(self):
        model = FaultModel.uniform(0.05, seed=3)
        assert model.stuck_node_rate == 0.05
        assert model.dead_coupler_rate == 0.05
        assert model.coupler_gain_std == 0.05
        assert model.coupler_offset_std == 0.05
        assert model.seed == 3

    def test_disabled_model_samples_shared_null(self):
        scenario = FaultModel().sample(64)
        assert scenario is NO_FAULTS
        assert not scenario.enabled

    def test_sampling_is_deterministic(self):
        model = FaultModel.uniform(0.1, seed=11)
        a = model.sample(40)
        b = model.sample(40)
        assert np.array_equal(a.stuck_index, b.stuck_index)
        assert np.array_equal(a.stuck_sign, b.stuck_sign)
        assert np.array_equal(a.dead_pairs, b.dead_pairs)
        assert np.allclose(a.gain, b.gain)
        assert np.allclose(a.offset, b.offset)

    def test_different_seeds_differ(self):
        model_a = FaultModel.uniform(0.2, seed=1)
        model_b = FaultModel.uniform(0.2, seed=2)
        a, b = model_a.sample(80), model_b.sample(80)
        assert not (
            np.array_equal(a.stuck_index, b.stuck_index)
            and np.array_equal(a.dead_pairs, b.dead_pairs)
        )

    def test_dead_pairs_target_programmed_couplers(self):
        J = _coupling()
        scenario = FaultModel(dead_coupler_rate=1.0, seed=0).sample(
            J.shape[0], J=J
        )
        assert scenario.dead_pairs.size
        for i, j in scenario.dead_pairs:
            assert i < j
            assert J[i, j] != 0

    def test_sampling_never_touches_caller_rng(self):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        FaultModel.uniform(0.1, seed=0).sample(32)
        assert rng.bit_generator.state == before


class TestNullScenario:
    def test_apply_coupling_returns_same_object(self):
        J = _coupling()
        assert NO_FAULTS.apply_coupling(J) is J

    def test_null_queries(self):
        assert NO_FAULTS.stuck_index.size == 0
        assert NO_FAULTS.stuck_values(1.0).size == 0
        assert NO_FAULTS.sync_skip_mask(100) is None
        assert NO_FAULTS.summary() == {"enabled": False}


class TestScenarioCoupling:
    def test_dense_sparse_parity(self):
        J = _coupling()
        scenario = FaultModel.uniform(0.15, seed=4).sample(J.shape[0], J=J)
        dense = scenario.apply_coupling(J)
        sparse = scenario.apply_coupling(sp.csr_matrix(J))
        assert sp.issparse(sparse)
        assert np.allclose(dense, sparse.toarray(), atol=1e-12)

    def test_diagonal_and_symmetry_preserved(self):
        J = _coupling()
        A = J + np.diag(-np.arange(1.0, J.shape[0] + 1.0))
        scenario = FaultModel.uniform(0.2, seed=9).sample(J.shape[0])
        out = scenario.apply_coupling(A)
        assert np.allclose(np.diag(out), np.diag(A))
        assert np.allclose(out, out.T)

    def test_dead_pairs_zeroed(self):
        J = _coupling()
        scenario = FaultScenario(
            n=J.shape[0], dead_pairs=np.array([[0, 1], [2, 5]])
        )
        out = scenario.apply_coupling(J)
        assert out[0, 1] == out[1, 0] == 0.0
        assert out[2, 5] == out[5, 2] == 0.0
        untouched = J.copy()
        untouched[[0, 1, 2, 5], [1, 0, 5, 2]] = 0.0
        assert np.allclose(out, untouched)

    def test_offset_only_hits_programmed_couplers(self):
        J = _coupling()
        rng = np.random.default_rng(0)
        offset = rng.normal(0.0, 0.5, size=J.shape)
        offset = (offset + offset.T) / 2.0
        np.fill_diagonal(offset, 0.0)
        scenario = FaultScenario(n=J.shape[0], offset=offset)
        out = scenario.apply_coupling(J)
        assert np.array_equal(out == 0, J == 0)

    def test_shape_mismatch_rejected(self):
        scenario = FaultModel.uniform(0.2, seed=0).sample(8)
        with pytest.raises(ValueError, match="n=8"):
            scenario.apply_coupling(np.zeros((9, 9)))


class TestSyncSkips:
    def test_mask_deterministic_and_rate_bounded(self):
        scenario = FaultScenario(n=4, sync_skip_rate=0.3, seed=7)
        a = scenario.sync_skip_mask(500)
        b = scenario.sync_skip_mask(500)
        assert np.array_equal(a, b)
        assert 0.15 < a.mean() < 0.45

    def test_zero_rate_returns_none(self):
        assert FaultScenario(n=4).sync_skip_mask(10) is None

    def test_summary_counts(self):
        scenario = FaultModel.uniform(0.5, seed=1).sample(20)
        summary = scenario.summary()
        assert summary["enabled"] is True
        assert summary["stuck_nodes"] == scenario.stuck_index.size
        assert summary["dead_couplers"] == scenario.dead_pairs.shape[0]
