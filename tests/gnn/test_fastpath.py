"""Tests of the GNN fast path: golden numerics, weighted validation,
chunked evaluation, cached graph supports, and float32 training.

The golden-history test is the determinism anchor for the whole refactor:
the fused ops, the cached adjacency wrap, the strided window views, and
the allocation-lean backward were all built to be bit-compatible with the
seed float64 path, and this test pins the seed's loss history to a
checked-in file.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.gnn import (
    GNNTrainConfig,
    GNNTrainer,
    GraphWaveNet,
    build_windows,
    default_adjacency,
)
from repro.gnn.trainer import _weighted_mean
from repro.nn import Tensor, no_grad
from repro.nn.layers import AdaptiveAdjacency

GOLDEN = Path(__file__).parent / "golden" / "gwn_history.json"

# Cross-platform float agreement bound (matches tests/test_golden.py):
# different BLAS builds may reassociate reductions.
RTOL = 1e-6


def _golden_fit() -> GNNTrainer:
    """The exact run that produced tests/gnn/golden/gwn_history.json."""
    ds = load_dataset("traffic", size="small")
    train, val, _test = ds.split()
    model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=8, seed=7)
    trainer = GNNTrainer(
        model, GNNTrainConfig(window=6, epochs=3, batch_size=27, seed=11)
    )
    return trainer.fit(train, val)


class TestGoldenHistory:
    """Seed float64 numerics must be unchanged by the fast-path refactor."""

    def test_history_matches_golden_file(self):
        golden = json.loads(GOLDEN.read_text())
        trainer = _golden_fit()
        assert len(trainer.history) == len(golden["history"])
        for (train_loss, val_rmse), (g_train, g_val) in zip(
            trainer.history, golden["history"]
        ):
            # Golden stores repr() strings: full precision, no JSON
            # float round-tripping ambiguity.
            assert train_loss == pytest.approx(float(g_train), rel=RTOL)
            assert val_rmse == pytest.approx(float(g_val), rel=RTOL)

    def test_refit_is_bitwise_deterministic(self):
        """Two identical fits on this machine agree to the last bit."""
        first = _golden_fit().history
        second = _golden_fit().history
        assert [[repr(a), repr(b)] for a, b in first] == [
            [repr(a), repr(b)] for a, b in second
        ]


class TestWeightedValidationFallback:
    def test_equal_weights_take_the_bitwise_mean_path(self):
        values = [0.125, 0.25, 0.5]
        assert _weighted_mean(values, [32, 32, 32]) == float(np.mean(values))

    def test_unequal_weights_are_respected(self):
        # Seed bug: a 2-sample tail batch counted as much as a 32-sample
        # one.  The weighted mean must tilt toward the larger batch.
        assert _weighted_mean([1.0, 3.0], [3, 1]) == pytest.approx(1.5)
        assert _weighted_mean([1.0, 3.0], [3, 1]) != pytest.approx(2.0)

    def test_empty_batches_give_nan(self):
        assert np.isnan(_weighted_mean([], []))

    def test_no_val_fallback_weights_partial_batches(self, monkeypatch):
        """With val=None and a non-divisible split, the reported val RMSE
        is the sqrt of the *size-weighted* per-batch MSE mean."""
        from repro.nn import ops

        recorded: list[tuple[float, int]] = []
        original = ops.mse_loss

        def recording_mse(prediction, target):
            loss = original(prediction, target)
            recorded.append((loss.item(), int(prediction.shape[0])))
            return loss

        monkeypatch.setattr(
            "repro.gnn.trainer.ops.mse_loss", recording_mse
        )
        ds = load_dataset("traffic", size="small")
        train, _val, _test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=4, seed=0)
        trainer = GNNTrainer(
            model, GNNTrainConfig(window=6, epochs=1, batch_size=20, seed=0)
        )
        trainer.fit(train, None)

        losses = [loss for loss, _size in recorded]
        sizes = [size for _loss, size in recorded]
        assert len(set(sizes)) > 1, "split must not divide evenly"
        expected = float(np.sqrt(np.average(losses, weights=sizes)))
        train_loss, val_rmse = trainer.history[0]
        assert val_rmse == expected
        assert train_loss == float(np.average(losses, weights=sizes))


class TestChunkedEvaluation:
    def test_chunked_matches_full_batch_bit_for_bit(self):
        ds = load_dataset("traffic", size="small")
        _train, _val, test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=8, seed=3)
        full = GNNTrainer(model, GNNTrainConfig(window=6))
        # 13 does not divide the split: exercises the ragged tail chunk.
        chunked = GNNTrainer(
            model, GNNTrainConfig(window=6, eval_batch_size=13)
        )
        assert chunked.evaluate(test) == full.evaluate(test)

    def test_oversized_chunk_is_the_full_batch_path(self):
        ds = load_dataset("traffic", size="small")
        _train, _val, test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=8, seed=3)
        full = GNNTrainer(model, GNNTrainConfig(window=6))
        big = GNNTrainer(
            model, GNNTrainConfig(window=6, eval_batch_size=10_000)
        )
        assert big.evaluate(test) == full.evaluate(test)

    def test_invalid_chunk_size_rejected(self):
        ds = load_dataset("traffic", size="small")
        _train, _val, test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=4, seed=0)
        trainer = GNNTrainer(
            model, GNNTrainConfig(window=6, eval_batch_size=0)
        )
        with pytest.raises(ValueError, match="positive"):
            trainer.evaluate(test)


class TestStridedWindows:
    def test_windows_are_zero_copy_views(self):
        series = np.arange(40, dtype=float).reshape(20, 2)
        X, y = build_windows(series, window=3)
        assert np.shares_memory(X, series)
        assert np.shares_memory(y, series)

    def test_view_matches_materialized_stack(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=(15, 4, 2))
        X, y = build_windows(series, window=5)
        stacked = np.stack([series[t : t + 5] for t in range(10)])
        np.testing.assert_array_equal(X, stacked)
        np.testing.assert_array_equal(y, series[5:])

    def test_dtype_casting(self):
        series = np.arange(20, dtype=float).reshape(10, 2)
        X, y = build_windows(series, window=3, dtype=np.float32)
        assert X.dtype == np.float32
        assert y.dtype == np.float32


class TestGraphBackendEquivalence:
    def _forward(self, backend):
        ds = load_dataset("traffic", size="small")
        model = GraphWaveNet(
            ds.num_nodes, default_adjacency(ds), hidden=8, seed=0,
            graph_backend=backend,
        )
        model.eval()
        X, _ = build_windows(ds.series, 6)
        with no_grad():
            return model(Tensor(np.ascontiguousarray(X[:4]))).numpy()

    def test_dense_support_matches_legacy_path(self):
        np.testing.assert_allclose(
            self._forward("dense"), self._forward(None), rtol=0, atol=1e-12
        )

    def test_sparse_support_matches_legacy_path(self):
        np.testing.assert_allclose(
            self._forward("sparse"), self._forward(None), rtol=0, atol=1e-12
        )

    def test_support_gradients_match_legacy_path(self):
        ds = load_dataset("traffic", size="small")
        X, y = build_windows(ds.series, 6)
        xb, yb = np.ascontiguousarray(X[:4]), np.ascontiguousarray(y[:4])
        grads = {}
        for backend in (None, "sparse"):
            model = GraphWaveNet(
                ds.num_nodes, default_adjacency(ds), hidden=8, seed=0,
                graph_backend=backend,
            )
            from repro.nn import ops

            loss = ops.mse_loss(model(Tensor(xb)), yb)
            loss.backward()
            grads[backend] = np.concatenate(
                [p.grad.ravel() for p in model.parameters()]
            )
        np.testing.assert_allclose(
            grads["sparse"], grads[None], rtol=0, atol=1e-12
        )

    def test_reassigning_adjacency_invalidates_cached_support(self):
        ds = load_dataset("traffic", size="small")
        A = default_adjacency(ds)
        model = GraphWaveNet(
            ds.num_nodes, A, hidden=8, seed=0, graph_backend="sparse"
        )
        x = Tensor(
            np.random.default_rng(5).normal(size=(1, 4, ds.num_nodes, 1))
        )
        with no_grad():
            base = model(x).numpy().copy()
            model.adjacency = np.zeros_like(A)
            changed = model(x).numpy()
        assert not np.allclose(base, changed)


class TestAdaptiveAdjacencyEvalCache:
    def test_eval_forward_is_cached_until_data_reassigned(self):
        layer = AdaptiveAdjacency(6, embedding_dim=3)
        layer.eval()
        with no_grad():
            first = layer()
            second = layer()
        assert second is first  # reused, not recomputed
        # Optimizer steps reassign ``p.data`` — that must invalidate.
        layer.source.data = layer.source.data.copy()
        with no_grad():
            third = layer()
        assert third is not first
        np.testing.assert_array_equal(third.numpy(), first.numpy())

    def test_training_mode_never_caches(self):
        layer = AdaptiveAdjacency(6, embedding_dim=3)
        layer.train()
        out = layer()
        assert out.requires_grad
        assert layer._eval_cache is None


class TestFloat32Training:
    def test_fit_casts_model_and_converges(self):
        ds = load_dataset("traffic", size="small")
        train, val, test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=8, seed=7)
        trainer = GNNTrainer(
            model,
            GNNTrainConfig(
                window=6, epochs=3, batch_size=27, seed=11, dtype="float32"
            ),
        )
        trainer.fit(train, val)
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        assert all(np.isfinite(loss) for loss, _val in trainer.history)
        assert np.isfinite(trainer.evaluate(test))
        prediction = trainer.predict(train.series[:6])
        assert prediction.dtype == np.float32

    def test_float32_history_tracks_float64_closely(self):
        """The accuracy caveat, quantified: same run at both dtypes stays
        within loose float32 tolerance on every epoch's loss."""
        golden = json.loads(GOLDEN.read_text())
        ds = load_dataset("traffic", size="small")
        train, val, _test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=8, seed=7)
        trainer = GNNTrainer(
            model,
            GNNTrainConfig(
                window=6, epochs=3, batch_size=27, seed=11, dtype="float32"
            ),
        )
        trainer.fit(train, val)
        for (train32, val32), (g_train, g_val) in zip(
            trainer.history, golden["history"]
        ):
            assert train32 == pytest.approx(float(g_train), rel=1e-2, abs=1e-4)
            assert val32 == pytest.approx(float(g_val), rel=1e-2, abs=1e-4)
