"""Tests of the GNN training harness."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.gnn import (
    GNNTrainConfig,
    GNNTrainer,
    GraphWaveNet,
    build_windows,
    default_adjacency,
)


class TestBuildWindows:
    def test_scalar_series_gets_feature_axis(self):
        series = np.arange(20, dtype=float).reshape(10, 2)
        X, y = build_windows(series, window=3)
        assert X.shape == (7, 3, 2, 1)
        assert y.shape == (7, 2, 1)

    def test_supervision_alignment(self):
        series = np.arange(10, dtype=float).reshape(10, 1)
        X, y = build_windows(series, window=4)
        # Window starting at 0 covers frames 0..3 and predicts frame 4.
        assert np.allclose(X[0, :, 0, 0], [0, 1, 2, 3])
        assert np.isclose(y[0, 0, 0], 4.0)

    def test_multidim_passthrough(self):
        series = np.zeros((8, 3, 2))
        X, y = build_windows(series, window=2)
        assert X.shape == (6, 2, 3, 2)
        assert y.shape == (6, 3, 2)

    def test_too_short_series(self):
        with pytest.raises(ValueError, match="too short"):
            build_windows(np.zeros((3, 2)), window=3)


class TestTrainer:
    @pytest.fixture(scope="class")
    def fitted(self):
        ds = load_dataset("traffic", size="small")
        train, val, _test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=8)
        trainer = GNNTrainer(
            model, GNNTrainConfig(window=4, epochs=4, batch_size=32)
        )
        trainer.fit(train, val)
        return ds, trainer

    def test_training_reduces_loss(self, fitted):
        _ds, trainer = fitted
        first_loss = trainer.history[0][0]
        last_loss = trainer.history[-1][0]
        assert last_loss < first_loss

    def test_evaluate_beats_marginal(self, fitted):
        ds, trainer = fitted
        _train, _val, test = ds.split()
        model_rmse = trainer.evaluate(test)
        marginal_rmse = float(np.std(test.series))
        assert model_rmse < marginal_rmse

    def test_predict_single_window(self, fitted):
        ds, trainer = fitted
        history = ds.series[:4]
        prediction = trainer.predict(history)
        assert prediction.shape == (ds.num_nodes, 1)

    def test_latency_measurement_positive(self, fitted):
        ds, trainer = fitted
        _train, _val, test = ds.split()
        latency = trainer.measure_latency(test, repeats=2)
        assert latency > 0

    def test_early_stopping_restores_best(self):
        ds = load_dataset("o3", size="small")
        train, val, _test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=8)
        trainer = GNNTrainer(
            model, GNNTrainConfig(window=4, epochs=12, patience=2)
        )
        trainer.fit(train, val)
        best_val = min(v for _t, v in trainer.history)
        X_val, y_val = build_windows(val.series, 4)
        assert np.isclose(trainer._score(X_val, y_val), best_val, rtol=1e-6)
