"""Tests of the GNN baseline architectures."""

import numpy as np
import pytest

from repro.datasets import community_geometric_graph, normalized_adjacency
from repro.gnn import DDGCRN, GraphAttentionNet, GraphWaveNet, MTGNN
from repro.nn import Tensor, no_grad

MODELS = (GraphWaveNet, MTGNN, DDGCRN, GraphAttentionNet)


def _setup(n=10, seed=0):
    net = community_geometric_graph(n, rng=np.random.default_rng(seed))
    return normalized_adjacency(net.adjacency)


@pytest.mark.parametrize("model_cls", MODELS)
class TestCommonInterface:
    def test_output_shape(self, model_cls):
        A = _setup()
        model = model_cls(10, A, in_features=2, out_features=2, hidden=8)
        out = model(Tensor(np.random.default_rng(1).normal(size=(3, 5, 10, 2))))
        assert out.shape == (3, 10, 2)

    def test_gradients_reach_every_parameter(self, model_cls):
        A = _setup()
        model = model_cls(10, A, hidden=8)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 4, 10, 1)))
        loss = (model(x) ** 2).mean()
        loss.backward()
        missing = [i for i, p in enumerate(model.parameters()) if p.grad is None]
        assert not missing, f"parameters without gradient: {missing}"

    def test_deterministic_given_seed(self, model_cls):
        A = _setup()
        a = model_cls(10, A, hidden=8, seed=5)
        b = model_cls(10, A, hidden=8, seed=5)
        x = Tensor(np.random.default_rng(3).normal(size=(1, 4, 10, 1)))
        with no_grad():
            assert np.allclose(a(x).data, b(x).data)

    def test_flops_positive_and_grows_with_window(self, model_cls):
        A = _setup()
        model = model_cls(10, A, hidden=8)
        f4 = model.flops_per_inference(4)
        f8 = model.flops_per_inference(8)
        assert 0 < f4 < f8

    def test_output_depends_on_input(self, model_cls):
        A = _setup()
        model = model_cls(10, A, hidden=8)
        rng = np.random.default_rng(4)
        x1 = Tensor(rng.normal(size=(1, 4, 10, 1)))
        x2 = Tensor(rng.normal(size=(1, 4, 10, 1)))
        with no_grad():
            assert not np.allclose(model(x1).data, model(x2).data)


class TestArchitectureSpecifics:
    def test_gwn_uses_fixed_graph(self):
        """Changing the physical adjacency must change GWN's output."""
        A = _setup()
        model = GraphWaveNet(10, A, hidden=8, seed=0)
        x = Tensor(np.random.default_rng(5).normal(size=(1, 4, 10, 1)))
        with no_grad():
            base = model(x).data.copy()
            model.adjacency = np.zeros_like(A)
            changed = model(x).data
        assert not np.allclose(base, changed)

    def test_mtgnn_requires_even_hidden(self):
        with pytest.raises(ValueError, match="divisible"):
            MTGNN(10, _setup(), hidden=7)

    def test_ddgcrn_decomposition_template_is_trainable(self):
        model = DDGCRN(10, _setup(), hidden=8)
        x = Tensor(np.random.default_rng(6).normal(size=(2, 3, 10, 1)))
        (model(x) ** 2).mean().backward()
        assert model.template.grad is not None

    def test_adjacency_shape_validated(self):
        with pytest.raises(ValueError, match="adjacency"):
            GraphWaveNet(5, np.zeros((4, 4)))

    def test_gat_attention_is_edge_masked(self):
        """Attention must not leak across non-edges: changing a node that
        is not a graph neighbor (and not reachable within the receptive
        field) leaves a node's output unchanged at the attention layer."""
        n = 6
        A = np.zeros((n, n))
        A[0, 1] = A[1, 0] = 1.0  # 0-1 is the only edge at node 0
        A[2, 3] = A[3, 2] = 1.0
        A[4, 5] = A[5, 4] = 1.0
        model = GraphAttentionNet(n, A, hidden=8, blocks=1)
        from repro.nn import Tensor, no_grad

        x = np.random.default_rng(7).normal(size=(1, 3, n, 1))
        with no_grad():
            base = model(Tensor(x)).data.copy()
            x2 = x.copy()
            x2[:, :, 4, :] += 10.0  # perturb a disconnected component
            changed = model(Tensor(x2)).data
        assert np.allclose(base[0, 0], changed[0, 0])
        assert np.allclose(base[0, 1], changed[0, 1])
        assert not np.allclose(base[0, 4], changed[0, 4])
