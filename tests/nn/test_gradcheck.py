"""Finite-difference gradcheck of every autograd op, at float64 AND float32.

Complements ``test_tensor.py``/``test_ops.py`` (float64-only, per-op)
with one systematic sweep: each op's analytic gradient at dtype ``D`` is
checked against a float64 central-difference reference of the same
function.  The float64 rows pin exactness (1e-6); the float32 rows bound
the rounding the fast path introduces (5e-3) and double as dtype-
preservation checks — the op's output and the gradient reaching the leaf
must both stay at ``D``.  Closure constants are materialized at the
input's dtype for the same reason (mixed tensor/tensor arithmetic
promotes by design).

Covers the fused fast-path ops (``linear_act``, ``temporal_conv``, fused
``mse_loss``) and the CouplingOperator-backed ``graph_propagate`` in
both dense and sparse storage.
"""

import numpy as np
import pytest

from repro.nn import GraphSupport, Tensor, graph_propagate, ops

RNG = np.random.default_rng(7)

#: (dtype, tolerance): float32 analytic gradients are compared against
#: the float64 finite-difference reference, so the tolerance absorbs
#: single-precision rounding of forward AND backward.
DTYPES = [
    pytest.param(np.float64, 1e-6, id="float64"),
    pytest.param(np.float32, 5e-3, id="float32"),
]


def C(array, x):
    """A constant Tensor at the dtype of ``x`` (no promotion)."""
    return Tensor(np.asarray(array).astype(x.data.dtype))


def numeric_gradient(f, x0, eps=1e-6):
    """Central-difference gradient of scalar ``f`` at float64 ``x0``."""
    x0 = np.asarray(x0, dtype=np.float64)
    grad = np.zeros_like(x0)
    flat = grad.reshape(-1)
    for i in range(x0.size):
        up = x0.copy().reshape(-1)
        up[i] += eps
        down = x0.copy().reshape(-1)
        down[i] -= eps
        up_val = f(Tensor(up.reshape(x0.shape))).data
        down_val = f(Tensor(down.reshape(x0.shape))).data
        flat[i] = (float(up_val) - float(down_val)) / (2 * eps)
    return grad


def gradcheck(f, x0, dtype, tol):
    """Analytic-vs-numeric gradient check at ``dtype``.

    ``f`` must map a Tensor to a scalar Tensor and preserve the input's
    dtype (use :func:`C` for closure constants).
    """
    dtype = np.dtype(dtype)
    x = Tensor(np.asarray(x0).astype(dtype), requires_grad=True)
    y = f(x)
    assert y.data.dtype == dtype, f"forward promoted {dtype} -> {y.data.dtype}"
    y.backward()
    assert x.grad is not None
    assert x.grad.dtype == dtype, f"backward promoted {dtype} -> {x.grad.dtype}"
    numeric = numeric_gradient(f, np.asarray(x0, dtype=np.float64))
    scale = max(float(np.max(np.abs(numeric))), 1.0)
    np.testing.assert_allclose(
        np.asarray(x.grad, dtype=np.float64), numeric, atol=tol * scale,
        rtol=tol,
    )


@pytest.mark.parametrize("dtype,tol", DTYPES)
class TestTensorOps:
    def test_add_broadcast(self, dtype, tol):
        bias = RNG.normal(size=4)
        gradcheck(
            lambda x: ((x + C(bias, x)) * (x + 2.0)).sum(),
            RNG.normal(size=(3, 4)), dtype, tol,
        )

    def test_sub_rsub_neg(self, dtype, tol):
        gradcheck(
            lambda x: ((1.0 - x) * (x - 0.5) * (-x)).sum(),
            RNG.normal(size=(5,)), dtype, tol,
        )

    def test_mul_broadcast(self, dtype, tol):
        w = RNG.normal(size=(1, 3))
        gradcheck(lambda x: (x * C(w, x) * x).sum(), RNG.normal(size=(2, 3)), dtype, tol)

    def test_div_rdiv(self, dtype, tol):
        gradcheck(
            lambda x: (x / 3.0 + 2.0 / x).sum(),
            RNG.uniform(1.0, 2.0, size=(4,)), dtype, tol,
        )

    def test_pow(self, dtype, tol):
        gradcheck(lambda x: (x**3).sum(), RNG.uniform(0.5, 1.5, size=(3, 2)), dtype, tol)

    def test_matmul_2d(self, dtype, tol):
        w = RNG.normal(size=(4, 2))
        gradcheck(lambda x: (x @ C(w, x)).sum(), RNG.normal(size=(3, 4)), dtype, tol)

    def test_matmul_batched(self, dtype, tol):
        w = RNG.normal(size=(3, 2))
        gradcheck(
            lambda x: ((x @ C(w, x)) ** 2).sum(), RNG.normal(size=(2, 4, 3)), dtype, tol
        )

    def test_matmul_vector(self, dtype, tol):
        v = RNG.normal(size=4)
        gradcheck(lambda x: (x @ C(v, x)).sum(), RNG.normal(size=(3, 4)), dtype, tol)

    def test_getitem(self, dtype, tol):
        gradcheck(lambda x: (x[1:, ::2] ** 2).sum(), RNG.normal(size=(3, 4)), dtype, tol)

    def test_reshape_transpose(self, dtype, tol):
        gradcheck(
            lambda x: (x.reshape(4, 3).T * x.reshape(3, 4)).sum(),
            RNG.normal(size=(2, 6)), dtype, tol,
        )

    def test_sum_axis(self, dtype, tol):
        gradcheck(lambda x: (x.sum(axis=1) ** 2).sum(), RNG.normal(size=(3, 4)), dtype, tol)

    def test_mean_axis_keepdims(self, dtype, tol):
        gradcheck(
            lambda x: (x * x.mean(axis=-1, keepdims=True)).sum(),
            RNG.normal(size=(2, 5)), dtype, tol,
        )

    def test_max(self, dtype, tol):
        # Distinct values: max is non-differentiable at ties.
        x0 = np.linspace(-1.0, 1.0, 12).reshape(3, 4)
        gradcheck(lambda x: (x.max(axis=1) ** 2).sum(), RNG.permuted(x0), dtype, tol)

    def test_astype_round_trip(self, dtype, tol):
        gradcheck(
            lambda x: (x.astype(np.float64) ** 2).sum().astype(x.data.dtype),
            RNG.normal(size=(3,)), dtype, tol,
        )


@pytest.mark.parametrize("dtype,tol", DTYPES)
class TestElementwiseOps:
    def test_exp(self, dtype, tol):
        gradcheck(lambda x: ops.exp(x).sum(), RNG.normal(size=(3, 2)), dtype, tol)

    def test_log(self, dtype, tol):
        gradcheck(lambda x: ops.log(x).sum(), RNG.uniform(0.5, 2.0, size=(4,)), dtype, tol)

    def test_tanh(self, dtype, tol):
        gradcheck(lambda x: ops.tanh(x).sum(), RNG.normal(size=(3, 3)), dtype, tol)

    def test_sigmoid(self, dtype, tol):
        gradcheck(lambda x: ops.sigmoid(x).sum(), RNG.normal(size=(3, 3)), dtype, tol)

    def test_relu(self, dtype, tol):
        # Keep values away from the kink.
        x0 = RNG.normal(size=(4, 3))
        x0[np.abs(x0) < 0.1] = 0.5
        gradcheck(lambda x: (ops.relu(x) ** 2).sum(), x0, dtype, tol)

    def test_leaky_relu(self, dtype, tol):
        x0 = RNG.normal(size=(4, 3))
        x0[np.abs(x0) < 0.1] = -0.5
        gradcheck(lambda x: (ops.leaky_relu(x, 0.2) ** 2).sum(), x0, dtype, tol)

    def test_softmax(self, dtype, tol):
        w = RNG.normal(size=5)
        gradcheck(
            lambda x: (ops.softmax(x, axis=-1) * C(w, x)).sum(),
            RNG.normal(size=(2, 5)), dtype, tol,
        )

    def test_dropout(self, dtype, tol):
        # A fresh identically-seeded generator per call keeps the mask
        # fixed across the finite-difference evaluations.
        gradcheck(
            lambda x: (ops.dropout(x, 0.4, np.random.default_rng(3), True) ** 2).sum(),
            RNG.normal(size=(4, 4)), dtype, tol,
        )

    def test_concat(self, dtype, tol):
        other = RNG.normal(size=(2, 3))
        gradcheck(
            lambda x: (ops.concat([x, C(other, x)], axis=0) ** 2).sum(),
            RNG.normal(size=(2, 3)), dtype, tol,
        )

    def test_stack(self, dtype, tol):
        other = RNG.normal(size=(2, 3))
        gradcheck(
            lambda x: (ops.stack([x, C(other, x)], axis=1) ** 2).sum(),
            RNG.normal(size=(2, 3)), dtype, tol,
        )

    def test_pad_time(self, dtype, tol):
        gradcheck(
            lambda x: (ops.pad_time(x, 2, axis=1) ** 2).sum(),
            RNG.normal(size=(2, 3, 2)), dtype, tol,
        )


@pytest.mark.parametrize("dtype,tol", DTYPES)
class TestFusedOps:
    @pytest.mark.parametrize("activation", [None, "relu", "tanh", "sigmoid"])
    def test_linear_act_wrt_input(self, dtype, tol, activation):
        w = RNG.normal(size=(4, 3))
        b = RNG.normal(size=3)
        gradcheck(
            lambda x: (ops.linear_act(x, C(w, x), C(b, x), activation) ** 2).sum(),
            RNG.normal(size=(2, 5, 4)) + 0.3, dtype, tol,
        )

    def test_linear_act_wrt_weight_and_bias(self, dtype, tol):
        x0 = RNG.normal(size=(3, 4))
        b = RNG.normal(size=2)
        gradcheck(
            lambda w: (ops.linear_act(C(x0, w), w, C(b, w), "tanh") ** 2).sum(),
            RNG.normal(size=(4, 2)), dtype, tol,
        )
        w0 = RNG.normal(size=(4, 2))
        gradcheck(
            lambda bias: (
                ops.linear_act(C(x0, bias), C(w0, bias), bias, "sigmoid") ** 2
            ).sum(),
            RNG.normal(size=(2,)), dtype, tol,
        )

    def test_linear_act_vector_input(self, dtype, tol):
        w = RNG.normal(size=(4, 3))
        gradcheck(
            lambda x: (ops.linear_act(x, C(w, x), None, "tanh") ** 2).sum(),
            RNG.normal(size=(4,)), dtype, tol,
        )

    @pytest.mark.parametrize("activation", [None, "tanh", "sigmoid"])
    def test_temporal_conv_wrt_input(self, dtype, tol, activation):
        taps = [RNG.normal(size=(2, 3)) for _ in range(2)]
        b = RNG.normal(size=3)
        gradcheck(
            lambda x: (
                ops.temporal_conv(
                    x, [C(t, x) for t in taps], C(b, x), 2, activation
                ) ** 2
            ).sum(),
            RNG.normal(size=(2, 5, 3, 2)), dtype, tol,
        )

    def test_temporal_conv_wrt_taps_and_bias(self, dtype, tol):
        x0 = RNG.normal(size=(2, 4, 3, 2))
        tap1 = RNG.normal(size=(2, 3))
        b = RNG.normal(size=3)
        gradcheck(
            lambda tap0: (
                ops.temporal_conv(
                    C(x0, tap0), [tap0, C(tap1, tap0)], C(b, tap0), 1, "tanh"
                ) ** 2
            ).sum(),
            RNG.normal(size=(2, 3)), dtype, tol,
        )
        tap0 = RNG.normal(size=(2, 3))
        gradcheck(
            lambda bias: (
                ops.temporal_conv(
                    C(x0, bias), [C(tap0, bias), C(tap1, bias)], bias, 1
                ) ** 2
            ).sum(),
            RNG.normal(size=(3,)), dtype, tol,
        )

    def test_mse_loss(self, dtype, tol):
        target = RNG.normal(size=(3, 4))
        gradcheck(
            lambda x: ops.mse_loss(x, target.astype(x.data.dtype)),
            RNG.normal(size=(3, 4)), dtype, tol,
        )

    def test_mse_loss_wrt_target(self, dtype, tol):
        prediction = RNG.normal(size=(3, 4))
        gradcheck(
            lambda t: ops.mse_loss(C(prediction, t), t),
            RNG.normal(size=(3, 4)), dtype, tol,
        )

    def test_mae_loss(self, dtype, tol):
        # Keep prediction-target gaps away from the |.| kink.
        target = np.zeros((3, 4))
        x0 = np.sign(RNG.normal(size=(3, 4))) * RNG.uniform(0.5, 1.5, size=(3, 4))
        gradcheck(lambda x: ops.mae_loss(x, target.astype(x.data.dtype)), x0, dtype, tol)


@pytest.mark.parametrize("dtype,tol", DTYPES)
@pytest.mark.parametrize("backend", ["dense", "sparse"])
class TestGraphPropagate:
    def test_matches_finite_differences(self, dtype, tol, backend):
        n = 6
        adjacency = RNG.random((n, n)) * (RNG.random((n, n)) < 0.5)
        np.fill_diagonal(adjacency, 1.0)
        adjacency /= adjacency.sum(axis=1, keepdims=True)

        def f(x):
            support = GraphSupport(
                adjacency.astype(x.data.dtype), backend=backend
            )
            return (graph_propagate(x, support) ** 2).sum()

        gradcheck(f, RNG.normal(size=(2, n, 3)), dtype, tol)

    def test_matches_dense_matmul(self, dtype, tol, backend):
        n = 5
        adjacency = RNG.random((n, n))
        support = GraphSupport(adjacency.astype(dtype), backend=backend)
        x = Tensor(RNG.normal(size=(n, 2)).astype(dtype), requires_grad=True)
        out = graph_propagate(x, support)
        np.testing.assert_allclose(
            out.numpy(), adjacency.astype(dtype) @ x.numpy(), rtol=10 * tol
        )
        out.sum().backward()
        np.testing.assert_allclose(
            x.grad,
            adjacency.astype(dtype).T @ np.ones((n, 2), dtype=dtype),
            rtol=10 * tol,
        )
