"""Content-fingerprint invalidation of the adjacency cache.

The seed cache keyed prepared supports by ``id(adjacency)`` — mutating
the adjacency in place mid-training silently kept propagating through
the stale preparation.  These tests pin the fix: lookups key on content,
stale entries are evicted (and counted), the delta path updates the
cached operator structurally, and the GWN ``_graph_cache`` integration
observes in-place edits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.gnn import GraphWaveNet
from repro.nn.graph import AdjacencyCache, GraphSupport, graph_propagate
from repro.stream import GraphDelta


def _adjacency(n=12, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    return A / np.maximum(A.sum(axis=1, keepdims=True), 1.0)


class TestContentKeying:
    def test_same_content_same_support(self):
        cache = AdjacencyCache()
        A = _adjacency()
        assert cache.support(A) is cache.support(A)
        assert cache.stale_invalidations == 0

    def test_in_place_mutation_rebuilds_and_evicts(self):
        """The mid-training footgun: writing into the adjacency between
        lookups must invalidate the prepared support."""
        cache = AdjacencyCache()
        A = _adjacency()
        stale = cache.support(A)
        x = np.random.default_rng(3).normal(size=(A.shape[0], 2))
        before = graph_propagate(x, stale).data
        A[0, :] = 0.0
        A[0, 1] = 1.0
        fresh = cache.support(A)
        assert fresh is not stale
        assert cache.stale_invalidations == 1
        after = graph_propagate(x, fresh).data
        assert np.array_equal(after, A @ x)
        assert not np.array_equal(after, before)

    def test_reassigned_equal_content_hits_without_eviction(self):
        cache = AdjacencyCache()
        A = _adjacency()
        support = cache.support(A)
        assert cache.support(A.copy()) is support

    def test_distinct_params_do_not_collide(self):
        cache = AdjacencyCache()
        A = _adjacency()
        dense = cache.support(A, backend="dense")
        sparse = cache.support(A, backend="sparse")
        assert dense is not sparse
        assert dense.backend == "dense"
        assert sparse.backend == "sparse"


class TestDeltaFastPath:
    def test_apply_delta_edits_array_and_reuses_structure(self):
        cache = AdjacencyCache()
        A = _adjacency()
        warm = cache.support(A, backend="sparse")
        i, j = map(int, np.argwhere(A)[0])
        new_weight = float(A[i, j]) + 0.25
        support = cache.apply_delta(
            A, GraphDelta.reweight_edge(i, j, new_weight), backend="sparse"
        )
        assert A[i, j] == new_weight
        assert support is not warm
        assert cache.stale_invalidations == 1
        # The edited support is what the next content lookup resolves to.
        assert cache.support(A, backend="sparse") is support
        x = np.random.default_rng(1).normal(size=(A.shape[0], 3))
        assert np.allclose(graph_propagate(x, support).data, A @ x)

    def test_apply_delta_cold_cache_builds_fresh(self):
        cache = AdjacencyCache()
        A = _adjacency()
        support = cache.apply_delta(A, GraphDelta.add_edge(0, 5, 0.7))
        assert A[0, 5] == 0.7
        assert isinstance(support, GraphSupport)
        assert cache.support(A) is support

    def test_directed_semantics_and_diagonal_allowed(self):
        cache = AdjacencyCache()
        A = _adjacency()
        cache.apply_delta(
            A, GraphDelta.from_edges([(2, 6, 0.9), (6, 6, 0.5)])
        )
        assert A[2, 6] == 0.9
        assert A[6, 2] != 0.9  # directed: no symmetric expansion
        assert A[6, 6] == 0.5


class TestGraphWaveNetIntegration:
    @pytest.mark.parametrize("graph_backend", ["dense", "sparse"])
    def test_mid_training_adjacency_edit_is_observed(self, graph_backend):
        """Editing ``model.adjacency`` in place between forward passes
        must change the fixed-support propagation — bit-for-bit equal to
        a model built directly on the edited adjacency."""
        n = 10
        A = _adjacency(n, seed=2)
        model = GraphWaveNet(
            n, A.copy(), hidden=4, blocks=1, graph_backend=graph_backend
        )
        x = np.random.default_rng(5).normal(size=(2, 4, n, 1))
        model.forward(x)  # warm the cache
        model.adjacency[3, :] = 0.0
        model.adjacency[3, 4] = 1.0
        edited = model.forward(x).data
        reference = GraphWaveNet(
            n,
            model.adjacency.copy(),
            hidden=4,
            blocks=1,
            graph_backend=graph_backend,
        ).forward(x).data
        assert np.array_equal(edited, reference)
        assert model._graph_cache.stale_invalidations == 1

    def test_legacy_tensor_path_shares_storage(self):
        """Without a graph backend the zero-copy tensor wrap observes
        in-place writes through shared storage — seed behaviour, still
        guaranteed."""
        n = 8
        A = _adjacency(n, seed=7)
        cache = nn.AdjacencyCache()
        wrapped = cache.tensor(A, A.dtype)
        A[0, 0] = 0.123
        assert wrapped.data[0, 0] == 0.123
        assert cache.tensor(A, A.dtype) is wrapped
