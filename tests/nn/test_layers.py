"""Tests of neural layers: shapes, gradients, semantic properties."""

import numpy as np
import pytest

from repro.nn import (
    AdaptiveAdjacency,
    GatedTemporalConv,
    GraphConv,
    GRUCell,
    LayerNorm,
    Linear,
    TemporalConv,
    Tensor,
    ops,
)

RNG = np.random.default_rng(2)


class TestLinear:
    def test_shape(self):
        layer = Linear(4, 7, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 7)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=RNG)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_reach_weights(self):
        layer = Linear(3, 2, rng=RNG)
        loss = (layer(Tensor(RNG.normal(size=(4, 3)))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestLayerNorm:
    def test_normalizes_channels(self):
        layer = LayerNorm(8)
        out = layer(Tensor(RNG.normal(3.0, 2.0, size=(4, 8))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_learnable_scale_shift(self):
        layer = LayerNorm(4)
        layer.gamma.data = np.full(4, 2.0)
        layer.beta.data = np.full(4, 1.0)
        out = layer(Tensor(RNG.normal(size=(2, 4))))
        assert np.allclose(out.data.mean(axis=-1), 1.0, atol=1e-6)


class TestTemporalConv:
    def test_shape_preserves_time(self):
        conv = TemporalConv(3, 5, kernel_size=2, dilation=2, rng=RNG)
        out = conv(Tensor(RNG.normal(size=(2, 7, 4, 3))))
        assert out.shape == (2, 7, 4, 5)

    def test_causality(self):
        """Output at time t must not depend on inputs after t."""
        conv = TemporalConv(1, 1, kernel_size=3, dilation=1, rng=RNG)
        x = RNG.normal(size=(1, 6, 1, 1))
        base = conv(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 4] += 10.0  # change a late frame
        out = conv(Tensor(perturbed)).data
        assert np.allclose(out[0, :4], base[0, :4])
        assert not np.allclose(out[0, 4:], base[0, 4:])

    def test_kernel_one_is_pointwise(self):
        conv = TemporalConv(2, 2, kernel_size=1, rng=RNG)
        x = RNG.normal(size=(1, 3, 2, 2))
        out = conv(Tensor(x)).data
        expected = x @ conv.taps[0].data + conv.bias.data
        assert np.allclose(out, expected)

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError, match="positive"):
            TemporalConv(1, 1, kernel_size=0)


class TestGatedTemporalConv:
    def test_output_bounded_by_tanh_gate(self):
        conv = GatedTemporalConv(2, 3, rng=RNG)
        out = conv(Tensor(RNG.normal(size=(2, 5, 3, 2))))
        assert np.all(np.abs(out.data) <= 1.0)


class TestGraphConv:
    def test_shape(self):
        conv = GraphConv(3, 4, order=2, rng=RNG)
        A = np.abs(RNG.normal(size=(6, 6)))
        out = conv(Tensor(RNG.normal(size=(2, 5, 6, 3))), A)
        assert out.shape == (2, 5, 6, 4)

    def test_zero_adjacency_reduces_to_pointwise(self):
        conv = GraphConv(2, 2, order=2, rng=RNG)
        x = RNG.normal(size=(1, 1, 4, 2))
        out = conv(Tensor(x), np.zeros((4, 4))).data
        expected = x @ conv.hops[0].data + conv.bias.data
        assert np.allclose(out, expected)

    def test_information_propagates_k_hops(self):
        """With a path graph, order-2 propagation reaches 2-hop neighbors
        but not 3-hop ones."""
        conv = GraphConv(1, 1, order=2, rng=RNG)
        n = 5
        A = np.zeros((n, n))
        for i in range(n - 1):
            A[i, i + 1] = A[i + 1, i] = 1.0
        x = np.zeros((1, 1, n, 1))
        base = conv(Tensor(x), A).data
        x2 = x.copy()
        x2[0, 0, 0, 0] = 1.0  # perturb node 0
        out = conv(Tensor(x2), A).data
        delta = np.abs(out - base)[0, 0, :, 0]
        assert delta[0] > 0 and delta[1] > 0 and delta[2] > 0
        assert np.isclose(delta[3], 0.0) and np.isclose(delta[4], 0.0)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            GraphConv(1, 1, order=0)


class TestAdaptiveAdjacency:
    def test_rows_are_distributions(self):
        adj = AdaptiveAdjacency(6, embedding_dim=4, rng=RNG)()
        assert adj.shape == (6, 6)
        assert np.allclose(adj.data.sum(axis=-1), 1.0)
        assert np.all(adj.data >= 0.0)

    def test_trainable(self):
        layer = AdaptiveAdjacency(4, rng=RNG)
        (layer() ** 2).sum().backward()
        assert layer.source.grad is not None
        assert layer.target.grad is not None


class TestGRUCell:
    def test_state_shape_preserved(self):
        cell = GRUCell(lambda: Linear(5 + 6, 6, rng=RNG))
        x = Tensor(RNG.normal(size=(2, 5)))
        state = Tensor(np.zeros((2, 6)))
        out = cell(x, state)
        assert out.shape == (2, 6)

    def test_state_evolves_with_input(self):
        cell = GRUCell(lambda: Linear(3 + 4, 4, rng=RNG))
        state = Tensor(np.zeros((1, 4)))
        a = cell(Tensor(np.ones((1, 3))), state)
        b = cell(Tensor(-np.ones((1, 3))), state)
        assert not np.allclose(a.data, b.data)

    def test_state_stays_bounded(self):
        cell = GRUCell(lambda: Linear(2 + 3, 3, rng=RNG))
        state = Tensor(np.zeros((1, 3)))
        for _step in range(50):
            state = cell(Tensor(RNG.normal(size=(1, 2))), state)
        # GRU state is a convex mix of tanh candidates: bounded by 1.
        assert np.all(np.abs(state.data) <= 1.0 + 1e-9)
