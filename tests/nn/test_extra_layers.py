"""Tests of Sequential, Dropout, and Embedding modules."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, Linear, Sequential, Tensor, ops


class TestSequential:
    def test_composes_modules_and_callables(self):
        net = Sequential(Linear(3, 5), ops.relu, Linear(5, 2))
        out = net(Tensor(np.random.default_rng(0).normal(size=(4, 3))))
        assert out.shape == (4, 2)

    def test_parameters_collected_from_all_stages(self):
        net = Sequential(Linear(3, 5), Linear(5, 2))
        assert len(net.parameters()) == 4

    def test_train_eval_reaches_nested_dropout(self):
        net = Sequential(Linear(3, 3), Dropout(0.5))
        net.eval()
        assert not net[1].training
        net.train()
        assert net[1].training

    def test_len_and_getitem(self):
        net = Sequential(Linear(2, 2), ops.relu)
        assert len(net) == 2
        assert isinstance(net[0], Linear)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Sequential()


class TestDropoutModule:
    def test_identity_in_eval(self):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((8, 8)))
        assert np.allclose(layer(x).data, 1.0)

    def test_zeros_fraction_in_train(self):
        layer = Dropout(0.5, seed=1)
        layer.train()
        out = layer(Tensor(np.ones((100, 100))))
        zero_fraction = float(np.mean(out.data == 0.0))
        assert 0.4 < zero_fraction < 0.6

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            Dropout(1.0)


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 4)
        out = table(np.asarray([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_gradients_only_touch_used_rows(self):
        table = Embedding(6, 3)
        out = table([0, 2, 2])
        (out**2).sum().backward()
        grad_norms = np.abs(table.weight.grad).sum(axis=1)
        assert grad_norms[0] > 0 and grad_norms[2] > 0
        assert np.all(grad_norms[[1, 3, 4, 5]] == 0.0)

    def test_repeated_index_accumulates(self):
        table = Embedding(4, 2)
        out = table([1, 1, 1])
        out.sum().backward()
        assert np.allclose(table.weight.grad[1], 3.0)

    def test_out_of_range_rejected(self):
        table = Embedding(3, 2)
        with pytest.raises(ValueError, match="range"):
            table([3])

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            Embedding(0, 4)
