"""Tests of optimizers, module mechanics, and initializers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    Module,
    Parameter,
    SGD,
    Tensor,
    clip_grad_norm,
    init,
    ops,
)


def _quadratic_problem():
    """Minimize ||x - target||^2 over a parameter vector."""
    target = np.asarray([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))

    def loss_fn():
        diff = param - Tensor(target)
        return (diff * diff).sum()

    return param, target, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        param, target, loss_fn = _quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            param, target, loss_fn = _quadratic_problem()
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                loss_fn().backward()
                opt.step()
            return float(np.sum((param.data - target) ** 2))

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.ones(3))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (param.sum() * 0.0).backward()
        opt.step()
        assert np.all(param.data < 1.0)

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError, match="no parameters"):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError, match="lr"):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param, target, loss_fn = _quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_fits_linear_regression(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4))
        W_true = rng.normal(size=(4, 2))
        Y = X @ W_true
        layer = Linear(4, 2, rng=rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            ops.mse_loss(layer(Tensor(X)), Y).backward()
            opt.step()
        assert np.allclose(layer.weight.data, W_true, atol=1e-2)

    def test_skips_parameters_without_grad(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.ones(2))
        opt = Adam([a, b], lr=0.1)
        (a.sum() ** 2).backward()
        opt.step()
        assert np.allclose(b.data, 1.0)


class TestClipGradNorm:
    def test_scales_down_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm > 1.0
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.01)
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.01)

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError, match="positive"):
            clip_grad_norm([Parameter(np.zeros(1))], 0.0)


class TestModule:
    def test_parameter_discovery_recursive(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(2))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.stack = [Linear(2, 2), Linear(2, 2)]
                self.table = {"a": Parameter(np.zeros(3))}

        outer = Outer()
        assert len(outer.parameters()) == 1 + 4 + 1
        assert outer.num_parameters() == 2 + 2 * (4 + 2) + 3

    def test_shared_parameter_counted_once(self):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = Parameter(np.zeros(2))
                self.b = self.a

        assert len(Shared().parameters()) == 1

    def test_train_eval_propagates(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(2, 2)

        net = Net()
        net.eval()
        assert not net.layer.training
        net.train()
        assert net.layer.training

    def test_state_dict_roundtrip(self):
        layer = Linear(3, 2, rng=np.random.default_rng(1))
        state = layer.state_dict()
        other = Linear(3, 2, rng=np.random.default_rng(99))
        other.load_state_dict(state)
        assert np.allclose(other.weight.data, layer.weight.data)

    def test_load_state_dict_validates_shapes(self):
        layer = Linear(3, 2)
        with pytest.raises(ValueError, match="entries"):
            layer.load_state_dict({})


class TestInit:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(3)
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_kaiming_scale(self):
        rng = np.random.default_rng(4)
        w = init.kaiming_uniform((1000, 100), rng)
        assert np.isclose(w.std(), np.sqrt(2.0 / 100), rtol=0.2)

    def test_zeros(self):
        assert np.all(init.zeros((3, 3)) == 0.0)
