"""Gradient checks for the free-function operators."""

import numpy as np
import pytest

from repro.nn import Tensor, ops

from .test_tensor import check_gradient

RNG = np.random.default_rng(1)


class TestActivations:
    def test_exp(self):
        check_gradient(lambda x: ops.exp(x).sum(), RNG.normal(size=(3, 2)))

    def test_log(self):
        check_gradient(lambda x: ops.log(x).sum(), RNG.uniform(0.5, 2.0, size=(4,)))

    def test_tanh(self):
        check_gradient(lambda x: (ops.tanh(x) ** 2).sum(), RNG.normal(size=(3,)))

    def test_sigmoid(self):
        check_gradient(lambda x: ops.sigmoid(x).sum(), RNG.normal(size=(5,)))

    def test_sigmoid_extreme_values_stable(self):
        out = ops.sigmoid(Tensor(np.asarray([-1000.0, 1000.0])))
        assert np.allclose(out.data, [0.0, 1.0])
        assert np.all(np.isfinite(out.data))

    def test_relu(self):
        x0 = RNG.normal(size=(6,))
        x0[np.abs(x0) < 0.1] = 0.5  # keep away from the kink
        check_gradient(lambda x: (ops.relu(x) * 2).sum(), x0)

    def test_leaky_relu_negative_slope(self):
        x = Tensor(np.asarray([-2.0, 3.0]), requires_grad=True)
        ops.leaky_relu(x, slope=0.1).sum().backward()
        assert np.allclose(x.grad, [0.1, 1.0])

    def test_softmax_rows_sum_to_one(self):
        out = ops.softmax(Tensor(RNG.normal(size=(4, 5))))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_gradient(self):
        x0 = RNG.normal(size=(2, 4))
        w = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda x: (ops.softmax(x, axis=-1) @ w).sum(), x0)


class TestStructural:
    def test_concat_gradient(self):
        x0 = RNG.normal(size=(4, 3))
        check_gradient(
            lambda x: (ops.concat([x[:2], x[2:]], axis=0) ** 2).sum(), x0
        )

    def test_stack_gradient(self):
        x0 = RNG.normal(size=(3, 2))
        check_gradient(
            lambda x: (ops.stack([x[0], x[1], x[2]], axis=0) ** 2).sum(), x0
        )

    def test_pad_time_shape_and_gradient(self):
        x0 = RNG.normal(size=(2, 3, 2))
        padded = ops.pad_time(Tensor(x0), 2, axis=1)
        assert padded.shape == (2, 5, 2)
        assert np.allclose(padded.data[:, :2], 0.0)
        check_gradient(lambda x: (ops.pad_time(x, 2, axis=1) ** 2).sum(), x0)

    def test_pad_time_zero_is_identity(self):
        x = Tensor(np.ones((1, 2, 1)))
        assert ops.pad_time(x, 0).data.shape == (1, 2, 1)

    def test_pad_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            ops.pad_time(Tensor(np.ones((1, 2))), -1)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = ops.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert np.allclose(out.data, 1.0)

    def test_training_mode_preserves_expectation(self):
        x = Tensor(np.ones((100, 100)))
        out = ops.dropout(x, 0.5, np.random.default_rng(1), training=True)
        assert np.isclose(out.data.mean(), 1.0, atol=0.05)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            ops.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0), True)


class TestLosses:
    def test_mse_known_value(self):
        loss = ops.mse_loss(Tensor(np.asarray([1.0, 2.0])), np.asarray([0.0, 0.0]))
        assert np.isclose(loss.item(), 2.5)

    def test_mse_gradient(self):
        x0 = RNG.normal(size=(5,))
        target = RNG.normal(size=(5,))
        check_gradient(lambda x: ops.mse_loss(x, target), x0)

    def test_mae_known_value(self):
        loss = ops.mae_loss(Tensor(np.asarray([1.0, -3.0])), np.zeros(2))
        assert np.isclose(loss.item(), 2.0)

    def test_mae_gradient_away_from_kink(self):
        x0 = RNG.normal(size=(5,)) + 3.0
        target = np.zeros(5)
        check_gradient(lambda x: ops.mae_loss(x, target), x0)
