"""Tests of dtype support: tensor dtype rules, the configurable default,
module-level casting, graph supports at float32, and the backward
allocation counters.

The dtype contract (see :mod:`repro.nn.tensor`):

* floating inputs keep their own dtype — ``set_default_dtype`` governs
  only integer/bool inputs;
* every op preserves its input's dtype (gradients included) — enforced
  op-by-op in tests/nn/test_gradcheck.py, spot-checked here at the
  composition level;
* python-scalar operands never promote float32 (NEP 50 weak scalars).
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import (
    AdjacencyCache,
    GraphSupport,
    Tensor,
    get_default_dtype,
    grad_write_stats,
    graph_propagate,
    ops,
    reset_grad_write_stats,
    set_default_dtype,
)


@pytest.fixture
def float32_default():
    set_default_dtype(np.float32)
    yield
    set_default_dtype(np.float64)


class TestDefaultDtype:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_set_default_governs_non_floating_inputs(self, float32_default):
        assert Tensor([1, 2]).data.dtype == np.float32
        assert Tensor(np.array([1, 2])).data.dtype == np.float32
        assert Tensor(np.array([True, False])).data.dtype == np.float32

    def test_floating_arrays_keep_their_dtype(self, float32_default):
        assert Tensor(np.zeros(3, dtype=np.float64)).data.dtype == np.float64
        set_default_dtype(np.float64)
        assert Tensor(np.zeros(3, dtype=np.float32)).data.dtype == np.float32

    def test_rejects_non_floating(self):
        with pytest.raises(ValueError, match="floating"):
            set_default_dtype(np.int64)


class TestDtypePreservation:
    def test_python_scalars_do_not_promote_float32(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = ((x * 2.0 + 1.0) / 3.0 - 0.5) ** 2
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32

    def test_composite_network_stays_float32(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(4, 3, rng=rng, activation="relu").astype(np.float32)
        x = Tensor(
            rng.normal(size=(5, 4)).astype(np.float32), requires_grad=True
        )
        loss = ops.mse_loss(layer(x), np.zeros((5, 3), dtype=np.float32))
        assert loss.data.dtype == np.float32
        loss.backward()
        assert x.grad.dtype == np.float32
        assert layer.weight.grad.dtype == np.float32

    def test_astype_is_differentiable_across_dtypes(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = x.astype(np.float32).sum()
        assert out.data.dtype == np.float32
        out.backward()
        assert x.grad.dtype == np.float64  # cast back in backward


class TestModuleAstype:
    def test_casts_all_parameters_and_clears_grads(self):
        rng = np.random.default_rng(1)
        layer = nn.Linear(3, 2, rng=rng)
        layer(Tensor(np.ones((1, 3)), requires_grad=True)).sum().backward()
        assert layer.weight.grad is not None
        layer.astype(np.float32)
        assert all(p.data.dtype == np.float32 for p in layer.parameters())
        assert all(p.grad is None for p in layer.parameters())

    def test_matching_dtype_is_zero_copy(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(1))
        before = layer.weight.data
        layer.astype(np.float64)
        assert layer.weight.data is before

    def test_rejects_non_floating(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(1))
        with pytest.raises(TypeError, match="floating"):
            layer.astype(np.int32)

    def test_load_state_dict_preserves_model_dtype(self):
        rng = np.random.default_rng(2)
        layer = nn.Linear(3, 2, rng=rng)
        state = layer.state_dict()  # float64 snapshot
        layer.astype(np.float32)
        layer.load_state_dict(state)
        assert all(p.data.dtype == np.float32 for p in layer.parameters())


class TestGraphSupportDtype:
    def _adjacency(self, n=8):
        rng = np.random.default_rng(3)
        A = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
        np.fill_diagonal(A, 1.0)
        return A / A.sum(axis=1, keepdims=True)

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_propagation_at_float32(self, backend):
        A = self._adjacency()
        support = GraphSupport(A.astype(np.float32), backend=backend)
        assert support.dtype == np.float32
        x = Tensor(
            np.random.default_rng(4)
            .normal(size=(2, 8, 3))
            .astype(np.float32),
            requires_grad=True,
        )
        out = graph_propagate(x, support)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        np.testing.assert_allclose(
            out.numpy(),
            A.astype(np.float32) @ x.numpy(),
            rtol=1e-5,
        )

    def test_cache_is_content_keyed_per_dtype(self):
        A = self._adjacency()
        cache = AdjacencyCache()
        s64 = cache.support(A, backend="dense")
        assert cache.support(A, backend="dense") is s64
        s32 = cache.support(A, backend="dense", dtype=np.float32)
        assert s32 is not s64
        assert s32.dtype == np.float32
        # A copy with equal content hits (content keying); a mutated
        # array misses and rebuilds.
        assert cache.support(A.copy(), backend="dense") is s64
        B = A.copy()
        B[0, 1] += 0.25
        B[1, 0] += 0.25
        assert cache.support(B, backend="dense") is not s64

    def test_tensor_wrap_is_zero_copy_and_cached(self):
        A = self._adjacency()
        cache = AdjacencyCache()
        wrapped = cache.tensor(A, A.dtype)
        assert np.shares_memory(wrapped.data, A)
        assert cache.tensor(A, A.dtype) is wrapped
        cache.clear()
        assert cache.tensor(A, A.dtype) is not wrapped


class TestGradWriteStats:
    def test_counters_track_writes_and_copies(self):
        reset_grad_write_stats()
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        w = Tensor(np.ones((3, 2)), requires_grad=True)
        ops.mse_loss(
            ops.linear_act(x, w, activation="relu"), np.zeros((4, 2))
        ).backward()
        writes, copies = grad_write_stats()
        assert writes > 0
        # The allocation-lean contract: most first writes take ownership
        # of temporaries instead of allocating defensive copies.
        assert copies < writes
        reset_grad_write_stats()
        assert grad_write_stats() == (0, 0)
