"""Gradient-correctness tests of the autograd tensor.

Every operator is validated against central finite differences on random
inputs — the gold standard for an autodiff engine.
"""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, ops


def numeric_gradient(f, x0, eps=1e-6):
    """Central-difference gradient of scalar-valued f at x0."""
    grad = np.zeros_like(x0)
    flat = grad.reshape(-1)
    for i in range(x0.size):
        up = x0.copy().reshape(-1)
        up[i] += eps
        down = x0.copy().reshape(-1)
        down[i] -= eps
        flat[i] = (
            f(Tensor(up.reshape(x0.shape))).data
            - f(Tensor(down.reshape(x0.shape))).data
        ) / (2 * eps)
    return grad


def check_gradient(f, x0, atol=1e-6):
    x = Tensor(x0.copy(), requires_grad=True)
    y = f(x)
    y.backward()
    numeric = numeric_gradient(f, x0)
    scale = max(float(np.max(np.abs(numeric))), 1.0)
    assert np.allclose(x.grad, numeric, atol=atol * scale), (
        f"analytic {x.grad} vs numeric {numeric}"
    )


RNG = np.random.default_rng(0)


class TestArithmeticGradients:
    def test_add_with_broadcast(self):
        x0 = RNG.normal(size=(3, 4))
        bias = Tensor(RNG.normal(size=4))
        check_gradient(lambda x: ((x + bias) ** 2).sum(), x0)

    def test_mul_with_broadcast(self):
        x0 = RNG.normal(size=(2, 3))
        w = Tensor(RNG.normal(size=(1, 3)))
        check_gradient(lambda x: (x * w).sum(), x0)

    def test_sub_and_neg(self):
        x0 = RNG.normal(size=(4,))
        check_gradient(lambda x: ((1.0 - x) * (-x)).sum(), x0)

    def test_div(self):
        x0 = RNG.uniform(1.0, 2.0, size=(3,))
        check_gradient(lambda x: (1.0 / x + x / 2.0).sum(), x0)

    def test_pow(self):
        x0 = RNG.uniform(0.5, 1.5, size=(4,))
        check_gradient(lambda x: (x**3).sum(), x0)

    def test_matmul_2d(self):
        x0 = RNG.normal(size=(3, 4))
        w = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda x: ((x @ w) ** 2).sum(), x0)

    def test_matmul_batched(self):
        x0 = RNG.normal(size=(2, 3, 4))
        w = Tensor(RNG.normal(size=(4, 4)))
        check_gradient(lambda x: ((x @ w) ** 2).mean(), x0)

    def test_matmul_broadcast_left(self):
        A = RNG.normal(size=(5, 5))
        x0 = RNG.normal(size=(2, 5, 3))
        check_gradient(lambda x: ((Tensor(A) @ x) ** 2).mean(), x0)

    def test_matmul_gradient_flows_to_left_operand(self):
        x0 = RNG.normal(size=(5, 5))
        v = Tensor(RNG.normal(size=(2, 5, 3)))
        check_gradient(lambda x: ((x @ v) ** 2).mean(), x0)

    def test_matmul_batched_times_vector(self):
        """(B, T, N, C) @ (C,) — the graph-attention projection shape."""
        A = Tensor(RNG.normal(size=(2, 3, 4, 5)))
        v0 = RNG.normal(size=5)
        check_gradient(lambda x: ((A @ x) ** 2).sum(), v0)
        A0 = RNG.normal(size=(2, 3, 4, 5))
        v = Tensor(RNG.normal(size=5))
        check_gradient(lambda x: ((x @ v) ** 2).sum(), A0)

    def test_matmul_vector_times_batched(self):
        u0 = RNG.normal(size=4)
        B = Tensor(RNG.normal(size=(2, 3, 4, 5)))
        check_gradient(lambda x: ((x @ B) ** 2).sum(), u0)
        u = Tensor(RNG.normal(size=4))
        B0 = RNG.normal(size=(2, 3, 4, 5))
        check_gradient(lambda x: ((u @ x) ** 2).sum(), B0)

    def test_matmul_vector_vector(self):
        u0 = RNG.normal(size=4)
        w = Tensor(RNG.normal(size=4))
        check_gradient(lambda x: x @ w, u0)
        check_gradient(lambda x: w @ x, u0)


class TestShapeGradients:
    def test_reshape(self):
        x0 = RNG.normal(size=(2, 6))
        check_gradient(lambda x: (x.reshape(3, 4) ** 2).sum(), x0)

    def test_transpose(self):
        x0 = RNG.normal(size=(2, 3, 4))
        check_gradient(lambda x: (x.transpose(2, 0, 1) ** 2).sum(), x0)

    def test_getitem_slice(self):
        x0 = RNG.normal(size=(5, 3))
        check_gradient(lambda x: (x[1:4] ** 2).sum(), x0)

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.asarray([1.0, 2.0]), requires_grad=True)
        y = (x[np.asarray([0, 0, 1])]).sum()
        y.backward()
        assert np.allclose(x.grad, [2.0, 1.0])


class TestReductionGradients:
    def test_sum_axis_keepdims(self):
        x0 = RNG.normal(size=(3, 4))
        check_gradient(lambda x: (x.sum(axis=0, keepdims=True) ** 2).sum(), x0)

    def test_mean_axis(self):
        x0 = RNG.normal(size=(2, 5))
        check_gradient(lambda x: (x.mean(axis=1) ** 2).sum(), x0)

    def test_max_gradient_routes_to_argmax(self):
        x = Tensor(np.asarray([[1.0, 3.0], [2.0, 0.5]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.asarray([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2).backward()

    def test_backward_rejects_constant(self):
        x = Tensor(np.ones(1))
        with pytest.raises(RuntimeError, match="without grad"):
            x.backward()

    def test_no_grad_disables_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x.detach() * 2).sum()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * x).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_gradient(self):
        x0 = RNG.normal(size=(3,))

        def f(x):
            a = x * 2.0
            b = x + 1.0
            return (a * b).sum()

        check_gradient(f, x0)
