"""End-to-end integration: the full DS-GL pipeline on a fresh dataset.

One test class walks the complete production path — dataset → windowing →
ridge-selected training → persistence round-trip → decomposition →
hardware mapping → co-annealed inference — asserting cross-module
consistency at every hand-off.
"""

import numpy as np
import pytest

from repro.core import (
    DSGLModel,
    NaturalAnnealingEngine,
    TemporalWindowing,
    rmse,
    select_ridge,
    spectrum_report,
)
from repro.datasets import load_dataset
from repro.decompose import DecompositionConfig, analyze, decompose
from repro.hardware import (
    HardwareConfig,
    ProgrammingModel,
    ScalableDSPU,
    build_schedule,
)


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    dataset = load_dataset("o3", size="small")
    train, _val, test = dataset.split()
    windowing = TemporalWindowing(dataset.num_nodes, 3)
    samples = windowing.windows(train.series)
    ridge, model = select_ridge(samples)
    # Persistence round-trip in the middle of the pipeline.
    path = tmp_path_factory.mktemp("models") / "o3.npz"
    model.save(path)
    model = DSGLModel.load(path)
    system = decompose(
        model,
        samples,
        DecompositionConfig(
            density=0.12,
            pattern="dmesh",
            grid_shape=(3, 3),
            anchor_index=tuple(windowing.target_index.tolist()),
        ),
    )
    config = HardwareConfig(
        grid_shape=(3, 3), pe_capacity=system.placement.capacity, lanes=8
    )
    dspu = ScalableDSPU(system, config, node_time_constant_ns=500.0)
    return {
        "dataset": dataset,
        "test": test,
        "windowing": windowing,
        "ridge": ridge,
        "model": model,
        "system": system,
        "config": config,
        "dspu": dspu,
    }


class TestFullPipeline:
    def test_training_survives_persistence(self, pipeline):
        model = pipeline["model"]
        assert model.convexity_margin() > 0
        assert model.metadata["fitter"] == "precision"

    def test_decomposition_is_consistent(self, pipeline):
        system = pipeline["system"]
        report = analyze(system)
        assert report.density <= 0.12 + 1e-9
        assert report.max_boundary_demand == int(system.boundary_demand().max())
        placed = np.sort(np.concatenate([g for g in system.placement.groups if g.size]))
        assert np.array_equal(placed, np.arange(pipeline["model"].n))

    def test_schedule_covers_every_inter_pe_coupling(self, pipeline):
        system = pipeline["system"]
        schedule = build_schedule(
            system.model.J, system.placement, pipeline["config"]
        )
        pe = system.placement.pe_of_node
        rows, cols = np.nonzero(np.triu(system.model.J, 1))
        expected = {
            (int(a), int(b)) for a, b in zip(rows, cols) if pe[a] != pe[b]
        }
        scheduled = {(a.node_a, a.node_b) for a in schedule.assignments}
        assert scheduled == expected

    def test_hardware_beats_marginal_predictor(self, pipeline):
        dspu = pipeline["dspu"]
        tw = pipeline["windowing"]
        series = pipeline["test"].series
        predictions, targets = [], []
        for t in tw.prediction_frames(series)[:10]:
            history = tw.history_of(series, t)
            outcome = dspu.anneal(tw.observed_index, history, duration_ns=30000.0)
            predictions.append(outcome.prediction)
            targets.append(series[t])
        hardware_rmse = rmse(np.asarray(predictions), np.asarray(targets))
        marginal_rmse = float(np.std(np.asarray(targets)))
        assert hardware_rmse < marginal_rmse

    def test_hardware_tracks_equilibrium(self, pipeline):
        dspu = pipeline["dspu"]
        tw = pipeline["windowing"]
        series = pipeline["test"].series
        engine = NaturalAnnealingEngine(pipeline["system"].model)
        history = tw.history_of(series, 4)
        outcome = dspu.anneal(tw.observed_index, history, duration_ns=80000.0)
        equilibrium = engine.infer_equilibrium(tw.observed_index, history)
        gap = rmse(outcome.prediction, equilibrium.prediction)
        assert gap < 0.05

    def test_configuration_time_fits_annealing_budget(self, pipeline):
        cost = ProgrammingModel().scalable(
            pipeline["config"], pipeline["dspu"].schedule
        )
        # Setup is a small fraction of a 30 us inference.
        assert cost.full_program_ns < 0.2 * 30000.0
        assert cost.slice_switch_ns < pipeline["config"].switch_interval_ns

    def test_spectrum_is_hardware_friendly(self, pipeline):
        report = spectrum_report(pipeline["system"].model)
        assert report.condition_number < 1e4
        assert report.slowest_rate > 0
