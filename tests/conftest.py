"""Shared fixtures: small trained systems reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TemporalWindowing, TrainingConfig, fit_precision
from repro.datasets import load_dataset
from repro.decompose import DecompositionConfig, decompose


@pytest.fixture(scope="session")
def gaussian_samples():
    """Correlated Gaussian samples with a known covariance (n=10)."""
    rng = np.random.default_rng(7)
    n = 10
    A = rng.normal(size=(n, n)) * 0.4
    cov = A @ A.T + np.eye(n)
    samples = rng.multivariate_normal(np.zeros(n), cov, size=1200)
    return samples, cov


@pytest.fixture(scope="session")
def trained_model(gaussian_samples):
    """A dense DS-GL model fitted on the Gaussian samples."""
    samples, _cov = gaussian_samples
    return fit_precision(samples, TrainingConfig(ridge=1e-2))


@pytest.fixture(scope="session")
def traffic_setup():
    """Small traffic dataset, its windowing, samples, and dense model."""
    ds = load_dataset("traffic", size="small")
    train, val, test = ds.split()
    windowing = TemporalWindowing(ds.num_nodes, 3)
    samples = windowing.windows(train.series)
    model = fit_precision(samples, TrainingConfig(ridge=5e-2))
    return {
        "dataset": ds,
        "train": train,
        "val": val,
        "test": test,
        "windowing": windowing,
        "samples": samples,
        "model": model,
    }


@pytest.fixture(scope="session")
def decomposed_traffic(traffic_setup):
    """A DMesh decomposition of the traffic model on a 3x3 grid."""
    return decompose(
        traffic_setup["model"],
        traffic_setup["samples"],
        DecompositionConfig(density=0.15, pattern="dmesh", grid_shape=(3, 3)),
    )


@pytest.fixture
def rng():
    """Canonical seeded generator for per-test randomness.

    Flakiness audit (kept current by review): no test in this suite may
    draw from the unseeded global ``np.random.*`` API or an argless
    ``default_rng()`` — randomness flows through this fixture or an
    explicitly seeded local generator, so every failure reproduces.
    Function-scoped: each test sees the same fresh stream regardless of
    execution order or selection.
    """
    return np.random.default_rng(20240806)
