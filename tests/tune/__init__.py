"""Tests of the annealing-path autotuner."""
