"""Tests of the ``repro tune`` CLI (search and replay modes)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.problem == "circuit"
        assert args.target_error == 1e-4
        assert args.config is None
        assert args.out == "TUNE_pareto.json"

    def test_dspu_problem_selectable(self):
        args = build_parser().parse_args(["tune", "--problem", "dspu"])
        assert args.problem == "dspu"

    def test_grid_flags_parse(self):
        args = build_parser().parse_args(
            ["tune", "--durations", "10", "20", "--dts", "0.1", "0.05",
             "--rtols", "1e-3", "--schedules", "cosine", "linear",
             "--smoke"]
        )
        assert args.durations == [10.0, 20.0]
        assert args.dts == [0.1, 0.05]
        assert args.schedules == ["cosine", "linear"]
        assert args.smoke


class TestSearchMode:
    def _search(self, tmp_path, *extra):
        out = tmp_path / "pareto.json"
        argv = [
            "tune", "--smoke", "--n", "32", "--density", "0.2",
            "--batch", "2", "--durations", "10", "20",
            "--target-error", "1e-3", "--repeats", "1",
            "--out", str(out), *extra,
        ]
        assert main(argv) == 0
        return json.loads(out.read_text())

    def test_smoke_search_writes_artifact(self, tmp_path, capsys):
        artifact = self._search(tmp_path)
        assert artifact["version"] == 1
        assert artifact["problem"]["kind"] == "circuit"
        assert artifact["front"]
        assert artifact["met_target"]
        output = capsys.readouterr().out
        assert "Pareto front" in output
        assert "<- best" in output

    def test_search_includes_requested_dimensions(self, tmp_path):
        artifact = self._search(
            tmp_path, "--schedules", "cosine", "--sync-intervals", "5",
        )
        labels = [row["label"] for row in artifact["rows"]]
        assert any("cosine" in label for label in labels)
        assert any("settle" in label for label in labels)
        assert any("rtol" in label for label in labels)

    def test_dspu_smoke_search(self, tmp_path, capsys):
        out = tmp_path / "dspu.json"
        argv = [
            "tune", "--problem", "dspu", "--smoke", "--n", "16",
            "--density", "0.3", "--durations", "2000", "5000",
            "--sync-intervals", "200", "--target-error", "0.5",
            "--repeats", "1", "--out", str(out),
        ]
        assert main(argv) == 0
        artifact = json.loads(out.read_text())
        assert artifact["problem"]["kind"] == "dspu"
        # The grid crosses durations x intervals x {fixed, early-exit}.
        assert len(artifact["rows"]) == 4


class TestReplayMode:
    def test_replay_met_target_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "pareto.json"
        assert main([
            "tune", "--smoke", "--n", "32", "--density", "0.2",
            "--batch", "2", "--durations", "20",
            "--target-error", "1e-3", "--repeats", "1", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main(["tune", "--config", str(out), "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "MET" in output

    def test_replay_missed_target_exits_one(self, tmp_path, capsys):
        out = tmp_path / "pareto.json"
        assert main([
            "tune", "--smoke", "--n", "32", "--density", "0.2",
            "--batch", "2", "--durations", "2",
            "--target-error", "1e9", "--repeats", "1", "--out", str(out),
        ]) == 0
        # Tighten the recorded target below what the config achieves:
        # the replay must notice and fail.
        artifact = json.loads(out.read_text())
        artifact["target_error"] = 1e-15
        out.write_text(json.dumps(artifact))
        capsys.readouterr()
        assert main(["tune", "--config", str(out), "--repeats", "1"]) == 1
        assert "MISSED" in capsys.readouterr().out
