"""Tests of the Pareto search machinery (:mod:`repro.tune.search`)."""

import numpy as np
import pytest

from repro.tune import (
    CircuitProblem,
    DspuProblem,
    TuneCandidate,
    build_grid,
    build_problem,
    evaluate_candidate,
    load_artifact,
    pareto_front,
    replay,
    save_artifact,
    search,
)


@pytest.fixture(scope="module")
def problem():
    """A tiny circuit problem: exact reference, fast evaluations."""
    return CircuitProblem(n=32, density=0.2, batch=3, seed=0)


class TestTuneCandidate:
    def test_roundtrips_through_dict(self):
        candidate = TuneCandidate(
            dt=0.05, adaptive=True, rtol=1e-5, early_exit=True,
            settle_tolerance=1e-8, duration=25.0, schedule="cosine",
            sync_interval=5.0, restarts=3, shards=2, workers=2,
        )
        assert TuneCandidate.from_dict(candidate.to_dict()) == candidate

    def test_integration_config_mirrors_fields(self):
        candidate = TuneCandidate(dt=0.02, adaptive=True, rtol=1e-5)
        config = candidate.integration_config()
        assert config.dt == 0.02
        assert config.adaptive
        assert config.rtol == 1e-5
        # Tuned runs record nothing but endpoints and carry no noise.
        assert config.record_every == 1_000_000
        assert config.node_noise_std == 0.0

    def test_label_mentions_armed_dimensions(self):
        label = TuneCandidate(
            adaptive=True, early_exit=True, schedule="cosine", restarts=4
        ).label()
        for token in ("rtol", "settle", "cosine", "restarts=4"):
            assert token in label


class TestBuildGrid:
    def test_contains_fixed_baselines(self):
        grid = build_grid(durations=[10.0, 20.0], dts=[0.1, 0.05])
        baselines = [c for c in grid if not c.adaptive and not c.early_exit]
        assert len(baselines) == 4
        assert len(grid) == 4

    def test_layers_dimensions_linearly(self):
        grid = build_grid(
            durations=[10.0],
            dts=[0.1],
            rtols=[1e-3, 1e-5],
            settle_tolerances=[1e-6],
            schedules=["cosine"],
            sync_intervals=[5.0],
            restarts=[1, 3],
            shards=[2],
            workers=2,
        )
        # 1 baseline + 2 adaptive + 1 early-exit + 2 adaptive×early-exit
        # + 1 schedule + 1 restart (count 1 is skipped) + 1 sharded.
        assert len(grid) == 9
        assert len(set(grid)) == len(grid)

    def test_deduplicates_overlapping_dimensions(self):
        grid = build_grid(durations=[10.0, 10.0], dts=[0.1, 0.1])
        assert len(grid) == 1


class TestParetoFront:
    def test_front_is_nondominated_and_sorted(self):
        rows = [
            {"latency_ms": 10.0, "error": 1e-3},
            {"latency_ms": 5.0, "error": 1e-2},
            {"latency_ms": 7.0, "error": 5e-2},  # dominated by the first two
            {"latency_ms": 20.0, "error": 1e-5},
        ]
        front = pareto_front(rows)
        assert [r["latency_ms"] for r in front] == [5.0, 10.0, 20.0]
        errors = [r["error"] for r in front]
        assert errors == sorted(errors, reverse=True)

    def test_single_row_is_its_own_front(self):
        rows = [{"latency_ms": 1.0, "error": 0.5}]
        assert pareto_front(rows) == rows


class TestEvaluateAndSearch:
    def test_evaluate_row_shape(self, problem):
        row = evaluate_candidate(
            problem, TuneCandidate(dt=0.1, duration=20.0), repeats=2
        )
        assert row["error"] >= 0.0
        assert row["latency_ms"] > 0.0
        assert len(row["samples_ms"]) == 2
        assert row["latency_ms"] == min(row["samples_ms"])

    def test_longer_budget_is_more_accurate(self, problem):
        short = evaluate_candidate(
            problem, TuneCandidate(dt=0.1, duration=2.0), repeats=1
        )
        long = evaluate_candidate(
            problem, TuneCandidate(dt=0.1, duration=50.0), repeats=1
        )
        assert long["error"] < short["error"]

    def test_search_artifact_structure(self, problem):
        grid = build_grid(
            durations=[20.0, 50.0], dts=[0.1], settle_tolerances=[1e-8]
        )
        artifact = search(problem, grid, target_error=1e-3, repeats=1)
        assert artifact["version"] == 1
        assert artifact["problem"]["kind"] == "circuit"
        assert len(artifact["rows"]) == len(grid)
        assert artifact["front"]
        assert artifact["met_target"]
        # Best is the fastest row meeting the target.
        meeting = [r for r in artifact["rows"] if r["error"] <= 1e-3]
        assert artifact["best"] == min(meeting, key=lambda r: r["latency_ms"])

    def test_unreachable_target_flags_miss(self, problem):
        artifact = search(
            problem,
            [TuneCandidate(dt=0.1, duration=1.0)],
            target_error=1e-15,
            repeats=1,
        )
        assert not artifact["met_target"]
        assert artifact["best"] == artifact["rows"][0]

    def test_rejects_empty_grid_and_bad_target(self, problem):
        with pytest.raises(ValueError, match="empty"):
            search(problem, [], target_error=1e-3)
        with pytest.raises(ValueError, match="target_error"):
            search(problem, [TuneCandidate()], target_error=0.0)


class TestArtifactRoundtrip:
    def test_save_load_replay(self, problem, tmp_path):
        grid = build_grid(durations=[20.0], dts=[0.1],
                          settle_tolerances=[1e-8])
        artifact = search(problem, grid, target_error=1e-3, repeats=1)
        path = tmp_path / "pareto.json"
        save_artifact(str(path), artifact)
        loaded = load_artifact(str(path))
        assert loaded["best"] == artifact["best"]
        row = replay(loaded, repeats=1)
        assert row["met_target"]
        assert row["target_error"] == 1e-3

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        save_artifact(str(path), {"version": 99})
        with pytest.raises(ValueError, match="version"):
            load_artifact(str(path))

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "partial.json"
        save_artifact(str(path), {"version": 1, "problem": {}})
        with pytest.raises(ValueError, match="target_error"):
            load_artifact(str(path))


class TestBuildProblem:
    def test_rebuilds_circuit_from_describe(self, problem):
        rebuilt = build_problem(problem.describe())
        assert isinstance(rebuilt, CircuitProblem)
        # Same seed → identical reference, the replay contract.
        assert np.array_equal(rebuilt.reference, problem.reference)

    def test_rebuilds_dspu_from_describe(self):
        original = DspuProblem(n=16, density=0.3, seed=1)
        rebuilt = build_problem(original.describe())
        assert isinstance(rebuilt, DspuProblem)
        assert np.array_equal(rebuilt.reference, original.reference)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            build_problem({"kind": "quantum"})


class TestProblemEvaluations:
    def test_scheduled_candidate_runs(self, problem):
        row = evaluate_candidate(
            problem,
            TuneCandidate(dt=0.1, duration=20.0, schedule="cosine",
                          sync_interval=5.0, kick=0.02),
            repeats=1,
        )
        assert np.isfinite(row["error"])

    def test_restart_candidate_runs(self, problem):
        row = evaluate_candidate(
            problem,
            TuneCandidate(dt=0.1, duration=20.0, restarts=2),
            repeats=1,
        )
        assert np.isfinite(row["error"])

    def test_sharded_candidate_runs(self, problem):
        row = evaluate_candidate(
            problem,
            TuneCandidate(dt=0.1, duration=20.0, shards=2, workers=1),
            repeats=1,
        )
        assert np.isfinite(row["error"])

    def test_dspu_early_exit_candidate_runs(self):
        dspu_problem = DspuProblem(n=16, density=0.3, seed=1,
                                   reference_duration_ns=20000.0)
        row = evaluate_candidate(
            dspu_problem,
            TuneCandidate(duration=10000.0, sync_interval=200.0,
                          early_exit=True, settle_tolerance=1e-3),
            repeats=1,
        )
        assert np.isfinite(row["error"])
