"""Tests of the full Fig. 5 decomposition pipeline."""

import numpy as np
import pytest

from repro.core import NaturalAnnealingEngine, TrainingConfig, rmse
from repro.decompose import DecompositionConfig, coupling_density, decompose


class TestConfig:
    def test_rejects_bad_density(self):
        with pytest.raises(ValueError, match="density"):
            DecompositionConfig(density=0.0)

    def test_rejects_bad_method(self):
        with pytest.raises(ValueError, match="finetune_method"):
            DecompositionConfig(finetune_method="magic")

    def test_rejects_negative_wormholes(self):
        with pytest.raises(ValueError, match="wormhole"):
            DecompositionConfig(wormhole_budget=-1)


class TestDecompose:
    def test_density_budget_met(self, traffic_setup, decomposed_traffic):
        assert decomposed_traffic.density <= 0.15 + 1e-9

    def test_model_is_convex(self, decomposed_traffic):
        assert decomposed_traffic.model.convexity_margin() > 0

    def test_mask_respected(self, decomposed_traffic):
        J = decomposed_traffic.model.J
        assert np.all(J[~decomposed_traffic.mask] == 0.0)

    def test_placement_covers_all_nodes(self, traffic_setup, decomposed_traffic):
        n = traffic_setup["model"].n
        placed = np.sort(
            np.concatenate([g for g in decomposed_traffic.placement.groups if g.size])
        )
        assert np.array_equal(placed, np.arange(n))

    def test_inter_pe_couplings_are_pattern_feasible(self, decomposed_traffic):
        from repro.decompose import pe_pairs_allowed, wormhole_pairs

        placement = decomposed_traffic.placement
        allowed = pe_pairs_allowed("dmesh", placement.grid_shape)
        wormholes = set()
        J = decomposed_traffic.model.J
        rows, cols = np.nonzero(np.triu(J, 1))
        pe = placement.pe_of_node
        for a, b in zip(rows, cols):
            pa, pb = pe[a], pe[b]
            if pa != pb and not allowed[pa, pb]:
                wormholes.add((min(pa, pb), max(pa, pb)))
        assert len(wormholes) <= decomposed_traffic.config.wormhole_budget

    def test_accuracy_loss_bounded(self, traffic_setup, decomposed_traffic):
        """Decomposition at D=0.15 must stay within ~2.5x of dense RMSE —
        the paper's claim that sparse systems preserve accuracy."""
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series

        def score(model):
            engine = NaturalAnnealingEngine(model)
            predictions, targets = [], []
            for t in tw.prediction_frames(test)[:25]:
                history = tw.history_of(test, t)
                predictions.append(
                    engine.infer_equilibrium(tw.observed_index, history).prediction
                )
                targets.append(test[t])
            return rmse(np.asarray(predictions), np.asarray(targets))

        dense_rmse = score(traffic_setup["model"])
        sparse_rmse = score(decomposed_traffic.model)
        assert sparse_rmse < 2.5 * dense_rmse

    def test_density_monotonicity(self, traffic_setup):
        """Higher density => better (or equal) accuracy: the Fig. 10 trend."""
        tw = traffic_setup["windowing"]
        test = traffic_setup["test"].series

        def score(density):
            system = decompose(
                traffic_setup["model"],
                traffic_setup["samples"],
                DecompositionConfig(
                    density=density, pattern="dmesh", grid_shape=(3, 3)
                ),
            )
            engine = NaturalAnnealingEngine(system.model)
            predictions, targets = [], []
            for t in tw.prediction_frames(test)[:20]:
                history = tw.history_of(test, t)
                predictions.append(
                    engine.infer_equilibrium(tw.observed_index, history).prediction
                )
                targets.append(test[t])
            return rmse(np.asarray(predictions), np.asarray(targets))

        sparse = score(0.05)
        dense = score(0.2)
        assert dense <= sparse * 1.1

    def test_none_method_prunes_without_refit(self, traffic_setup):
        system = decompose(
            traffic_setup["model"],
            traffic_setup["samples"],
            DecompositionConfig(
                density=0.1,
                grid_shape=(3, 3),
                finetune_method="none",
            ),
        )
        # Surviving couplings keep their dense values under "none".
        J_dense = traffic_setup["model"].J
        J_sparse = system.model.J
        nz = J_sparse != 0
        assert np.allclose(J_sparse[nz], J_dense[nz])

    def test_sgd_method_runs(self, traffic_setup):
        system = decompose(
            traffic_setup["model"],
            traffic_setup["samples"][:60],
            DecompositionConfig(
                density=0.1,
                grid_shape=(3, 3),
                finetune_method="sgd",
                finetune=TrainingConfig(epochs=2, lr=0.02),
            ),
        )
        assert system.model.convexity_margin() > 0

    def test_stats_helpers(self, decomposed_traffic):
        assert 0.0 <= decomposed_traffic.inter_pe_fraction() <= 1.0
        demand = decomposed_traffic.boundary_demand()
        assert demand.shape == (9,)
        assert np.all(demand >= 0)
