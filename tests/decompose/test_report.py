"""Tests of the decomposition quality report."""

import numpy as np

from repro.decompose import analyze


class TestAnalyze:
    def test_metrics_in_valid_ranges(self, decomposed_traffic):
        report = analyze(decomposed_traffic)
        assert 0.0 < report.density <= 0.15 + 1e-9
        assert 0.0 < report.weight_retained <= 1.0
        assert 0.0 <= report.inter_pe_fraction <= 1.0
        assert 0.0 <= report.inter_pe_weight_fraction <= 1.0
        assert -0.5 <= report.placement_modularity <= 1.0
        assert 0.0 < report.load_balance <= 1.0
        assert report.max_boundary_demand >= 0
        assert 0.0 < report.utilization <= 1.0

    def test_density_matches_system(self, decomposed_traffic):
        report = analyze(decomposed_traffic)
        assert np.isclose(report.density, decomposed_traffic.density)

    def test_boundary_demand_matches_system(self, decomposed_traffic):
        report = analyze(decomposed_traffic)
        assert report.max_boundary_demand == int(
            decomposed_traffic.boundary_demand().max()
        )

    def test_summary_is_readable(self, decomposed_traffic):
        text = analyze(decomposed_traffic).summary()
        assert "density" in text
        assert "modularity" in text
        assert "%" in text

    def test_placement_modularity_is_meaningful(self, decomposed_traffic):
        """The pipeline's placement should beat a random assignment on
        modularity of the sparse coupling graph."""
        from repro.decompose import modularity

        report = analyze(decomposed_traffic)
        J = np.abs(decomposed_traffic.model.J)
        rng = np.random.default_rng(0)
        random_scores = [
            modularity(J, rng.permutation(decomposed_traffic.placement.pe_of_node))
            for _ in range(5)
        ]
        assert report.placement_modularity > np.mean(random_scores)
