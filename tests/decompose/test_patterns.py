"""Tests of the Chain/Mesh/DMesh/Wormhole pattern masks."""

import numpy as np
import pytest

from repro.core import symmetrize_coupling
from repro.decompose import (
    PlacementResult,
    pattern_mask,
    pe_pairs_allowed,
    wormhole_pairs,
)


def _placement(n=24, grid=(2, 3)):
    num_pes = grid[0] * grid[1]
    per = n // num_pes
    groups = [np.arange(p * per, (p + 1) * per) for p in range(num_pes)]
    pe_of_node = np.repeat(np.arange(num_pes), per)
    return PlacementResult(
        pe_of_node=pe_of_node, grid_shape=grid, capacity=per, groups=groups
    )


class TestPePairsAllowed:
    def test_chain_connects_consecutive(self):
        allowed = pe_pairs_allowed("chain", (2, 3))
        assert allowed[0, 1] and allowed[1, 2] and allowed[2, 3]
        assert not allowed[0, 3]
        assert not allowed[0, 2]

    def test_mesh_connects_grid_neighbors(self):
        allowed = pe_pairs_allowed("mesh", (2, 3))
        assert allowed[0, 1]  # horizontal
        assert allowed[0, 3]  # vertical
        assert not allowed[0, 4]  # diagonal
        assert not allowed[0, 5]  # remote

    def test_dmesh_adds_diagonals(self):
        allowed = pe_pairs_allowed("dmesh", (2, 3))
        assert allowed[0, 4]  # diagonal
        assert not allowed[0, 5]  # remote stays out

    def test_inclusion_hierarchy(self):
        """Chain subset of Mesh subset of DMesh (paper's Fig. 6 hierarchy),
        modulo the chain's row-wrap links."""
        mesh = pe_pairs_allowed("mesh", (3, 3))
        dmesh = pe_pairs_allowed("dmesh", (3, 3))
        assert np.all(dmesh[mesh])

    def test_diagonal_always_allowed(self):
        for pattern in ("chain", "mesh", "dmesh"):
            allowed = pe_pairs_allowed(pattern, (2, 2))
            assert np.all(np.diag(allowed))

    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            pe_pairs_allowed("torus", (2, 2))


class TestWormholePairs:
    def test_budget_zero_returns_nothing(self):
        placement = _placement()
        J = symmetrize_coupling(np.random.default_rng(0).normal(size=(24, 24)))
        allowed = pe_pairs_allowed("mesh", (2, 3))
        assert wormhole_pairs(J, placement, allowed, 0) == []

    def test_returns_strongest_remote_pairs_first(self):
        placement = _placement()
        J = np.zeros((24, 24))
        # Strong remote coupling between PE 0 (nodes 0-3) and PE 5 (20-23).
        J[0, 20] = J[20, 0] = 5.0
        # Weak remote coupling between PE 0 and PE 4.
        J[0, 16] = J[16, 0] = 0.1
        allowed = pe_pairs_allowed("mesh", (2, 3))
        pairs = wormhole_pairs(J, placement, allowed, 1)
        assert pairs == [(0, 5)]

    def test_excludes_pattern_feasible_pairs(self):
        placement = _placement()
        J = np.zeros((24, 24))
        J[0, 4] = J[4, 0] = 9.0  # PE0-PE1 are mesh neighbors
        allowed = pe_pairs_allowed("mesh", (2, 3))
        assert wormhole_pairs(J, placement, allowed, 5) == []

    def test_rejects_negative_budget(self):
        placement = _placement()
        with pytest.raises(ValueError, match="budget"):
            wormhole_pairs(np.zeros((24, 24)), placement, np.eye(6, dtype=bool), -1)


class TestPatternMask:
    def test_intra_pe_always_allowed(self):
        placement = _placement()
        J = symmetrize_coupling(np.random.default_rng(1).normal(size=(24, 24)))
        mask = pattern_mask(J, placement, "chain", wormhole_budget=0)
        for group in placement.groups:
            block = mask[np.ix_(group, group)]
            off_diagonal = block[~np.eye(group.size, dtype=bool)]
            assert np.all(off_diagonal)

    def test_mask_is_symmetric_with_false_diagonal(self):
        placement = _placement()
        J = symmetrize_coupling(np.random.default_rng(2).normal(size=(24, 24)))
        mask = pattern_mask(J, placement, "dmesh")
        assert np.array_equal(mask, mask.T)
        assert not np.any(np.diag(mask))

    def test_pattern_hierarchy_in_masks(self):
        placement = _placement()
        J = symmetrize_coupling(np.random.default_rng(3).normal(size=(24, 24)))
        mesh = pattern_mask(J, placement, "mesh", wormhole_budget=0)
        dmesh = pattern_mask(J, placement, "dmesh", wormhole_budget=0)
        assert np.all(dmesh[mesh])
        assert dmesh.sum() > mesh.sum()

    def test_wormholes_open_remote_pairs(self):
        placement = _placement()
        J = np.zeros((24, 24))
        J[0, 20] = J[20, 0] = 5.0  # remote PE0-PE5
        without = pattern_mask(J, placement, "mesh", wormhole_budget=0)
        with_wh = pattern_mask(J, placement, "mesh", wormhole_budget=1)
        assert not without[0, 20]
        assert with_wh[0, 20]
