"""Tests of coupling-matrix sparsification."""

import numpy as np
import pytest

from repro.core import symmetrize_coupling
from repro.decompose import coupling_density, prune_below, prune_to_density


def _J(n=12, seed=0):
    return symmetrize_coupling(np.random.default_rng(seed).normal(size=(n, n)))


class TestCouplingDensity:
    def test_dense_matrix_is_one(self):
        assert np.isclose(coupling_density(_J()), 1.0)

    def test_empty_matrix_is_zero(self):
        assert coupling_density(np.zeros((5, 5))) == 0.0

    def test_single_node(self):
        assert coupling_density(np.zeros((1, 1))) == 0.0


class TestPruneToDensity:
    def test_achieves_requested_density(self):
        J = _J(20)
        for d in (0.05, 0.1, 0.3, 0.7):
            pruned = prune_to_density(J, d)
            assert coupling_density(pruned) <= d + 1e-9
            assert coupling_density(pruned) >= d - 2.0 / (20 * 19)

    def test_keeps_strongest_pairs(self):
        J = _J(10, seed=1)
        pruned = prune_to_density(J, 0.2)
        kept = np.abs(J[pruned != 0])
        dropped = np.abs(J[(pruned == 0) & (J != 0)])
        if kept.size and dropped.size:
            assert kept.min() >= dropped.max() - 1e-12

    def test_result_stays_symmetric(self):
        pruned = prune_to_density(_J(15, seed=2), 0.1)
        assert np.allclose(pruned, pruned.T)
        assert np.all(np.diag(pruned) == 0.0)

    def test_values_preserved(self):
        J = _J(8, seed=3)
        pruned = prune_to_density(J, 0.5)
        nz = pruned != 0
        assert np.allclose(pruned[nz], J[nz])

    def test_nested_supports(self):
        """Lower density supports are subsets of higher ones — the property
        the Fig. 10 monotonicity relies on."""
        J = _J(16, seed=4)
        small = prune_to_density(J, 0.05) != 0
        large = prune_to_density(J, 0.2) != 0
        assert np.all(large[small])

    def test_density_one_is_identity(self):
        J = _J(6, seed=5)
        assert np.allclose(prune_to_density(J, 1.0), J)

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError, match="density"):
            prune_to_density(_J(), 0.0)


class TestPruneBelow:
    def test_threshold_semantics(self):
        J = np.asarray([[0.0, 0.5, -0.1], [0.5, 0.0, 0.2], [-0.1, 0.2, 0.0]])
        pruned = prune_below(J, 0.15)
        assert pruned[0, 2] == 0.0
        assert pruned[0, 1] == 0.5
        assert pruned[1, 2] == 0.2

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="non-negative"):
            prune_below(np.zeros((2, 2)), -1.0)


class TestSparseCoupling:
    def test_round_trips_pruned_matrix(self):
        import scipy.sparse as sp

        from repro.decompose import sparse_coupling

        pruned = prune_to_density(_J(), 0.3)
        csr = sparse_coupling(pruned)
        assert sp.issparse(csr) and csr.format == "csr"
        assert np.allclose(csr.toarray(), pruned)
        assert csr.nnz == np.count_nonzero(pruned)

    def test_accepts_sparse_input(self):
        import scipy.sparse as sp

        from repro.decompose import sparse_coupling

        pruned = prune_to_density(_J(), 0.25)
        csr = sparse_coupling(sp.coo_matrix(pruned))
        assert csr.format == "csr"
        assert np.allclose(csr.toarray(), pruned)

    def test_density_agrees_between_storages(self):
        from repro.decompose import sparse_coupling

        pruned = prune_to_density(_J(), 0.4)
        assert np.isclose(
            coupling_density(sparse_coupling(pruned)), coupling_density(pruned)
        )
