"""Tests of community redistribution onto the PE grid."""

import numpy as np
import pytest

from repro.core import symmetrize_coupling
from repro.decompose import PlacementResult, redistribute, split_oversized


def _weights(n, seed=0):
    return np.abs(symmetrize_coupling(np.random.default_rng(seed).normal(size=(n, n))))


class TestSplitOversized:
    def test_small_community_untouched(self):
        members = np.asarray([3, 5, 7])
        chunks = split_oversized(members, capacity=5, weights=_weights(10))
        assert len(chunks) == 1
        assert np.array_equal(chunks[0], members)

    def test_chunks_respect_capacity_and_cover_members(self):
        members = np.arange(11)
        chunks = split_oversized(members, capacity=4, weights=_weights(11, seed=1))
        assert all(c.size <= 4 for c in chunks)
        covered = np.sort(np.concatenate(chunks))
        assert np.array_equal(covered, members)

    def test_chunks_are_cohesive(self):
        """A two-clique graph split with capacity=clique size should keep
        each clique together."""
        n = 8
        W = np.zeros((n, n))
        W[:4, :4] = 1.0
        W[4:, 4:] = 1.0
        np.fill_diagonal(W, 0.0)
        chunks = split_oversized(np.arange(n), capacity=4, weights=W)
        assert len(chunks) == 2
        for chunk in chunks:
            assert set(chunk) in ({0, 1, 2, 3}, {4, 5, 6, 7})

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            split_oversized(np.arange(3), 0, _weights(3))


class TestRedistribute:
    def test_every_node_placed_once(self):
        n = 30
        labels = np.random.default_rng(2).integers(0, 5, size=n)
        placement = redistribute(labels, _weights(n, seed=2), (2, 3))
        assert placement.pe_of_node.shape == (n,)
        covered = np.sort(np.concatenate([g for g in placement.groups if g.size]))
        assert np.array_equal(covered, np.arange(n))

    def test_capacity_respected(self):
        n = 24
        labels = np.zeros(n, dtype=int)  # one giant community
        placement = redistribute(labels, _weights(n, seed=3), (2, 2), capacity=7)
        assert np.all(placement.loads() <= 7)

    def test_communities_kept_together_when_possible(self):
        n = 20
        labels = np.repeat(np.arange(4), 5)
        W = np.zeros((n, n))
        for c in range(4):
            block = slice(5 * c, 5 * c + 5)
            W[block, block] = 1.0
        np.fill_diagonal(W, 0.0)
        placement = redistribute(labels, W, (2, 2), capacity=5)
        for c in range(4):
            members = np.nonzero(labels == c)[0]
            assert np.unique(placement.pe_of_node[members]).size == 1

    def test_rejects_insufficient_capacity(self):
        with pytest.raises(ValueError, match="cannot hold"):
            redistribute(np.zeros(10, dtype=int), _weights(10), (1, 2), capacity=3)

    def test_default_capacity_is_balanced(self):
        placement = redistribute(
            np.zeros(10, dtype=int), _weights(10, seed=4), (2, 2)
        )
        assert placement.capacity == 3  # ceil(10 / 4)

    def test_pe_coordinates(self):
        placement = PlacementResult(
            pe_of_node=np.zeros(1, dtype=int),
            grid_shape=(2, 3),
            capacity=1,
            groups=[np.asarray([0])] + [np.zeros(0, dtype=int)] * 5,
        )
        assert placement.pe_coordinates(0) == (0, 0)
        assert placement.pe_coordinates(4) == (1, 1)
        with pytest.raises(ValueError, match="grid"):
            placement.pe_coordinates(6)
