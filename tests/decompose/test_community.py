"""Tests of the Louvain community extraction."""

import numpy as np
import pytest

from repro.decompose import (
    community_sizes,
    louvain_communities,
    louvain_networkx,
    modularity,
)


def planted_partition(n=60, k=4, p_in=0.6, p_out=0.05, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(k), n // k)
    W = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            p = p_in if labels[i] == labels[j] else p_out
            if rng.random() < p:
                W[i, j] = W[j, i] = 1.0
    return W, labels


class TestModularity:
    def test_perfect_labels_beat_random(self):
        W, truth = planted_partition()
        rng = np.random.default_rng(1)
        random_labels = rng.integers(0, 4, size=60)
        assert modularity(W, truth) > modularity(W, random_labels)

    def test_single_community_is_zero(self):
        W, _ = planted_partition()
        assert np.isclose(modularity(W, np.zeros(60, dtype=int)), 0.0, atol=1e-12)

    def test_empty_graph(self):
        assert modularity(np.zeros((4, 4)), np.arange(4)) == 0.0


class TestLouvain:
    def test_recovers_planted_partition(self):
        W, truth = planted_partition()
        labels = louvain_communities(W, seed=0)
        assert labels.max() + 1 == 4
        # Same-partition agreement (labels are permutation-invariant).
        same_truth = truth[:, None] == truth[None, :]
        same_found = labels[:, None] == labels[None, :]
        agreement = np.mean(same_truth == same_found)
        assert agreement > 0.95

    def test_matches_networkx_modularity(self):
        W, _ = planted_partition(seed=2)
        ours = modularity(W, louvain_communities(W, seed=0))
        reference = modularity(W, louvain_networkx(W, seed=0))
        assert ours >= reference - 0.05

    def test_uses_coupling_magnitudes(self):
        """Sign of J must not matter: antiferromagnetic couplings still
        bind communities."""
        W, _ = planted_partition(seed=3)
        signs = np.random.default_rng(4).choice([-1.0, 1.0], size=W.shape)
        signed = W * (signs + signs.T) / 2.0
        a = louvain_communities(W, seed=0)
        b = louvain_communities(np.abs(signed), seed=0)
        assert modularity(W, b) > 0.3
        del a

    def test_labels_are_compact(self):
        W, _ = planted_partition(seed=5)
        labels = louvain_communities(W, seed=1)
        assert set(labels) == set(range(labels.max() + 1))

    def test_empty_graph(self):
        assert louvain_communities(np.zeros((0, 0))).size == 0

    def test_disconnected_nodes_get_labels(self):
        W = np.zeros((5, 5))
        W[0, 1] = W[1, 0] = 1.0
        labels = louvain_communities(W)
        assert labels.shape == (5,)

    def test_resolution_controls_granularity(self):
        W, _ = planted_partition(seed=6)
        coarse = louvain_communities(W, resolution=0.2, seed=0)
        fine = louvain_communities(W, resolution=3.0, seed=0)
        assert fine.max() >= coarse.max()


class TestCommunitySizes:
    def test_counts(self):
        assert np.array_equal(
            community_sizes(np.asarray([0, 0, 1, 2, 2, 2])), [2, 1, 3]
        )

    def test_empty(self):
        assert community_sizes(np.zeros(0, dtype=int)).size == 0
