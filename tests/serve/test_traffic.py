"""Traffic generation: determinism, burstiness, loop disciplines."""

import asyncio

import numpy as np
import pytest

from repro.core import NaturalAnnealingEngine, symmetrize_coupling
from repro.core.model import DSGLModel
from repro.serve import (
    InferenceServer,
    ServeConfig,
    closed_loop,
    open_loop,
    summarize_latencies,
    synthetic_workload,
)


def _model(n=12, seed=0):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.4)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return DSGLModel(J=J, h=h)


class TestSyntheticWorkload:
    def test_same_seed_same_workload(self):
        model = _model()
        first = synthetic_workload(model, 50, seed=3)
        second = synthetic_workload(model, 50, seed=3)
        assert len(first) == len(second) == 50
        for a, b in zip(first.requests, second.requests):
            assert a.at_ms == b.at_ms
            assert np.array_equal(a.observed_index, b.observed_index)
            assert np.array_equal(a.observed_values, b.observed_values)

    def test_different_seed_differs(self):
        model = _model()
        first = synthetic_workload(model, 50, seed=3)
        second = synthetic_workload(model, 50, seed=4)
        assert any(
            a.at_ms != b.at_ms
            for a, b in zip(first.requests, second.requests)
        )

    def test_arrivals_sorted_and_start_at_zero(self):
        workload = synthetic_workload(_model(), 80, seed=0)
        arrivals = [r.at_ms for r in workload.requests]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)

    def test_mean_rate_roughly_honored(self):
        workload = synthetic_workload(
            _model(), 600, rate_rps=1000.0, burstiness=4.0, seed=1
        )
        realized = (len(workload) - 1) / (workload.duration_ms / 1000.0)
        # Gaps are normalized to the nominal mean rate; only the t=0
        # re-anchoring of the first arrival perturbs the realized value.
        assert realized == pytest.approx(1000.0, rel=0.1)

    def test_bursty_arrivals_more_dispersed_than_poisson(self):
        model = _model()
        bursty = synthetic_workload(
            model, 600, rate_rps=1000.0, burstiness=6.0, seed=2
        )
        smooth = synthetic_workload(
            model, 600, rate_rps=1000.0, burstiness=1.0, seed=2
        )

        def gap_cv(workload):
            gaps = np.diff([r.at_ms for r in workload.requests])
            return gaps.std() / gaps.mean()

        # Poisson gaps have CV ~= 1; modulated bursts are overdispersed.
        assert gap_cv(smooth) < 1.3
        assert gap_cv(bursty) > gap_cv(smooth) + 0.3

    def test_groups_rotate(self):
        workload = synthetic_workload(_model(), 60, num_groups=3, seed=0)
        assert len(workload.groups) == 3
        seen = {
            request.observed_index.tobytes()
            for request in workload.requests
        }
        assert len(seen) == 3

    def test_validation(self):
        model = _model()
        with pytest.raises(ValueError, match="num_requests"):
            synthetic_workload(model, 0)
        with pytest.raises(ValueError, match="rate_rps"):
            synthetic_workload(model, 5, rate_rps=0.0)
        with pytest.raises(ValueError, match="burstiness"):
            synthetic_workload(model, 5, burstiness=0.5)
        with pytest.raises(ValueError, match="num_observed"):
            synthetic_workload(model, 5, num_observed=model.n)


class TestLoadLoops:
    def _serve(self, coro):
        return asyncio.run(coro)

    def test_open_loop_serves_everything_under_light_load(self):
        model = _model()
        engine = NaturalAnnealingEngine(model=model, backend="sparse")
        workload = synthetic_workload(
            model, 30, rate_rps=3000.0, num_groups=2, seed=5
        )

        async def main():
            async with InferenceServer(
                engine, ServeConfig(batch_window_ms=1.0)
            ) as server:
                return await open_loop(server, workload)

        summary = self._serve(main())
        assert summary["loop"] == "open"
        assert summary["completed"] == 30
        assert summary["statuses"] == {"ok": 30}
        assert len(summary["latencies_ms"]) == 30
        assert all(lat > 0 for lat in summary["latencies_ms"])
        assert summary["throughput_rps"] > 0
        assert summary["mean_batch_size"] >= 1.0

    def test_closed_loop_serves_everything(self):
        model = _model()
        engine = NaturalAnnealingEngine(model=model, backend="sparse")
        workload = synthetic_workload(model, 24, num_groups=2, seed=6)

        async def main():
            async with InferenceServer(
                engine, ServeConfig(batch_window_ms=1.0)
            ) as server:
                return await closed_loop(server, workload, concurrency=4)

        summary = self._serve(main())
        assert summary["loop"] == "closed"
        assert summary["completed"] == 24
        assert summary["concurrency"] == 4
        assert len(summary["latencies_ms"]) == 24

    def test_open_loop_sheds_under_overload(self):
        model = _model()
        engine = NaturalAnnealingEngine(model=model, backend="sparse")
        workload = synthetic_workload(
            model, 80, rate_rps=50_000.0, burstiness=1.0,
            num_groups=1, seed=7,
        )
        config = ServeConfig(
            batch_window_ms=5.0, max_batch_size=4, max_queue=2
        )

        async def main():
            async with InferenceServer(engine, config) as server:
                return await open_loop(server, workload)

        summary = self._serve(main())
        assert summary["statuses"].get("shed", 0) > 0
        assert summary["completed"] > 0
        assert (
            summary["completed"] + summary["statuses"]["shed"]
            == len(workload)
        )


class TestLatencySummary:
    def test_quantiles_ordered(self):
        latencies = list(np.random.default_rng(0).exponential(5.0, 2000))
        summary = summarize_latencies(latencies)
        assert summary["count"] == 2000
        assert (
            summary["p50_ms"]
            <= summary["p99_ms"]
            <= summary["p999_ms"]
            <= summary["max_ms"]
        )

    def test_empty_sample(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0
        assert summary["p999_ms"] == 0.0

    def test_matches_numpy_quantiles(self):
        latencies = [1.0, 2.0, 3.0, 4.0, 100.0]
        summary = summarize_latencies(latencies)
        assert summary["p50_ms"] == pytest.approx(
            float(np.quantile(latencies, 0.5))
        )
        assert summary["max_ms"] == 100.0
