"""The serve SLO benchmark payload: shape, guarantees, diff-gate fit."""

import numpy as np
import pytest

from repro.obs.regress import compare_bench, result_key
from repro.serve import format_serve_bench
from repro.serve.bench import (
    SMOKE_WINDOWS,
    bench_serve_burst,
    bench_serve_overload,
    run_serve_benchmarks,
)


@pytest.fixture(scope="module")
def payload():
    return run_serve_benchmarks(smoke=True, repeats=2, seed=0)


class TestPayloadShape:
    def test_envelope(self, payload):
        assert payload["benchmark"] == "serve_slo"
        assert payload["smoke"] is True
        assert payload["repeats"] == 2
        assert payload["results"]
        assert "metrics" in payload
        assert payload["metrics"]["counters"]["serve.batches"] > 0

    def test_open_loop_curve_covers_every_window(self, payload):
        rows = [
            r for r in payload["results"] if r["name"] == "serve_open_loop"
        ]
        assert len(rows) == len(SMOKE_WINDOWS) >= 3
        assert sorted(r["batch_window_ms"] for r in rows) == sorted(
            SMOKE_WINDOWS
        )
        for row in rows:
            assert row["completed"] == row["requests"]
            assert 0.0 < row["p50_ms"] <= row["p99_ms"] <= row["p999_ms"]
            assert row["throughput_rps"] > 0
            assert row["optimized_stats"]["samples_ms"]

    def test_wider_window_batches_more(self, payload):
        rows = sorted(
            (
                r
                for r in payload["results"]
                if r["name"] == "serve_open_loop"
            ),
            key=lambda r: r["batch_window_ms"],
        )
        assert (
            rows[-1]["mean_batch_size"] >= rows[0]["mean_batch_size"]
        )

    def test_rows_have_distinct_diff_keys(self, payload):
        keys = [result_key(row) for row in payload["results"]]
        assert len(keys) == len(set(keys))

    def test_self_diff_is_silent(self, payload):
        report = compare_bench(payload, payload)
        assert report["regressions"] == 0
        assert report["compared"] > 0

    def test_format_renders(self, payload):
        rendered = format_serve_bench(payload)
        assert "serve_open_loop" in rendered
        assert "bitwise_identical=True" in rendered


class TestGuarantees:
    def test_batched_beats_serial_bit_for_bit(self, payload):
        row = next(
            r
            for r in payload["results"]
            if r["name"] == "serve_batched_vs_serial"
        )
        assert row["bitwise_identical"] is True
        assert row["max_abs_diff"] == 0.0
        assert row["speedup"] > 1.0
        assert row["throughput_batched_rps"] > row["throughput_serial_rps"]

    def test_overload_sheds_but_still_serves(self, payload):
        row = next(
            r
            for r in payload["results"]
            if r["name"] == "serve_overload_shed"
        )
        assert row["shed"] > 0
        assert row["completed"] > 0
        assert row["shed"] + row["completed"] == row["requests"]
        assert 0.0 < row["shed_fraction"] < 1.0


class TestDeterminism:
    def test_burst_predictions_seeded(self):
        first = bench_serve_burst(32, 0.2, burst=8, repeats=1, seed=9)
        second = bench_serve_burst(32, 0.2, burst=8, repeats=1, seed=9)
        assert first["bitwise_identical"] is True
        assert second["bitwise_identical"] is True
        assert first["max_abs_diff"] == second["max_abs_diff"] == 0.0

    def test_overload_statuses_depend_only_on_timing(self):
        row = bench_serve_overload(32, 0.2, seed=1)
        assert set(row["statuses"]) <= {"ok", "shed"}
