"""Server lifecycle: shutdown semantics, interrupts, modes, telemetry."""

import asyncio

import numpy as np
import pytest

from repro import obs
from repro.core import NaturalAnnealingEngine, symmetrize_coupling
from repro.core.model import DSGLModel
from repro.parallel import shm_residue
from repro.serve import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHUTDOWN,
    InferenceServer,
    ServeConfig,
)

OBSERVED = np.asarray([0, 2, 5])


def _model(n=10, seed=0):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.4)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return DSGLModel(J=J, h=h)


def _engine(n=10, seed=0, backend="sparse"):
    return NaturalAnnealingEngine(model=_model(n, seed), backend=backend)


def _run(coro):
    return asyncio.run(coro)


class TestShutdown:
    def test_drain_completes_queued_requests(self):
        config = ServeConfig(batch_window_ms=200.0, drain_on_shutdown=True)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                futures = [
                    server.submit(OBSERVED, [0.1 * i, 0.0, 0.2])
                    for i in range(4)
                ]
                # __aexit__ drains: the long window is skipped and the
                # queued batch executes before the server stops.
            return await asyncio.gather(*futures)

        results = _run(main())
        assert [r.status for r in results] == [STATUS_OK] * 4

    def test_no_drain_returns_shutdown_status(self):
        config = ServeConfig(batch_window_ms=200.0)

        async def main():
            server = InferenceServer(_engine(), config).start()
            futures = [
                server.submit(OBSERVED, [0.1, 0.2, 0.3]) for _ in range(3)
            ]
            await server.shutdown(drain=False)
            return await asyncio.gather(*futures), server.stats

        results, stats = _run(main())
        assert [r.status for r in results] == [STATUS_SHUTDOWN] * 3
        assert all(r.prediction is None for r in results)
        assert stats["shutdown"] == 3

    def test_submit_after_shutdown_is_rejected_cleanly(self):
        async def main():
            server = InferenceServer(_engine()).start()
            await server.shutdown()
            result = await server.submit(OBSERVED, [0.1, 0.2, 0.3])
            return result

        assert _run(main()).status == STATUS_SHUTDOWN

    def test_request_shutdown_is_signal_handler_safe(self):
        """The sync trigger (what a SIGTERM handler calls) stops the loop."""
        config = ServeConfig(batch_window_ms=50.0)

        async def main():
            server = InferenceServer(_engine(), config).start()
            future = server.submit(OBSERVED, [0.1, 0.2, 0.3])
            server.request_shutdown()
            result = await future  # drained on the way out
            await server.shutdown()
            return result

        assert _run(main()).status == STATUS_OK

    def test_keyboard_interrupt_mid_batch_fails_cleanly(self):
        """An interrupt landing in the engine call must not hang futures."""
        engine = _engine()
        calls = {"n": 0}
        original = engine.infer_equilibrium_batch

        def interrupt_once(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return original(*args, **kwargs)

        engine.infer_equilibrium_batch = interrupt_once
        config = ServeConfig(batch_window_ms=5.0)
        futures = {}

        async def main():
            server = InferenceServer(engine, config).start()
            futures["first"] = server.submit(OBSERVED, [0.1, 0.2, 0.3])
            futures["second"] = server.submit(OBSERVED, [0.4, 0.5, 0.6])
            await asyncio.sleep(60)  # the interrupt kills the loop first

        # asyncio re-raises a task's KeyboardInterrupt out of the event
        # loop itself — exactly the ^C-in-the-server-loop scenario.
        with pytest.raises(KeyboardInterrupt):
            asyncio.run(main())
        # The interrupted batch resolved with the clean shutdown status
        # before the loop died (never a hang), and nothing leaked into
        # /dev/shm.
        assert futures["first"].result().status == STATUS_SHUTDOWN
        assert futures["second"].result().status == STATUS_SHUTDOWN
        assert shm_residue() == []

    def test_failed_batch_reports_error_and_keeps_serving(self):
        engine = _engine()
        calls = {"n": 0}
        original = engine.infer_equilibrium_batch

        def fail_once(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("solver exploded")
            return original(*args, **kwargs)

        engine.infer_equilibrium_batch = fail_once

        async def main():
            async with InferenceServer(engine) as server:
                first = await server.submit(OBSERVED, [0.1, 0.2, 0.3])
                second = await server.submit(OBSERVED, [0.4, 0.5, 0.6])
            return first, second

        first, second = _run(main())
        assert first.status == STATUS_FAILED
        assert "solver exploded" in first.error
        assert second.status == STATUS_OK


class TestPoolBackedServing:
    def test_circuit_mode_with_workers_leaves_no_shm_residue(self):
        """Pool-backed batches ride the PR-6 transport: zero residue."""
        config = ServeConfig(
            mode="circuit",
            duration_ns=2.0,
            batch_window_ms=10.0,
            workers=1,
            shards=2,
        )

        async def main():
            async with InferenceServer(_engine(), config) as server:
                futures = [
                    server.submit(OBSERVED, [0.1 * i, 0.0, 0.2])
                    for i in range(4)
                ]
                return await asyncio.gather(*futures)

        results = _run(main())
        assert all(r.status == STATUS_OK for r in results)
        assert all(r.prediction.shape == (7,) for r in results)
        assert shm_residue() == []

    def test_circuit_mode_shutdown_mid_queue_no_residue(self):
        config = ServeConfig(
            mode="circuit",
            duration_ns=2.0,
            batch_window_ms=500.0,
            workers=1,
        )

        async def main():
            server = InferenceServer(_engine(), config).start()
            futures = [
                server.submit(OBSERVED, [0.1, 0.2, 0.3]) for _ in range(3)
            ]
            await server.shutdown(drain=False)
            return await asyncio.gather(*futures)

        results = _run(main())
        assert [r.status for r in results] == [STATUS_SHUTDOWN] * 3
        assert shm_residue() == []

    def test_circuit_mode_serial_matches_engine(self):
        config = ServeConfig(
            mode="circuit", duration_ns=5.0, batch_window_ms=0.0
        )
        engine = _engine()

        async def main():
            async with InferenceServer(engine, config) as server:
                return await server.submit(OBSERVED, [0.5, -0.2, 0.9])

        result = _run(main())
        direct = _engine().infer_batch(
            OBSERVED, np.asarray([[0.5, -0.2, 0.9]]), duration=5.0
        )
        assert np.array_equal(result.prediction, direct.predictions[0])


class TestWarmAndCaches:
    def test_warm_prefactors_the_observed_set(self):
        engine = _engine()

        async def main():
            async with InferenceServer(engine) as server:
                server.warm(OBSERVED)
                assert engine.cache_size == 1
                misses = engine.cache_misses
                await server.submit(OBSERVED, [0.1, 0.2, 0.3])
                assert engine.cache_misses == misses  # served warm

        _run(main())

    def test_lifecycle_is_restartable(self):
        engine = _engine()

        async def main():
            server = InferenceServer(engine)
            async with server:
                first = await server.submit(OBSERVED, [0.1, 0.2, 0.3])
            async with server:
                second = await server.submit(OBSERVED, [0.1, 0.2, 0.3])
            return first, second

        first, second = _run(main())
        assert first.status == second.status == STATUS_OK
        assert np.array_equal(first.prediction, second.prediction)

    def test_double_start_raises(self):
        async def main():
            async with InferenceServer(_engine()) as server:
                with pytest.raises(RuntimeError, match="already started"):
                    server.start()

        _run(main())


class TestServeObservability:
    def test_metrics_and_spans_recorded(self):
        config = ServeConfig(batch_window_ms=10.0, max_queue=2)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                futures = [
                    server.submit(OBSERVED, [0.1 * i, 0.0, 0.2])
                    for i in range(4)  # 2 admitted, 2 shed
                ]
                return await asyncio.gather(*futures)

        with obs.observe() as (registry, _tracer):
            _run(main())
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["serve.requests"] == 4
        assert counters["serve.shed"] == 2
        assert counters["serve.samples"] == 2
        assert counters["serve.batches"] == 1
        assert "serve.batch_size" in snapshot["histograms"]
        assert "serve.request_latency_ms" in snapshot["histograms"]

    def test_request_spans_parent_onto_batch_span(self, tmp_path):
        trace_path = tmp_path / "serve.jsonl"
        config = ServeConfig(batch_window_ms=10.0)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                futures = [
                    server.submit(OBSERVED, [0.1 * i, 0.0, 0.2])
                    for i in range(3)
                ]
                return await asyncio.gather(*futures)

        with obs.observe(trace_path=trace_path):
            _run(main())
        records = obs.read_trace(trace_path)
        spans = [r for r in records if r.get("kind") == "span"]
        batches = [s for s in spans if s["name"] == "serve.batch"]
        requests = [s for s in spans if s["name"] == "serve.request"]
        assert len(batches) == 1
        assert len(requests) == 3
        batch_id = batches[0]["span_id"]
        assert all(r["parent_id"] == batch_id for r in requests)
        assert all(r["duration_ms"] > 0 for r in requests)
        assert all(
            r["attributes"]["queued_ms"] >= 0 for r in requests
        )
