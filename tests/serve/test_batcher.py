"""Batcher edge cases: windows, caps, grouping, shed, bit-exactness."""

import asyncio

import numpy as np
import pytest

from repro.core import NaturalAnnealingEngine, symmetrize_coupling
from repro.core.model import DSGLModel
from repro.serve import (
    STATUS_OK,
    STATUS_SHED,
    InferenceServer,
    ServeConfig,
)


def _model(n=10, seed=0):
    rng = np.random.default_rng(seed)
    J = symmetrize_coupling(rng.normal(size=(n, n)) * 0.4)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return DSGLModel(
        J=J,
        h=h,
        mean=rng.normal(size=n),
        scale=rng.uniform(0.5, 1.5, size=n),
    )


def _engine(n=10, seed=0, backend="sparse"):
    return NaturalAnnealingEngine(model=_model(n, seed), backend=backend)


def _run(coro):
    return asyncio.run(coro)


OBSERVED = np.asarray([0, 2, 5])


class TestBatching:
    def test_single_request_batch(self):
        async def main():
            async with InferenceServer(_engine()) as server:
                result = await server.submit(OBSERVED, [0.5, -0.2, 0.9])
            return result

        result = _run(main())
        assert result.status == STATUS_OK
        assert result.batch_size == 1
        assert result.prediction.shape == (7,)
        assert result.latency_ms >= result.service_ms > 0

    def test_concurrent_requests_coalesce(self):
        config = ServeConfig(batch_window_ms=20.0, max_batch_size=8)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                futures = [
                    server.submit(OBSERVED, [0.1 * i, -0.2, 0.3])
                    for i in range(5)
                ]
                return await asyncio.gather(*futures)

        results = _run(main())
        assert [r.status for r in results] == [STATUS_OK] * 5
        assert all(r.batch_size == 5 for r in results)

    def test_oversized_burst_splits_at_max_batch_size(self):
        config = ServeConfig(batch_window_ms=20.0, max_batch_size=4)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                futures = [
                    server.submit(OBSERVED, [0.1 * i, 0.0, 0.2])
                    for i in range(10)
                ]
                return await asyncio.gather(*futures)

        results = _run(main())
        assert all(r.status == STATUS_OK for r in results)
        assert max(r.batch_size for r in results) <= 4
        # 10 requests through a cap of 4 is at least three batches.
        assert sum(1 for r in results if r.batch_size == 4) >= 4

    def test_zero_window_serves_immediately(self):
        config = ServeConfig(batch_window_ms=0.0, max_batch_size=8)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                return await server.submit(OBSERVED, [0.4, 0.1, -0.3])

        assert _run(main()).status == STATUS_OK

    def test_mixed_observed_sets_batch_separately(self):
        other = np.asarray([1, 3, 7])
        config = ServeConfig(batch_window_ms=20.0, max_batch_size=8)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                futures = [
                    server.submit(OBSERVED, [0.1, 0.2, 0.3]),
                    server.submit(other, [0.4, 0.5, 0.6]),
                    server.submit(OBSERVED, [0.7, 0.8, 0.9]),
                ]
                return await asyncio.gather(*futures)

        first, second, third = _run(main())
        assert first.status == second.status == third.status == STATUS_OK
        # Same-fingerprint requests coalesce across the interloper...
        assert first.batch_size == third.batch_size == 2
        # ...while the different observed set rides its own batch.
        assert second.batch_size == 1
        assert first.prediction.shape == (7,)
        assert second.prediction.shape == (7,)

    def test_empty_window_tick_is_harmless(self):
        """A tick that finds nothing executable must not wedge the loop."""
        config = ServeConfig(batch_window_ms=1.0)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                # Wake the batcher with no queued work: it should tick
                # empty and go back to waiting, then serve normally.
                server._wake.set()
                await asyncio.sleep(0.01)
                result = await server.submit(OBSERVED, [0.2, 0.2, 0.2])
            return result

        assert _run(main()).status == STATUS_OK


class TestAdmissionControl:
    def test_all_shed_when_queue_full(self):
        config = ServeConfig(
            batch_window_ms=50.0, max_batch_size=4, max_queue=3
        )

        async def main():
            async with InferenceServer(_engine(), config) as server:
                futures = [
                    server.submit(OBSERVED, [0.1, 0.1, 0.1])
                    for _ in range(10)
                ]
                return await asyncio.gather(*futures), server.stats

        results, stats = _run(main())
        statuses = [r.status for r in results]
        assert statuses.count(STATUS_SHED) == 7
        assert statuses.count(STATUS_OK) == 3
        assert stats["shed"] == 7
        shed = [r for r in results if r.status == STATUS_SHED]
        assert all(r.prediction is None for r in shed)

    def test_shed_resolves_immediately(self):
        config = ServeConfig(batch_window_ms=500.0, max_queue=1)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                server.submit(OBSERVED, [0.1, 0.1, 0.1])
                shed_future = server.submit(OBSERVED, [0.2, 0.2, 0.2])
                # Shed without waiting for the (long) batch window.
                assert shed_future.done()
                assert shed_future.result().status == STATUS_SHED
                await server.shutdown(drain=False)

        _run(main())

    def test_queue_depth_tracks_admissions(self):
        config = ServeConfig(batch_window_ms=100.0, max_queue=8)

        async def main():
            async with InferenceServer(_engine(), config) as server:
                assert server.queue_depth == 0
                futures = [
                    server.submit(OBSERVED, [0.1, 0.1, 0.1])
                    for _ in range(3)
                ]
                assert server.queue_depth == 3
                await server.shutdown(drain=True)
                return await asyncio.gather(*futures)

        results = _run(main())
        assert all(r.status == STATUS_OK for r in results)


class TestBitForBitCoalescing:
    @pytest.mark.parametrize("backend", ["sparse"])
    def test_coalesced_equals_serial_bitwise(self, backend):
        """One coalesced batch must be bit-identical to serial serving.

        Pinned on the sparse backend: its reduced solve is structurally
        column-independent (CSR matvec + SuperLU back-substitution per
        RHS), so batching cannot change a single bit.
        """
        rng = np.random.default_rng(7)
        values = rng.normal(size=(6, OBSERVED.size))
        batched_cfg = ServeConfig(batch_window_ms=20.0, max_batch_size=8)
        serial_cfg = ServeConfig(batch_window_ms=0.0, max_batch_size=1)

        async def run(engine, config, concurrent):
            async with InferenceServer(engine, config) as server:
                if concurrent:
                    futures = [
                        server.submit(OBSERVED, values[i])
                        for i in range(values.shape[0])
                    ]
                    results = await asyncio.gather(*futures)
                else:
                    results = [
                        await server.submit(OBSERVED, values[i])
                        for i in range(values.shape[0])
                    ]
            return results

        batched = _run(run(_engine(backend=backend), batched_cfg, True))
        serial = _run(run(_engine(backend=backend), serial_cfg, False))
        assert all(r.batch_size == 6 for r in batched)
        assert all(r.batch_size == 1 for r in serial)
        for got, want in zip(batched, serial):
            assert np.array_equal(got.prediction, want.prediction), (
                "coalesced batch diverged from serial execution"
            )

    def test_dense_backend_coalescing_rounding_level(self):
        """Dense GEMM batching is rounding-level, not bitwise (documented)."""
        rng = np.random.default_rng(3)
        values = rng.normal(size=(4, OBSERVED.size))
        config = ServeConfig(batch_window_ms=20.0, max_batch_size=8)

        async def run():
            engine = _engine(backend="dense")
            async with InferenceServer(engine, config) as server:
                futures = [
                    server.submit(OBSERVED, values[i])
                    for i in range(values.shape[0])
                ]
                batched = await asyncio.gather(*futures)
                serial = [
                    engine.infer_equilibrium(OBSERVED, values[i]).prediction
                    for i in range(values.shape[0])
                ]
            return batched, serial

        batched, serial = _run(run())
        for got, want in zip(batched, serial):
            assert np.allclose(got.prediction, want, atol=1e-12)


class TestConfigValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="batch_window_ms"):
            ServeConfig(batch_window_ms=-1.0)
        with pytest.raises(ValueError, match="max_batch_size"):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ValueError, match="max_queue"):
            ServeConfig(max_queue=0)
        with pytest.raises(ValueError, match="mode"):
            ServeConfig(mode="warp")

    def test_rejects_mismatched_values(self):
        async def main():
            async with InferenceServer(_engine()) as server:
                with pytest.raises(ValueError, match="length"):
                    server.submit(OBSERVED, [0.1, 0.2])

        _run(main())
