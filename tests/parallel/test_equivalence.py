"""Serial↔parallel equivalence: ``workers=N`` must equal ``workers=1`` bit
for bit at every layer that fans out — circuit batches, engine inference,
restart policies, DSPU propagator builds, hardware evaluation, and the
fault sweep.  Every comparison below uses exact equality, not allclose.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentContext,
    evaluate_hardware,
    fault_sweep_data,
)
from repro.faults import RestartPolicy


def _trajectories_equal(a, b):
    return (
        np.array_equal(a.times, b.times)
        and np.array_equal(a.states, b.states)
        and np.array_equal(a.energies, b.energies)
    )


class TestCircuitBatch:
    def _run(self, noisy_simulator, small_operator, workers):
        rng = np.random.default_rng(5)
        sigma0 = rng.uniform(-1, 1, size=(10, small_operator.n))
        return noisy_simulator.run_batch(
            small_operator.drift,
            sigma0,
            duration=3.0,
            energy=small_operator.energy,
            workers=workers,
            shards=3,
            root_seed=17,
        )

    def test_workers_do_not_change_bits(self, noisy_simulator, small_operator):
        serial = self._run(noisy_simulator, small_operator, 1)
        for workers in (2, 3):
            pooled = self._run(noisy_simulator, small_operator, workers)
            assert _trajectories_equal(serial, pooled)

    def test_default_shards(self, noisy_simulator, small_operator, rng):
        sigma0 = rng.uniform(-1, 1, size=(5, small_operator.n))
        run = lambda w: noisy_simulator.run_batch(  # noqa: E731
            small_operator.drift, sigma0, duration=2.0,
            workers=w, root_seed=1,
        )
        assert _trajectories_equal(run(1), run(2))

    def test_clamps_respected_per_shard(
        self, noisy_simulator, small_operator, rng
    ):
        batch = 7
        sigma0 = rng.uniform(-1, 1, size=(batch, small_operator.n))
        clamp_index = np.asarray([0, 4])
        clamp_value = rng.uniform(-1, 1, size=(batch, 2))
        run = lambda w: noisy_simulator.run_batch(  # noqa: E731
            small_operator.drift, sigma0, duration=2.0,
            clamp_index=clamp_index, clamp_value=clamp_value,
            workers=w, shards=3, root_seed=9,
        )
        serial, pooled = run(1), run(2)
        assert _trajectories_equal(serial, pooled)
        assert np.array_equal(
            pooled.final_states[:, clamp_index], clamp_value
        )


class TestEngineInference:
    def _infer(self, engine, workers):
        rng = np.random.default_rng(21)
        k = 4
        observed = np.arange(k)
        values = rng.normal(size=(6, k))
        return engine.infer_batch(
            observed, values, duration=5.0, workers=workers, shards=3
        )

    def test_workers_do_not_change_bits(self, engine):
        serial = self._infer(engine, 1)
        pooled = self._infer(engine, 2)
        assert np.array_equal(serial.predictions, pooled.predictions)
        assert np.array_equal(serial.states, pooled.states)
        assert _trajectories_equal(serial.trajectory, pooled.trajectory)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_transport_does_not_change_bits(self, engine, workers):
        """Legacy pickled vs shared-memory task transport: same bits."""
        from repro.parallel import infer_batch_sharded, shm_available

        if not shm_available():
            pytest.skip("named shared memory unavailable")
        rng = np.random.default_rng(21)
        observed = np.arange(4)
        values = rng.normal(size=(6, 4))
        run = lambda shm: infer_batch_sharded(  # noqa: E731
            engine, observed, values, duration=5.0,
            workers=workers, shards=3, shm=shm,
        )
        legacy, shared = run(False), run(True)
        assert np.array_equal(legacy.predictions, shared.predictions)
        assert np.array_equal(legacy.states, shared.states)
        assert _trajectories_equal(legacy.trajectory, shared.trajectory)

    def test_rng_and_workers_are_mutually_exclusive(self, engine):
        with pytest.raises(ValueError, match="mutually exclusive"):
            engine.infer_batch(
                np.arange(2),
                np.zeros((2, 2)),
                rng=np.random.default_rng(0),
                workers=2,
            )


class TestRestartPolicy:
    def _infer(self, engine, workers):
        policy = RestartPolicy(restarts=6, seed=13, workers=workers, shards=3)
        rng = np.random.default_rng(33)
        observed = np.arange(3)
        values = rng.normal(size=3)
        return policy.infer(engine, observed, values, duration=5.0)

    def test_workers_do_not_change_bits(self, engine):
        serial = self._infer(engine, 1)
        pooled = self._infer(engine, 2)
        assert np.array_equal(serial.prediction, pooled.prediction)
        assert np.array_equal(serial.state, pooled.state)
        assert np.array_equal(serial.energies, pooled.energies)
        assert serial.best_index == pooled.best_index
        assert serial.attempts == pooled.attempts


class TestHardwareLayers:
    def test_dspu_anneal_workers_match(self, traffic_dspu, traffic_setup):
        windowing = traffic_setup["windowing"]
        series = traffic_setup["test"].flat_series()
        t = windowing.prediction_frames(series)[0]
        history = windowing.history_of(series, t)
        serial = traffic_dspu.anneal(
            windowing.observed_index, history, duration_ns=2000.0, workers=1
        )
        pooled = traffic_dspu.anneal(
            windowing.observed_index, history, duration_ns=2000.0, workers=2
        )
        assert np.array_equal(serial.prediction, pooled.prediction)
        assert np.array_equal(serial.state, pooled.state)

    def test_evaluate_hardware_matches_legacy(
        self, traffic_dspu, traffic_setup
    ):
        windowing = traffic_setup["windowing"]
        series = traffic_setup["test"].flat_series()
        evaluate = lambda w: evaluate_hardware(  # noqa: E731
            traffic_dspu, windowing, series,
            duration_ns=2000.0, max_windows=4, workers=w,
        )
        legacy = evaluate(None)
        assert evaluate(1) == legacy
        assert evaluate(2) == legacy


class TestFaultSweep:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(size="small")

    def _sweep(self, context, workers):
        return fault_sweep_data(
            context,
            datasets=("traffic",),
            fault_rates=(0.0, 0.02),
            duration_ns=2000.0,
            max_windows=2,
            trials=2,
            workers=workers,
        )

    def test_workers_do_not_change_payload(self, context):
        serial = self._sweep(context, None)
        pooled = self._sweep(context, 2)
        assert serial == pooled
