"""Empty-input contracts of the sharded entry points.

Every fan-out layer raises ``ValueError`` on empty work rather than
silently returning an empty payload — downstream consumers (plotting,
BENCH writers, restart selection) treat an empty result as a *finished*
computation, which would hide the bug.  One contract, asserted at every
entry point: ``run_batch_sharded``, ``infer_batch_sharded``,
``restart_fanout``, and the fault-sweep grid.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentContext, fault_sweep_data
from repro.parallel import (
    infer_batch_sharded,
    restart_fanout,
    run_batch_sharded,
)


class TestEmptyBatchContracts:
    def test_run_batch_sharded_rejects_empty_batch(
        self, noisy_simulator, small_operator
    ):
        empty = np.empty((0, small_operator.n))
        with pytest.raises(ValueError, match="empty batch"):
            run_batch_sharded(
                noisy_simulator, small_operator.drift, empty, duration=1.0
            )

    def test_infer_batch_sharded_rejects_empty_batch(self, engine):
        observed = np.arange(3)
        empty = np.empty((0, 3))
        with pytest.raises(ValueError, match="empty batch"):
            infer_batch_sharded(engine, observed, empty, duration=1.0)

    def test_restart_fanout_rejects_empty_pool(self, engine):
        observed = np.arange(3)
        values = np.zeros(3)
        for restarts in (0, -1):
            with pytest.raises(ValueError, match="empty restart pool"):
                restart_fanout(
                    engine, observed, values, restarts, 1.0,
                    root_seed=0, max_retries=0, workers=1, shards=None,
                )


class TestFaultSweepContracts:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(size="small")

    def test_rejects_empty_datasets(self, context):
        with pytest.raises(ValueError, match="empty datasets"):
            fault_sweep_data(context, datasets=())

    def test_rejects_empty_fault_rates(self, context):
        with pytest.raises(ValueError, match="empty fault_rates"):
            fault_sweep_data(context, fault_rates=())

    def test_rejects_zero_trials(self, context):
        with pytest.raises(ValueError, match="trials"):
            fault_sweep_data(context, trials=0)
