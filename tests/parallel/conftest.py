"""Fixtures for the serial↔parallel equivalence suite.

Everything here is deliberately small: the point of these tests is
bit-for-bit agreement between worker counts, not statistical accuracy,
so two prediction windows and a handful of nodes are plenty.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaturalAnnealingEngine
from repro.core.dynamics import CircuitSimulator, IntegrationConfig
from repro.core.operators import CouplingOperator
from repro.hardware import ScalableDSPU


@pytest.fixture(scope="module")
def small_operator():
    """A 12-node convex coupling operator for circuit-level tests."""
    rng = np.random.default_rng(11)
    n = 12
    raw = rng.normal(size=(n, n)) * 0.3
    J = (raw + raw.T) / 2.0
    np.fill_diagonal(J, 0.0)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return CouplingOperator(J, h, backend="dense")


@pytest.fixture(scope="module")
def noisy_simulator():
    """A simulator with node noise active, so RNG equality is load-bearing."""
    return CircuitSimulator(
        config=IntegrationConfig(dt=0.05, record_every=4, node_noise_std=0.05)
    )


@pytest.fixture(scope="module")
def engine(trained_model):
    return NaturalAnnealingEngine(
        trained_model,
        config=IntegrationConfig(dt=0.05, record_every=8, node_noise_std=0.02),
        seed=3,
    )


@pytest.fixture(scope="module")
def traffic_dspu(decomposed_traffic):
    return ScalableDSPU(decomposed_traffic, node_time_constant_ns=500.0)
