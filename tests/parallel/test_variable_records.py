"""Sharded transport of adaptive / early-exit (variable-record) runs.

Adaptive step control and early-exit settling record a data-dependent
number of frames per shard, so the shared-memory slab transport (which
must preallocate result heights) is off the table.  These tests pin the
contract: such configs force the legacy transport, reassemble to a
two-frame trajectory whose ``final_states`` are exact, and stay
invariant across worker counts and pool start methods.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.dynamics import CircuitSimulator, IntegrationConfig
from repro.core.operators import CouplingOperator
from repro.parallel.circuit import expected_record_count, run_batch_sharded
from repro.parallel.pool import START_METHOD_ENV


@pytest.fixture(scope="module")
def operator():
    rng = np.random.default_rng(70)
    n = 10
    raw = rng.normal(size=(n, n)) * 0.3
    J = (raw + raw.T) / 2.0
    np.fill_diagonal(J, 0.0)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return CouplingOperator(J, h, backend="dense")


@pytest.fixture(scope="module")
def sigma0():
    return np.random.default_rng(71).uniform(-1, 1, size=(6, 10))


VARIABLE_CONFIGS = [
    IntegrationConfig(dt=0.05, adaptive=True, rtol=1e-5, atol=1e-8),
    IntegrationConfig(dt=0.05, early_exit=True, settle_tolerance=1e-9),
    IntegrationConfig(
        dt=0.05, adaptive=True, rtol=1e-5, atol=1e-8,
        early_exit=True, settle_tolerance=1e-9,
    ),
]


class TestExpectedRecordCount:
    @pytest.mark.parametrize("config", VARIABLE_CONFIGS)
    def test_rejects_variable_record_configs(self, config):
        with pytest.raises(ValueError, match="data-dependent"):
            expected_record_count(config, 10.0)

    def test_fixed_config_still_counts(self):
        assert expected_record_count(IntegrationConfig(dt=0.1), 1.0) >= 2


class TestTwoFrameReassembly:
    @pytest.mark.parametrize("config", VARIABLE_CONFIGS)
    def test_final_states_match_unsharded(self, config, operator, sigma0):
        """With noise off, shard semantics equal legacy semantics, so the
        sharded two-frame reassembly must reproduce the unsharded final
        states within the integration tolerance.  Bit-level equality is
        out of reach by design: the adaptive controller picks steps from
        the max error over its batch, so shard membership changes the
        step sequence, and subset matvecs round differently."""
        simulator = CircuitSimulator(config=config)
        unsharded = simulator.run_batch(operator.drift, sigma0, 100.0)
        sharded = run_batch_sharded(
            simulator, operator.drift, sigma0, 100.0,
            workers=1, shards=3,
        )
        assert len(sharded.times) == 2
        assert sharded.times[0] == 0.0
        assert np.allclose(
            sharded.final_states, unsharded.final_states, atol=1e-7
        )

    @pytest.mark.parametrize("config", VARIABLE_CONFIGS)
    def test_workers_invariant(self, config, operator, sigma0):
        simulator = CircuitSimulator(config=config)
        serial = run_batch_sharded(
            simulator, operator.drift, sigma0, 50.0, workers=1, shards=3
        )
        pooled = run_batch_sharded(
            simulator, operator.drift, sigma0, 50.0, workers=2, shards=3
        )
        assert np.array_equal(serial.final_states, pooled.final_states)
        assert np.array_equal(serial.times, pooled.times)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_start_method_invariant(
        self, operator, sigma0, monkeypatch, start_method
    ):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        config = IntegrationConfig(
            dt=0.05, early_exit=True, settle_tolerance=1e-9
        )
        simulator = CircuitSimulator(config=config)
        reference = run_batch_sharded(
            simulator, operator.drift, sigma0, 50.0, workers=1, shards=2
        )
        monkeypatch.setenv(START_METHOD_ENV, start_method)
        pooled = run_batch_sharded(
            simulator, operator.drift, sigma0, 50.0, workers=2, shards=2
        )
        assert np.array_equal(reference.final_states, pooled.final_states)

    def test_shm_transport_refused(self, operator, sigma0):
        config = IntegrationConfig(
            dt=0.05, early_exit=True, settle_tolerance=1e-9
        )
        simulator = CircuitSimulator(config=config)
        with pytest.raises(RuntimeError, match="shared-memory"):
            run_batch_sharded(
                simulator, operator.drift, sigma0, 10.0,
                workers=1, shards=2, shm=True,
            )

    def test_fixed_config_keeps_full_record_grid(self, operator, sigma0):
        """The variable-record fallback must not leak into fixed-step
        sharded runs: their full recorded grid survives reassembly."""
        config = IntegrationConfig(dt=0.05, record_every=10)
        simulator = CircuitSimulator(config=config)
        sharded = run_batch_sharded(
            simulator, operator.drift, sigma0, 10.0, workers=1, shards=2
        )
        assert len(sharded.times) == expected_record_count(config, 10.0)
