"""Cross-process observability stitching: absorb semantics + determinism.

Two halves:

* Unit tests of :meth:`Tracer.absorb` — the id-block remapping,
  re-parenting, clock rebasing, and task stamping that make worker
  records first-class members of the parent timeline.
* Determinism of the merged observability stream: the worker-emitted
  metric counts and the span-name ordering must be identical across
  worker counts {1, 2, 4} and across fork/spawn start methods (pool
  accounting metrics, which only exist on the pooled path, excluded).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.obs.trace import Tracer
from repro.parallel.engine import infer_batch_sharded
from repro.parallel.pool import START_METHOD_ENV


def _worker_records():
    """Simulate a worker tracer: two nested spans + one event."""
    worker = Tracer(None, trace_id="shared-trace")
    with worker.span("outer", task_kind="shard"):
        with worker.span("inner"):
            pass
        worker.event("probe", value=1)
    return worker, list(worker.records)


class TestAbsorb:
    def test_ids_remap_into_a_fresh_block(self):
        parent = Tracer(None)
        with parent.span("dispatch"):
            pass
        _, records = _worker_records()
        before = parent._next_id
        parent.absorb(records, parent_id=1)
        absorbed = parent.records[1:]
        ids = [r["span_id"] for r in absorbed if r["kind"] == "span"]
        assert all(span_id > before for span_id in ids)
        assert len(set(ids)) == len(ids)

    def test_two_workers_never_collide(self):
        parent = Tracer(None)
        with parent.span("dispatch"):
            pass
        _, first = _worker_records()
        _, second = _worker_records()
        parent.absorb(first, parent_id=1)
        parent.absorb(second, parent_id=1)
        ids = [
            r["span_id"] for r in parent.records if r["kind"] == "span"
        ]
        assert len(set(ids)) == len(ids)

    def test_worker_roots_reparent_onto_dispatch_span(self):
        parent = Tracer(None)
        with parent.span("dispatch") as dispatch:
            pass
        _, records = _worker_records()
        parent.absorb(records, parent_id=dispatch.span_id)
        outer = next(
            r for r in parent.records
            if r["kind"] == "span" and r["name"] == "outer"
        )
        inner = next(
            r for r in parent.records
            if r["kind"] == "span" and r["name"] == "inner"
        )
        assert outer["parent_id"] == dispatch.span_id
        # Non-root worker spans keep their (remapped) worker parent.
        assert inner["parent_id"] == outer["span_id"]

    def test_clock_rebasing_uses_epoch_delta(self):
        parent = Tracer(None)
        worker, records = _worker_records()
        skew_s = 2.5
        parent.absorb(
            records,
            parent_id=None,
            epoch_unix=parent.epoch_unix + skew_s,
        )
        for original, merged in zip(records, parent.records):
            for key in ("start_ms", "at_ms"):
                if key in original:
                    assert merged[key] == pytest.approx(
                        original[key] + skew_s * 1000.0
                    )

    def test_records_are_stamped_with_worker_and_task(self):
        parent = Tracer(None)
        _, records = _worker_records()
        parent.absorb(records, task=3)
        for record in parent.records:
            if "attributes" in record:
                assert record["attributes"]["worker"] is True
                assert record["attributes"].get("task", 3) == 3
        outer = next(
            r for r in parent.records if r.get("name") == "outer"
        )
        # setdefault: explicit worker-side attributes win over the stamp.
        assert outer["attributes"]["task_kind"] == "shard"

    def test_absorb_empty_payload_is_a_noop(self):
        parent = Tracer(None)
        parent.absorb([], parent_id=1, task=0)
        assert parent.records == []
        assert parent._next_id == 0

    def test_null_tracer_ignores_merge(self):
        state = {"metrics": {}, "trace": [{"kind": "span"}], "task": 0}
        obs.merge_worker_state(state)  # obs disabled: must not raise
        assert obs.tracer().records == []


def _scrub(snapshot: dict) -> dict:
    """Drop pool-transport accounting (pooled-path-only) and timing
    values, keeping the deterministic shape: counter values, gauges,
    and histogram sample counts."""
    def keep(name):
        return not name.startswith("parallel.")

    return {
        "counters": {
            k: v for k, v in snapshot["counters"].items() if keep(k)
        },
        "gauges": {
            k: v for k, v in snapshot["gauges"].items() if keep(k)
        },
        "histogram_counts": {
            k: v["count"]
            for k, v in snapshot["histograms"].items()
            if keep(k)
        },
    }


class TestMergeDeterminism:
    def _run(self, engine, workers, tmp_path, label):
        rng = np.random.default_rng(21)
        observed = np.arange(4)
        values = rng.normal(size=(6, 4))
        path = tmp_path / f"{label}.jsonl"
        with obs.observe(trace_path=path) as (metrics_, tracer_):
            result = infer_batch_sharded(
                engine, observed, values,
                duration=2.0, workers=workers, shards=4,
            )
            snapshot = metrics_.snapshot()
            spans = [
                r["name"] for r in tracer_.records if r["kind"] == "span"
            ]
        return result, _scrub(snapshot), spans

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_merged_obs_identical_across_worker_counts(
        self, engine, tmp_path, monkeypatch, start_method
    ):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        monkeypatch.setenv(START_METHOD_ENV, start_method)

        runs = {
            workers: self._run(
                engine, workers, tmp_path, f"{start_method}-{workers}"
            )
            for workers in (1, 2, 4)
        }
        serial_result, serial_metrics, serial_spans = runs[1]
        for workers in (2, 4):
            result, metrics_, spans = runs[workers]
            assert np.array_equal(
                serial_result.predictions, result.predictions
            ), f"workers={workers} changed bits"
            assert metrics_ == serial_metrics, (
                f"workers={workers} ({start_method}) changed merged "
                "metric values"
            )
            assert spans == serial_spans, (
                f"workers={workers} ({start_method}) changed span order"
            )

    def test_fork_and_spawn_agree(self, engine, tmp_path, monkeypatch):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork unavailable")
        outcomes = {}
        for start_method in ("fork", "spawn"):
            monkeypatch.setenv(START_METHOD_ENV, start_method)
            outcomes[start_method] = self._run(
                engine, 2, tmp_path, f"agree-{start_method}"
            )
        _, fork_metrics, fork_spans = outcomes["fork"]
        _, spawn_metrics, spawn_spans = outcomes["spawn"]
        assert fork_metrics == spawn_metrics
        assert fork_spans == spawn_spans
