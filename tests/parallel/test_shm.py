"""Tests of the zero-copy shared-memory transport (:mod:`repro.parallel.shm`).

Covers the descriptor-pickling contract (tasks ship ~100-byte handles, not
arrays), the arena's lifecycle guarantee (no ``/dev/shm`` residue on
success *or* error — including a worker raising mid-shard), transport
equivalence (shm vs legacy pickled results are bit-for-bit identical), and
the attach/detach observability counters.
"""

import pickle

import numpy as np
import pytest

from repro import obs
from repro.core.operators import CouplingOperator
from repro.parallel import (
    SharedArena,
    parallel_map,
    pickled_bytes,
    run_batch_sharded,
    shard_task_bytes,
    shm_available,
    shm_residue,
)
from repro.parallel.shm import (
    SharedArray,
    SharedOperatorMethod,
    detach_task_attachments,
    maybe_share_method,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="named shared memory unavailable"
)


def _read_shared(handle):
    """Worker task: attach a descriptor and return a private copy."""
    return handle.array.copy()


def _sum_shared(handle, start, stop):
    return float(handle.array[start:stop].sum())


def _boom_on_shard(handle, index):
    """Worker task that fails mid-shard (after attaching its view)."""
    _ = handle.array[0]
    if index == 1:
        raise RuntimeError("shard blew up")
    return index


class TestSharedArray:
    def test_round_trips_through_pickle_as_descriptor(self):
        rng = np.random.default_rng(0)
        array = rng.normal(size=(7, 5))
        with SharedArena(tag="t") as arena:
            handle = arena.share(array)
            clone = pickle.loads(pickle.dumps(handle))
            assert np.array_equal(clone.array, array)
            assert clone.name == handle.name
            detach_task_attachments()

    def test_descriptor_size_is_independent_of_array_size(self):
        with SharedArena(tag="t") as arena:
            small = pickled_bytes(arena.share(np.zeros(4)))
            big = pickled_bytes(arena.share(np.zeros((512, 512))))
        # Both are (name, shape, dtype) tuples; the payload must not grow
        # with the data — that is the entire point of the transport.
        assert big < small + 64

    def test_shared_views_are_read_only(self):
        with SharedArena(tag="t") as arena:
            handle = arena.share(np.arange(3.0))
            with pytest.raises(ValueError):
                handle.array[0] = 9.0

    def test_output_slabs_are_writable_and_zeroed(self):
        with SharedArena(tag="t") as arena:
            slab = arena.empty((4, 3))
            assert np.array_equal(slab.array, np.zeros((4, 3)))
            slab.array[2, 1] = 5.0
            assert slab.array[2, 1] == 5.0

    def test_workers_read_the_same_bits(self):
        rng = np.random.default_rng(1)
        array = rng.normal(size=(6, 4))
        with SharedArena(tag="t") as arena:
            handle = arena.share(array)
            results = parallel_map(
                _read_shared, [(handle,), (handle,)], workers=2
            )
        for result in results:
            assert np.array_equal(result, array)


class TestSharedOperator:
    @pytest.fixture()
    def operator(self):
        rng = np.random.default_rng(2)
        n = 10
        raw = rng.normal(size=(n, n)) * 0.2
        J = (raw + raw.T) / 2.0
        np.fill_diagonal(J, 0.0)
        return CouplingOperator(J, -(np.abs(J).sum(axis=1) + 1.0))

    def test_shared_method_matches_bound_method(self, operator):
        sigma = np.linspace(-1, 1, operator.n)
        with SharedArena(tag="t") as arena:
            drift = maybe_share_method(arena, operator.drift)
            assert isinstance(drift, SharedOperatorMethod)
            clone = pickle.loads(pickle.dumps(drift))
            assert np.array_equal(clone(sigma), operator.drift(sigma))
            detach_task_attachments()

    def test_drift_and_energy_share_one_descriptor(self, operator):
        with SharedArena(tag="t") as arena:
            drift = maybe_share_method(arena, operator.drift)
            energy = maybe_share_method(arena, operator.energy)
            assert drift.shared is energy.shared

    def test_non_operator_callables_pass_through(self):
        with SharedArena(tag="t") as arena:
            assert maybe_share_method(arena, _read_shared) is _read_shared
            assert maybe_share_method(arena, None) is None


class TestArenaLifecycle:
    def test_no_residue_after_clean_exit(self):
        with SharedArena(tag="t") as arena:
            arena.share(np.zeros(100))
            arena.empty((10, 10))
        assert shm_residue() == []

    def test_no_residue_when_body_raises(self):
        with pytest.raises(RuntimeError, match="mid-arena"):
            with SharedArena(tag="t") as arena:
                arena.share(np.zeros(100))
                raise RuntimeError("mid-arena failure")
        assert shm_residue() == []

    def test_close_is_idempotent(self):
        arena = SharedArena(tag="t")
        arena.share(np.zeros(5))
        arena.close()
        arena.close()
        assert shm_residue() == []

    def test_closed_arena_refuses_new_blocks(self):
        arena = SharedArena(tag="t")
        arena.close()
        with pytest.raises(RuntimeError, match="closed"):
            arena.share(np.zeros(2))

    def test_worker_raising_mid_shard_leaves_no_residue(self):
        """Satellite contract: a failed fan-out may not strand blocks."""
        with pytest.raises(RuntimeError, match="shard blew up"):
            with SharedArena(tag="t") as arena:
                handle = arena.share(np.zeros(64))
                parallel_map(
                    _boom_on_shard,
                    [(handle, 0), (handle, 1), (handle, 2)],
                    workers=2,
                )
        assert shm_residue() == []

    def test_serial_worker_raising_leaves_no_residue(self):
        with pytest.raises(RuntimeError, match="shard blew up"):
            with SharedArena(tag="t") as arena:
                handle = arena.share(np.zeros(64))
                parallel_map(_boom_on_shard, [(handle, 1)], workers=1)
        assert shm_residue() == []


class TestTransportEquivalence:
    """shm and legacy transports run the same shard functions on the same
    values; the result bits must be indistinguishable."""

    @pytest.fixture()
    def batch(self, small_operator):
        rng = np.random.default_rng(3)
        return rng.uniform(-1, 1, size=(9, small_operator.n))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_shm_matches_legacy(
        self, noisy_simulator, small_operator, batch, workers
    ):
        run = lambda shm: run_batch_sharded(  # noqa: E731
            noisy_simulator,
            small_operator.drift,
            batch,
            duration=2.0,
            energy=small_operator.energy,
            workers=workers,
            shards=3,
            root_seed=7,
            shm=shm,
        )
        legacy, shared = run(False), run(True)
        assert np.array_equal(legacy.times, shared.times)
        assert np.array_equal(legacy.states, shared.states)
        assert np.array_equal(legacy.energies, shared.energies)
        assert shm_residue() == []

    def test_task_bytes_report_both_transports(
        self, noisy_simulator, small_operator, batch
    ):
        sizes = shard_task_bytes(
            noisy_simulator,
            small_operator.drift,
            batch,
            2.0,
            shards=3,
            energy=small_operator.energy,
        )
        assert sizes["shm"] < sizes["legacy"]
        assert shm_residue() == []


class TestObsCounters:
    def test_attach_detach_balance_and_bytes(
        self, noisy_simulator, small_operator
    ):
        rng = np.random.default_rng(4)
        batch = rng.uniform(-1, 1, size=(6, small_operator.n))
        with obs.metrics_enabled() as registry:
            run_batch_sharded(
                noisy_simulator,
                small_operator.drift,
                batch,
                duration=1.0,
                workers=2,
                shards=3,
                root_seed=5,
                shm=True,
            )
            snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["parallel.shm.blocks"] >= 4
        assert counters["parallel.shm.bytes_shared"] > 0
        # Every worker-side attach must be balanced by a detach (the pool
        # closes task views in a finally); imbalance means a leaked map.
        assert counters["parallel.shm.attaches"] > 0
        assert counters["parallel.shm.attaches"] == counters[
            "parallel.shm.detaches"
        ]
        assert counters["parallel.tasks"] == 3
        assert counters["parallel.bytes_pickled"] > 0

    def test_summary_reports_transport_lines(
        self, noisy_simulator, small_operator
    ):
        from repro.obs.summary import format_metrics

        rng = np.random.default_rng(4)
        batch = rng.uniform(-1, 1, size=(4, small_operator.n))
        with obs.metrics_enabled() as registry:
            run_batch_sharded(
                noisy_simulator, small_operator.drift, batch,
                duration=1.0, workers=2, shards=2, root_seed=5, shm=True,
            )
            rendered = format_metrics(registry.snapshot())
        assert "shm transport:" in rendered
        assert "(balanced)" in rendered
