"""Tests of the process-pool primitives: sharding, seeding, obs merging."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.faults import DivergenceError
from repro.parallel import (
    DEFAULT_SHARDS,
    parallel_map,
    resolve_num_shards,
    shard_slices,
    spawn_seeds,
)


def _square(x):
    return x * x


def _draw(seed):
    return np.random.default_rng(seed).normal(size=4)


def _bump(amount):
    obs.metrics().counter("pool.test").inc(amount)
    obs.tracer().event("pool.test_event", amount=amount)
    return amount


def _boom(_x):
    raise DivergenceError(where="worker", step=3, time_ns=1.5, bad_nodes=2)


class TestShardSlices:
    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, total, num):
        """Slices tile [0, total) exactly, in order, with balanced sizes."""
        slices = shard_slices(total, num)
        covered = np.concatenate(
            [np.arange(total)[s] for s in slices]
        ) if slices else np.array([], dtype=int)
        assert np.array_equal(covered, np.arange(total))
        sizes = [len(range(*s.indices(total))) for s in slices]
        if sizes:
            assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_slices(-1, 2)
        with pytest.raises(ValueError):
            shard_slices(4, 0)

    def test_never_yields_empty_shards(self):
        for total in range(1, 20):
            for num in range(1, 8):
                for s in shard_slices(total, num):
                    assert len(range(*s.indices(total))) > 0


class TestResolveNumShards:
    def test_default_is_fixed_constant(self):
        assert resolve_num_shards(100, None) == DEFAULT_SHARDS

    def test_clamped_to_total(self):
        assert resolve_num_shards(2, None) == 2
        assert resolve_num_shards(3, 10) == 3
        assert resolve_num_shards(0, None) == 1

    def test_explicit_request_honoured(self):
        assert resolve_num_shards(100, 7) == 7


class TestSpawnSeeds:
    def test_deterministic_and_distinct(self):
        a = spawn_seeds(42, 4)
        b = spawn_seeds(42, 4)
        draws_a = [np.random.default_rng(s).random(3) for s in a]
        draws_b = [np.random.default_rng(s).random(3) for s in b]
        for x, y in zip(draws_a, draws_b):
            assert np.array_equal(x, y)
        flat = np.concatenate(draws_a)
        assert len(np.unique(flat)) == len(flat)

    def test_accepts_seed_sequence(self):
        root = np.random.SeedSequence(42)
        a = spawn_seeds(root, 2)
        b = spawn_seeds(42, 2)
        assert np.array_equal(
            np.random.default_rng(a[0]).random(3),
            np.random.default_rng(b[0]).random(3),
        )

    def test_seeds_pickle(self):
        for seed in spawn_seeds(0, 3):
            clone = pickle.loads(pickle.dumps(seed))
            assert np.array_equal(
                np.random.default_rng(seed).random(2),
                np.random.default_rng(clone).random(2),
            )

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_shard_seed_is_stable_across_shard_counts(self, root, a, b):
        """Shard ``i``'s stream is f(root, i) only — growing the shard
        count never reshuffles existing shards' randomness."""
        small, large = sorted((a, b))
        prefix = spawn_seeds(root, small)
        extended = spawn_seeds(root, large)
        for x, y in zip(prefix, extended):
            assert x.spawn_key == y.spawn_key
            assert np.array_equal(
                np.random.default_rng(x).random(2),
                np.random.default_rng(y).random(2),
            )

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_seeds_are_collision_free(self, root, num):
        seeds = spawn_seeds(root, num)
        assert len({s.spawn_key for s in seeds}) == num
        draws = {tuple(np.random.default_rng(s).random(2)) for s in seeds}
        assert len(draws) == num


class TestParallelMap:
    def test_preserves_task_order(self):
        tasks = [(i,) for i in range(10)]
        assert parallel_map(_square, tasks, workers=1) == [
            i * i for i in range(10)
        ]
        assert parallel_map(_square, tasks, workers=2) == [
            i * i for i in range(10)
        ]

    def test_worker_count_does_not_change_results(self):
        tasks = [(seed,) for seed in range(6)]
        serial = parallel_map(_draw, tasks, workers=1)
        pooled = parallel_map(_draw, tasks, workers=3)
        for a, b in zip(serial, pooled):
            assert np.array_equal(a, b)

    def test_rejects_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [(1,)], workers=0)

    def test_none_means_serial(self):
        assert parallel_map(_square, [(3,)], workers=None) == [9]

    def test_empty_tasks(self):
        assert parallel_map(_square, [], workers=2) == []

    def test_divergence_error_crosses_process_boundary(self):
        # Two tasks so the pool path (not the serial shortcut) runs.
        with pytest.raises(DivergenceError) as excinfo:
            parallel_map(_boom, [(0,), (1,)], workers=2)
        err = excinfo.value
        assert (err.where, err.step, err.time_ns, err.bad_nodes) == (
            "worker", 3, 1.5, 2,
        )


class TestObsMerge:
    def test_worker_metrics_merge_into_parent(self):
        with obs.metrics_enabled() as registry:
            parallel_map(_bump, [(3,), (4,), (5,)], workers=2)
            assert registry.counter("pool.test").value == 12

    def test_serial_path_also_counts(self):
        with obs.metrics_enabled() as registry:
            parallel_map(_bump, [(1,), (2,)], workers=1)
            assert registry.counter("pool.test").value == 3

    def test_worker_trace_records_are_tagged(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        with obs.observe(trace_path=trace_path):
            # Two tasks: a single task short-circuits to the in-process
            # path, whose records are (correctly) not worker-tagged.
            parallel_map(_bump, [(7,), (8,)], workers=2)
        import json

        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line
        ]
        events = [r for r in records if r.get("name") == "pool.test_event"]
        assert events and all(
            r["attributes"].get("worker") is True for r in events
        )

    def test_disabled_obs_stays_disabled(self):
        assert parallel_map(_bump, [(2,)], workers=2) == [2]


class TestDivergenceErrorPickling:
    def test_round_trip_preserves_fields(self):
        err = DivergenceError(where="circuit", step=9, time_ns=4.5, bad_nodes=3)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, DivergenceError)
        assert (clone.where, clone.step, clone.time_ns, clone.bad_nodes) == (
            "circuit", 9, 4.5, 3,
        )
        assert str(clone) == str(err)
