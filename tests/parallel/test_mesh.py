"""Tests of the community-partitioned mesh integrator (:mod:`repro.parallel.mesh`).

The load-bearing claims: with ``exchange_every=1`` the halo-exchange
integrator is *bit-identical* to global Euler integration through
:meth:`CircuitSimulator.run` (synchronous Jacobi — every shard reads the
full frozen previous state and CSR row slicing preserves per-row summation
order); larger exchange intervals are an explicit zero-order-hold
approximation gated behind ``approximate=True``; and, like every other
sharded path, results never depend on worker count.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.dynamics import CircuitSimulator, IntegrationConfig
from repro.core.operators import CouplingOperator
from repro.parallel import (
    anneal_mesh,
    partition_mesh,
    shm_available,
    shm_residue,
)


@pytest.fixture(scope="module")
def mesh_problem():
    """A 300-node sparse convex mesh with a few clamped nodes."""
    rng = np.random.default_rng(3)
    n = 300
    m = int(0.02 * n * n / 2)
    i = rng.integers(0, n, size=m)
    j = rng.integers(0, n, size=m)
    keep = i != j
    w = rng.normal(size=keep.sum()) * 0.2
    J = sp.csr_matrix((w, (i[keep], j[keep])), shape=(n, n))
    J = ((J + J.T) / 2).tocsr()
    h = -(np.abs(J).sum(axis=1).A1 + 1.0)
    sigma0 = rng.uniform(-1, 1, size=n)
    return {
        "J": J,
        "h": h,
        "sigma0": sigma0,
        "clamp_index": np.array([0, 5, 9]),
        "clamp_value": np.array([0.5, -0.25, 0.75]),
    }


@pytest.fixture(scope="module")
def global_reference(mesh_problem):
    """Global (unsharded) Euler integration of the same problem."""
    operator = CouplingOperator(
        mesh_problem["J"], mesh_problem["h"], backend="sparse"
    )
    simulator = CircuitSimulator(
        config=IntegrationConfig(dt=0.05, record_every=1000)
    )
    return simulator.run(
        operator.drift,
        mesh_problem["sigma0"],
        4.0,
        clamp_index=mesh_problem["clamp_index"],
        clamp_value=mesh_problem["clamp_value"],
    ).final_state


class TestPartitionMesh:
    def test_groups_partition_all_nodes(self, mesh_problem):
        part = partition_mesh(mesh_problem["J"], 4)
        assert part.num_shards == 4
        combined = np.sort(np.concatenate(part.groups))
        assert np.array_equal(combined, np.arange(mesh_problem["J"].shape[0]))
        assert part.labels.shape == (mesh_problem["J"].shape[0],)
        for index, group in enumerate(part.groups):
            assert np.all(part.labels[group] == index)

    def test_groups_are_balanced(self, mesh_problem):
        part = partition_mesh(mesh_problem["J"], 4)
        sizes = [g.size for g in part.groups]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_is_deterministic(self, mesh_problem):
        a = partition_mesh(mesh_problem["J"], 3)
        b = partition_mesh(mesh_problem["J"], 3)
        assert np.array_equal(a.labels, b.labels)

    def test_halo_sizes_and_cut_edges(self, mesh_problem):
        part = partition_mesh(mesh_problem["J"], 4)
        assert part.halo_sizes.shape == (4,)
        assert np.all(part.halo_sizes >= 0)
        assert part.cut_edges >= 0
        # A 4-way cut of a random sparse graph always severs something.
        assert part.cut_edges > 0

    def test_single_shard_has_no_halo(self, mesh_problem):
        part = partition_mesh(mesh_problem["J"], 1)
        assert part.num_shards == 1
        assert part.halo_sizes.tolist() == [0]
        assert part.cut_edges == 0

    def test_louvain_path_on_small_dense(self):
        rng = np.random.default_rng(7)
        n = 40
        raw = rng.normal(size=(n, n)) * 0.2
        J = (raw + raw.T) / 2.0
        np.fill_diagonal(J, 0.0)
        part = partition_mesh(J, 2, method="louvain")
        combined = np.sort(np.concatenate(part.groups))
        assert np.array_equal(combined, np.arange(n))


@pytest.mark.skipif(
    not shm_available(), reason="named shared memory unavailable"
)
class TestExactMode:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bitwise_identical_to_global_euler(
        self, mesh_problem, global_reference, workers
    ):
        result = anneal_mesh(
            mesh_problem["J"],
            mesh_problem["h"],
            mesh_problem["sigma0"],
            4.0,
            dt=0.05,
            clamp_index=mesh_problem["clamp_index"],
            clamp_value=mesh_problem["clamp_value"],
            shards=4,
            workers=workers,
        )
        assert np.array_equal(result.state, global_reference)
        assert shm_residue() == []

    def test_shard_count_does_not_change_bits(
        self, mesh_problem, global_reference
    ):
        for shards in (1, 2, 3, 5):
            result = anneal_mesh(
                mesh_problem["J"],
                mesh_problem["h"],
                mesh_problem["sigma0"],
                4.0,
                dt=0.05,
                clamp_index=mesh_problem["clamp_index"],
                clamp_value=mesh_problem["clamp_value"],
                shards=shards,
                workers=1,
            )
            assert np.array_equal(result.state, global_reference)

    def test_dense_input_matches_sparse(self, mesh_problem, global_reference):
        result = anneal_mesh(
            mesh_problem["J"].toarray(),
            mesh_problem["h"],
            mesh_problem["sigma0"],
            4.0,
            dt=0.05,
            clamp_index=mesh_problem["clamp_index"],
            clamp_value=mesh_problem["clamp_value"],
            shards=4,
            workers=1,
        )
        assert np.array_equal(result.state, global_reference)

    def test_result_metadata(self, mesh_problem):
        result = anneal_mesh(
            mesh_problem["J"], mesh_problem["h"], mesh_problem["sigma0"],
            2.0, dt=0.05, shards=3,
        )
        assert result.n_steps == 40
        assert result.rounds == 40
        assert result.partition.num_shards == 3
        assert np.all(np.abs(result.state) <= 1.0)


@pytest.mark.skipif(
    not shm_available(), reason="named shared memory unavailable"
)
class TestApproximateMode:
    def test_exchange_interval_requires_explicit_flag(self, mesh_problem):
        with pytest.raises(ValueError, match="approximate"):
            anneal_mesh(
                mesh_problem["J"], mesh_problem["h"],
                mesh_problem["sigma0"], 2.0, dt=0.05, exchange_every=4,
            )

    def test_worker_count_invariant_and_finite(self, mesh_problem):
        run = lambda workers: anneal_mesh(  # noqa: E731
            mesh_problem["J"],
            mesh_problem["h"],
            mesh_problem["sigma0"],
            4.0,
            dt=0.05,
            exchange_every=4,
            approximate=True,
            shards=4,
            workers=workers,
        )
        serial = run(1)
        assert np.all(np.isfinite(serial.state))
        assert serial.rounds == 20
        for workers in (2, 4):
            assert np.array_equal(run(workers).state, serial.state)
        assert shm_residue() == []

    def test_tracks_exact_mode_closely_on_convex_problem(
        self, mesh_problem, global_reference
    ):
        # Zero-order-hold halo on a diagonally dominant system: an
        # approximation, but not a wild one.
        result = anneal_mesh(
            mesh_problem["J"],
            mesh_problem["h"],
            mesh_problem["sigma0"],
            4.0,
            dt=0.05,
            clamp_index=mesh_problem["clamp_index"],
            clamp_value=mesh_problem["clamp_value"],
            exchange_every=4,
            approximate=True,
            shards=4,
        )
        assert not np.array_equal(result.state, global_reference)
        assert np.max(np.abs(result.state - global_reference)) < 0.1


@pytest.mark.skipif(
    not shm_available(), reason="named shared memory unavailable"
)
class TestHaloObservability:
    def test_halo_counters_recorded(self, mesh_problem):
        from repro import obs

        with obs.metrics_enabled() as registry:
            result = anneal_mesh(
                mesh_problem["J"], mesh_problem["h"],
                mesh_problem["sigma0"], 1.0, dt=0.05, shards=4, workers=2,
            )
            counters = registry.snapshot()["counters"]
        assert counters["parallel.halo.rounds"] == result.rounds
        expected = (
            result.rounds * int(result.partition.halo_sizes.sum()) * 8
        )
        assert counters["parallel.halo.bytes_exchanged"] == expected
