"""Tests of the power-grid cascading-failure simulator."""

import numpy as np
import pytest

from repro.datasets import community_geometric_graph, load_dataset
from repro.datasets.powergrid import PowerGrid, make_powergrid


@pytest.fixture(scope="module")
def grid():
    net = community_geometric_graph(20, num_communities=3, rng=np.random.default_rng(0))
    return PowerGrid(net, rng=np.random.default_rng(1))


class TestPowerFlow:
    def test_flows_balance_at_each_bus(self, grid):
        """Kirchhoff: net flow out of each non-slack bus equals injection."""
        injection = grid._nominal_injections(0)
        flows = grid._solve_flows(set(grid.edges), injection)
        n = grid.num_buses
        net_out = np.zeros(n)
        for (a, b), f in flows.items():
            net_out[a] += f
            net_out[b] -= f
        assert np.allclose(net_out, injection, atol=1e-8)

    def test_injections_are_balanced(self, grid):
        for t in (0, 6, 12):
            assert abs(grid._nominal_injections(t).sum()) < 1e-9

    def test_removing_line_redistributes_flow(self, grid):
        injection = grid._nominal_injections(0)
        full = grid._solve_flows(set(grid.edges), injection)
        # Drop the most-loaded line; the rest must carry more in total.
        worst = max(full, key=lambda e: abs(full[e]))
        reduced_edges = set(grid.edges) - {worst}
        reduced = grid._solve_flows(reduced_edges, injection)
        assert worst not in reduced
        assert set(reduced).issubset(reduced_edges)

    def test_capacities_cover_mean_load_flows(self, grid):
        flows = grid._solve_flows(set(grid.edges), grid._nominal_injections(6))
        for e, f in flows.items():
            assert abs(f) <= grid.capacity[e] + 1e-9


class TestSimulation:
    def test_series_shape_and_range(self, grid):
        series = grid.simulate(num_frames=40)
        assert series.shape == (40, grid.num_buses)
        assert np.all(series >= 0.0)
        assert np.all(series <= 1.0 + 1e-9)

    def test_outages_cause_dips(self, grid):
        series = grid.simulate(num_frames=80, outage_rate=1.0)
        assert series.min() < 0.9  # some load shed somewhere

    def test_no_outages_off_peak_is_fully_served(self, grid):
        """Without random outages the grid only cascades around the daily
        peak (it is deliberately under-provisioned there); off-peak frames
        are fully served."""
        series = grid.simulate(num_frames=24, outage_rate=0.0)
        off_peak = series[[0, 1, 2, 22, 23]]  # overnight frames
        assert off_peak.min() > 0.7

    def test_rejects_bad_frames(self, grid):
        with pytest.raises(ValueError, match="num_frames"):
            grid.simulate(num_frames=0)


class TestDataset:
    def test_registry_integration(self):
        ds = load_dataset("powergrid", size="small")
        assert ds.name == "powergrid"
        assert 0.0 <= ds.series.min() and ds.series.max() <= 1.0

    def test_deterministic(self):
        a = make_powergrid(num_nodes=16, num_frames=30, seed=5)
        b = make_powergrid(num_nodes=16, num_frames=30, seed=5)
        assert np.allclose(a.series, b.series)

    def test_spatial_imputation_beats_baseline(self):
        """The workload's reason to exist: blackout footprints are
        spatially coherent, so clamped annealing recovers hidden buses."""
        from repro.core import (
            NaturalAnnealingEngine,
            TrainingConfig,
            fit_precision,
        )

        ds = make_powergrid(num_nodes=32, num_frames=200, seed=7)
        train, _val, test = ds.split()
        model = fit_precision(train.series, TrainingConfig(ridge=5e-2))
        engine = NaturalAnnealingEngine(model)
        rng = np.random.default_rng(0)
        n = ds.num_nodes
        errors, baseline = [], []
        for t in range(0, test.num_frames, 3):
            observed = rng.choice(n, size=int(0.6 * n), replace=False)
            hidden = np.setdiff1d(np.arange(n), observed)
            result = engine.infer_equilibrium(observed, test.series[t][observed])
            errors.append(result.prediction - test.series[t][hidden])
            baseline.append(
                np.mean(test.series[t][observed]) - test.series[t][hidden]
            )
        est = float(np.sqrt(np.mean(np.square(np.concatenate(errors)))))
        base = float(np.sqrt(np.mean(np.square(np.concatenate(baseline)))))
        assert est < 0.6 * base
