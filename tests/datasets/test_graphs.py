"""Tests of the sensor-network graph generators."""

import networkx as nx
import numpy as np
import pytest

from repro.datasets import community_geometric_graph, normalized_adjacency


class TestCommunityGeometricGraph:
    def test_basic_shape(self):
        net = community_geometric_graph(40, num_communities=4, rng=np.random.default_rng(0))
        assert net.adjacency.shape == (40, 40)
        assert net.coordinates.shape == (40, 2)
        assert net.communities.shape == (40,)

    def test_adjacency_is_symmetric_nonnegative(self):
        net = community_geometric_graph(30, rng=np.random.default_rng(1))
        assert np.allclose(net.adjacency, net.adjacency.T)
        assert np.all(net.adjacency >= 0.0)
        assert np.all(np.diag(net.adjacency) == 0.0)

    def test_graph_is_connected(self):
        for seed in range(5):
            net = community_geometric_graph(
                50, num_communities=6, rng=np.random.default_rng(seed)
            )
            assert nx.is_connected(net.graph())

    def test_communities_are_denser_inside(self):
        net = community_geometric_graph(
            60, num_communities=4, rng=np.random.default_rng(2)
        )
        same = net.communities[:, None] == net.communities[None, :]
        np.fill_diagonal(same, False)
        intra = net.adjacency[same].mean()
        inter = net.adjacency[~same & ~np.eye(60, dtype=bool)].mean()
        assert intra > inter

    def test_coordinates_in_unit_square(self):
        net = community_geometric_graph(30, rng=np.random.default_rng(3))
        assert np.all(net.coordinates >= 0.0)
        assert np.all(net.coordinates <= 1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="two nodes"):
            community_geometric_graph(1)
        with pytest.raises(ValueError, match="num_communities"):
            community_geometric_graph(5, num_communities=10)


class TestNormalizedAdjacency:
    def test_spectral_radius_at_most_one(self):
        net = community_geometric_graph(30, rng=np.random.default_rng(4))
        A = normalized_adjacency(net.adjacency)
        eigenvalues = np.linalg.eigvalsh(A)
        assert eigenvalues[-1] <= 1.0 + 1e-9

    def test_self_loops_flag(self):
        A = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        with_loops = normalized_adjacency(A, self_loops=True)
        without = normalized_adjacency(A, self_loops=False)
        assert with_loops[0, 0] > 0
        assert without[0, 0] == 0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            normalized_adjacency(np.zeros((2, 3)))
