"""Tests of dataset containers, splits, generators, and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    ALL_DATASETS,
    EXTENSION_DATASETS,
    MULTIDIM_DATASETS,
    SCALAR_DATASETS,
    SpatioTemporalDataset,
    chronological_split,
    community_geometric_graph,
    load_dataset,
    make_air_quality,
    make_covid,
    make_stock,
    make_traffic,
    minmax_normalize,
)


class TestMinmaxNormalize:
    def test_scalar_series_range(self):
        series = np.random.default_rng(0).normal(5.0, 3.0, size=(20, 4))
        out = minmax_normalize(series)
        assert np.isclose(out.min(), 0.0)
        assert np.isclose(out.max(), 1.0)

    def test_per_feature_for_multidim(self):
        series = np.stack(
            [np.full((10, 3), 5.0), np.linspace(0, 1, 30).reshape(10, 3)], axis=2
        )
        out = minmax_normalize(series)
        assert np.allclose(out[..., 0], 0.0)  # constant feature -> zeros
        assert np.isclose(out[..., 1].max(), 1.0)


class TestChronologicalSplit:
    def test_partition_covers_series(self):
        series = np.arange(100).reshape(100, 1)
        train, val, test = chronological_split(series, 0.7, 0.1)
        assert train.shape[0] + val.shape[0] + test.shape[0] == 100
        # Strict chronology: max(train) < min(val) < min(test).
        assert train.max() < val.min() < test.min()

    def test_rejects_empty_test(self):
        with pytest.raises(ValueError, match="room"):
            chronological_split(np.zeros((10, 1)), 0.9, 0.1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="train_fraction"):
            chronological_split(np.zeros((10, 1)), 1.5, 0.0)


class TestContainer:
    def test_flat_series_for_multidim(self):
        ds = load_dataset("ca_housing", size="small")
        flat = ds.flat_series()
        assert flat.shape == (ds.num_frames, ds.num_nodes * ds.num_features)
        assert ds.is_multidimensional

    def test_split_preserves_network(self):
        ds = load_dataset("traffic", size="small")
        train, _val, test = ds.split()
        assert train.network is ds.network
        assert test.num_nodes == ds.num_nodes

    def test_rejects_mismatched_network(self):
        net = community_geometric_graph(5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="nodes"):
            SpatioTemporalDataset(name="x", series=np.zeros((10, 7)), network=net)

    def test_rejects_bad_feature_names(self):
        net = community_geometric_graph(4, rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="feature_names"):
            SpatioTemporalDataset(
                name="x",
                series=np.zeros((5, 4, 3)),
                network=net,
                feature_names=("a",),
            )


class TestGenerators:
    def test_traffic_has_daily_periodicity(self):
        ds = make_traffic(num_nodes=30, num_frames=240, frames_per_day=24, seed=0)
        signal = ds.series.mean(axis=1)
        # Autocorrelation at one day beats autocorrelation at half a day.
        def autocorr(lag):
            return np.corrcoef(signal[:-lag], signal[lag:])[0, 1]

        assert autocorr(24) > autocorr(12)

    def test_covid_is_nonnegative_and_bursty(self):
        ds = make_covid(num_nodes=20, num_frames=200, seed=1)
        assert ds.series.min() >= 0.0
        # Epidemics are spiky: high kurtosis relative to a flat series.
        flat = ds.series.reshape(-1)
        assert flat.std() > 0.05

    def test_stock_prices_are_persistent(self):
        ds = make_stock(num_nodes=20, num_frames=200, seed=2)
        signal = ds.series[:, 0]
        diffs = np.abs(np.diff(signal))
        assert diffs.mean() < signal.std()  # random walk, not white noise

    def test_air_quality_pollutants_differ(self):
        no2 = make_air_quality("no2", num_nodes=20, num_frames=100)
        o3 = make_air_quality("o3", num_nodes=20, num_frames=100)
        assert no2.series.shape == o3.series.shape
        assert not np.allclose(no2.series, o3.series)

    def test_air_quality_rejects_unknown(self):
        with pytest.raises(ValueError, match="pollutant"):
            make_air_quality("co2")

    def test_generators_are_deterministic(self):
        a = make_traffic(num_nodes=20, num_frames=50, seed=3)
        b = make_traffic(num_nodes=20, num_frames=50, seed=3)
        assert np.allclose(a.series, b.series)


class TestRegistry:
    def test_all_names_load(self):
        for name in ALL_DATASETS:
            ds = load_dataset(name, size="small")
            assert ds.num_frames > 50
            assert 0.0 <= ds.series.min() and ds.series.max() <= 1.0

    def test_scalar_and_multidim_partition(self):
        assert (
            set(SCALAR_DATASETS) | set(MULTIDIM_DATASETS) | set(EXTENSION_DATASETS)
            == set(ALL_DATASETS)
        )
        for name in SCALAR_DATASETS:
            assert not load_dataset(name, size="small").is_multidimensional
        for name in MULTIDIM_DATASETS:
            assert load_dataset(name, size="small").is_multidimensional

    def test_paper_size_is_larger(self):
        small = load_dataset("traffic", size="small")
        paper = load_dataset("traffic", size="paper")
        assert paper.num_nodes > small.num_nodes
        assert paper.num_frames > small.num_frames

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            load_dataset("traffic", size="huge")
