"""Tests of binary Ising problems."""

import numpy as np
import pytest

from repro.ising import IsingProblem, random_ising_problem


class TestIsingProblem:
    def test_energy_of_known_two_spin_system(self):
        J = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        problem = IsingProblem(J=J, h=np.zeros(2))
        aligned = np.asarray([1.0, 1.0])
        opposed = np.asarray([1.0, -1.0])
        # Ferromagnetic coupling: aligned spins have lower energy.
        assert problem.energy(aligned) < problem.energy(opposed)
        assert np.isclose(problem.energy(aligned), -2.0)
        assert np.isclose(problem.energy(opposed), 2.0)

    def test_flip_gain_matches_energy_difference(self):
        problem = random_ising_problem(8, field=True, rng=np.random.default_rng(0))
        spins = problem.random_spins(np.random.default_rng(1))
        for i in range(8):
            flipped = spins.copy()
            flipped[i] = -flipped[i]
            expected = problem.energy(flipped) - problem.energy(spins)
            assert np.isclose(problem.flip_gain(spins, i), expected)

    def test_validate_spins_rejects_non_binary(self):
        problem = random_ising_problem(4)
        with pytest.raises(ValueError, match="values"):
            problem.validate_spins(np.asarray([1.0, -1.0, 0.5, 1.0]))

    def test_validate_spins_rejects_wrong_shape(self):
        problem = random_ising_problem(4)
        with pytest.raises(ValueError, match="shape"):
            problem.validate_spins(np.ones(3))

    def test_brute_force_finds_global_minimum(self):
        problem = random_ising_problem(8, field=True, rng=np.random.default_rng(2))
        spins, energy = problem.brute_force_ground_state()
        # No single flip can improve a global optimum.
        for i in range(8):
            assert problem.flip_gain(spins, i) >= -1e-9
        assert np.isclose(problem.energy(spins), energy)

    def test_brute_force_rejects_large_systems(self):
        problem = random_ising_problem(21)
        with pytest.raises(ValueError, match="infeasible"):
            problem.brute_force_ground_state()


class TestRandomProblem:
    def test_density_controls_sparsity(self):
        dense = random_ising_problem(30, density=1.0, rng=np.random.default_rng(3))
        sparse = random_ising_problem(30, density=0.1, rng=np.random.default_rng(3))
        assert np.count_nonzero(sparse.J) < np.count_nonzero(dense.J)

    def test_field_flag(self):
        without = random_ising_problem(5, field=False)
        with_field = random_ising_problem(5, field=True)
        assert np.all(without.h == 0.0)
        assert np.any(with_field.h != 0.0)

    def test_rejects_tiny_system(self):
        with pytest.raises(ValueError, match="two spins"):
            random_ising_problem(1)

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError, match="density"):
            random_ising_problem(5, density=0.0)
