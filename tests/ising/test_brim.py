"""Tests of the BRIM circuit simulator."""

import numpy as np
import pytest

from repro.ising import BRIMConfig, BRIMMachine, random_ising_problem


class TestConfig:
    def test_rejects_weak_bistability(self):
        with pytest.raises(ValueError, match="alpha"):
            BRIMConfig(bistable_alpha=0.5)

    def test_rejects_bad_gain(self):
        with pytest.raises(ValueError, match="gain"):
            BRIMConfig(bistable_gain=0.0)

    def test_rejects_bad_flip_fraction(self):
        with pytest.raises(ValueError, match="flip_fraction"):
            BRIMConfig(flip_fraction=1.5)


class TestClampValidation:
    def test_half_specified_clamp_rejected(self):
        """Regression: clamp_index without clamp_value fed ``None`` through
        ``np.asarray`` — a NaN 0-d array and a baffling shape error
        downstream instead of a clear message up front."""
        problem = random_ising_problem(5, rng=np.random.default_rng(0))
        machine = BRIMMachine(problem)
        with pytest.raises(ValueError, match="together"):
            machine.anneal(duration=10.0, clamp_index=np.asarray([0]))
        with pytest.raises(ValueError, match="together"):
            machine.anneal(duration=10.0, clamp_value=np.asarray([0.5]))

    def test_out_of_range_clamp_rejected(self):
        problem = random_ising_problem(5, rng=np.random.default_rng(0))
        machine = BRIMMachine(problem)
        with pytest.raises(ValueError, match="out of range"):
            machine.anneal(
                duration=10.0,
                clamp_index=np.asarray([7]),
                clamp_value=np.asarray([0.5]),
            )

    def test_valid_clamp_still_honoured(self):
        problem = random_ising_problem(5, rng=np.random.default_rng(0))
        machine = BRIMMachine(problem)
        result = machine.anneal(
            duration=20.0,
            clamp_index=np.asarray([1]),
            clamp_value=np.asarray([0.5]),
        )
        assert result.spins[1] == 1.0


class TestPolarization:
    def test_free_nodes_polarize_to_rails(self):
        """The binary limitation the paper fixes: BRIM voltages end at the
        rails, never at intermediate analog values (Fig. 4 right)."""
        problem = random_ising_problem(8, rng=np.random.default_rng(0))
        machine = BRIMMachine(problem)
        result = machine.anneal(duration=80.0, seed=1)
        assert np.all(np.abs(result.trajectory.final_state) > 0.9)

    def test_clamped_nodes_stay_at_inputs(self):
        problem = random_ising_problem(6, rng=np.random.default_rng(1))
        machine = BRIMMachine(problem)
        clamp_index = np.asarray([0, 2])
        clamp_value = np.asarray([0.8, -0.5])
        result = machine.anneal(
            duration=50.0, clamp_index=clamp_index, clamp_value=clamp_value
        )
        assert np.allclose(
            result.trajectory.states[:, clamp_index], clamp_value
        )


class TestSolutionQuality:
    def test_reaches_ground_state_energy_on_small_instance(self):
        problem = random_ising_problem(10, rng=np.random.default_rng(2))
        _spins, optimum = problem.brute_force_ground_state()
        machine = BRIMMachine(problem)
        best = min(
            machine.anneal(duration=120.0, seed=s).energy for s in range(4)
        )
        # Within 10% of the brute-force optimum (energies are negative).
        assert best <= optimum * 0.9

    def test_annealing_improves_over_no_flips(self):
        problem = random_ising_problem(16, rng=np.random.default_rng(3))
        with_flips = BRIMMachine(problem, BRIMConfig(flip_fraction=0.3))
        without = BRIMMachine(problem, BRIMConfig(flip_fraction=0.0))
        e_with = min(with_flips.anneal(duration=120.0, seed=s).energy for s in range(3))
        e_without = min(without.anneal(duration=120.0, seed=s).energy for s in range(3))
        assert e_with <= e_without + 1e-9

    def test_binarize_ties_to_positive(self):
        assert np.allclose(
            BRIMMachine.binarize(np.asarray([0.0, -0.2, 0.3])), [1.0, -1.0, 1.0]
        )

    def test_result_energy_matches_spins(self):
        problem = random_ising_problem(7, rng=np.random.default_rng(4))
        result = BRIMMachine(problem).anneal(duration=40.0)
        assert np.isclose(result.energy, problem.energy(result.spins))

    def test_trajectory_time_axis_is_contiguous(self):
        problem = random_ising_problem(5, rng=np.random.default_rng(5))
        result = BRIMMachine(problem).anneal(duration=30.0)
        times = result.trajectory.times
        assert np.all(np.diff(times) > 0)
        assert np.isclose(times[-1], 30.0, atol=1.0)
