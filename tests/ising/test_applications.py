"""Tests of the binary Ising-ML applications (Ising-CF, Ising-RBM)."""

import numpy as np
import pytest

from repro.ising import IsingCollaborativeFilter, IsingRBM


def _cluster_ratings(num_users=30, num_items=16, seed=0):
    """Two taste clusters with sparse, mostly consistent ratings."""
    rng = np.random.default_rng(seed)
    taste = np.sign(rng.normal(size=(2, num_items)))
    ratings = np.zeros((num_users, num_items))
    for user in range(num_users):
        preference = taste[user % 2]
        mask = rng.random(num_items) < 0.6
        noise = np.where(rng.random(int(mask.sum())) < 0.9, 1.0, -1.0)
        ratings[user, mask] = preference[mask] * noise
    return ratings


class TestCollaborativeFilter:
    def test_couplings_capture_copreference(self):
        ratings = _cluster_ratings()
        cf = IsingCollaborativeFilter(16).fit(ratings)
        assert np.allclose(cf.J, cf.J.T)
        assert np.all(np.abs(cf.J) <= 1.0 + 1e-9)
        assert np.all(np.diag(cf.J) == 0.0)

    def test_holdout_accuracy_beats_chance(self):
        ratings = _cluster_ratings()
        cf = IsingCollaborativeFilter(16).fit(ratings)
        accuracy = cf.score(ratings[:10], seed=1)
        assert accuracy > 0.7  # chance = 0.5

    def test_predict_respects_known_ratings(self):
        ratings = _cluster_ratings()
        cf = IsingCollaborativeFilter(16).fit(ratings)
        known = {0: 1.0, 3: -1.0}
        prediction = cf.predict(known)
        assert prediction[0] == 1.0
        assert prediction[3] == -1.0
        assert np.all(np.isin(prediction, (-1.0, 1.0)))

    def test_validation(self):
        cf = IsingCollaborativeFilter(8)
        with pytest.raises(ValueError, match="known rating"):
            cf.predict({})
        with pytest.raises(ValueError, match="ratings must be"):
            cf.fit(np.full((3, 8), 0.5))
        with pytest.raises(ValueError, match="users"):
            cf.fit(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="two items"):
            IsingCollaborativeFilter(1)


class TestIsingRBM:
    @pytest.fixture(scope="class")
    def patterns_and_data(self):
        rng = np.random.default_rng(1)
        patterns = np.asarray(
            [[1, 1, 1, 1, 0, 0, 0, 0], [0, 0, 0, 0, 1, 1, 1, 1]], dtype=float
        )
        data = patterns[rng.integers(0, 2, size=80)]
        flips = rng.random(data.shape) < 0.05
        return patterns, np.abs(data - flips)

    @pytest.fixture(scope="class")
    def trained(self, patterns_and_data):
        _patterns, data = patterns_and_data
        return IsingRBM(8, 4, seed=0).fit(data, epochs=25, lr=0.1)

    def test_reconstruction_recovers_patterns(self, patterns_and_data, trained):
        patterns, _data = patterns_and_data
        for pattern in patterns:
            reconstruction = trained.reconstruct(pattern)
            assert np.mean(np.abs(reconstruction - pattern)) < 0.25

    def test_trained_patterns_have_lower_free_energy(
        self, patterns_and_data, trained
    ):
        patterns, _data = patterns_and_data
        alien = np.asarray([1, 0, 1, 0, 1, 0, 1, 0], dtype=float)
        for pattern in patterns:
            assert trained.free_energy(pattern) < trained.free_energy(alien)

    def test_ising_mapping_energy_ordering(self, patterns_and_data, trained):
        """The Ising image of the RBM must rank configurations like the
        RBM energy does."""
        patterns, _data = patterns_and_data
        problem = trained.to_ising()
        ph = trained.hidden_probability(patterns[0])
        h_units = (ph > 0.5).astype(float)
        good_units = np.concatenate([patterns[0], h_units])
        bad_units = 1.0 - good_units
        good_spins = 2.0 * good_units - 1.0
        bad_spins = 2.0 * bad_units - 1.0
        assert problem.energy(good_spins) < problem.energy(bad_spins)

    def test_ising_mapping_is_exact_up_to_constant(self):
        """The Ising image reproduces the RBM energy exactly, shifted by a
        configuration-independent constant."""
        rng = np.random.default_rng(9)
        rbm = IsingRBM(5, 3, seed=4)
        rbm.W = rng.normal(size=(5, 3))
        rbm.b = rng.normal(size=5)
        rbm.c = rng.normal(size=3)
        problem = rbm.to_ising()

        def rbm_energy(v, h):
            return float(-v @ rbm.W @ h - rbm.b @ v - rbm.c @ h)

        offsets = []
        for _ in range(20):
            v = (rng.random(5) < 0.5).astype(float)
            h = (rng.random(3) < 0.5).astype(float)
            spins = 2.0 * np.concatenate([v, h]) - 1.0
            offsets.append(problem.energy(spins) - rbm_energy(v, h))
        assert np.std(offsets) < 1e-10

    def test_ising_negative_phase_trains(self, patterns_and_data):
        _patterns, data = patterns_and_data
        rbm = IsingRBM(8, 3, seed=2).fit(
            data[:20], epochs=2, lr=0.1, negative_phase="ising",
            annealer_sweeps=10,
        )
        assert np.isfinite(rbm.W).all()
        assert np.linalg.norm(rbm.W) > 0.0

    def test_conditionals_are_probabilities(self, trained):
        rng = np.random.default_rng(3)
        v = (rng.random(8) < 0.5).astype(float)
        ph = trained.hidden_probability(v)
        pv = trained.visible_probability((ph > 0.5).astype(float))
        assert np.all((0 <= ph) & (ph <= 1))
        assert np.all((0 <= pv) & (pv <= 1))

    def test_validation(self):
        with pytest.raises(ValueError, match="layer sizes"):
            IsingRBM(0, 3)
        rbm = IsingRBM(4, 2)
        with pytest.raises(ValueError, match="data must be"):
            rbm.fit(np.zeros((5, 7)))
        with pytest.raises(ValueError, match="negative_phase"):
            rbm.fit(np.zeros((5, 4)), negative_phase="quantum")
