"""Tests of the digital annealing baselines."""

import numpy as np
import pytest

from repro.ising import GreedyDescent, SimulatedAnnealer, random_ising_problem


class TestSimulatedAnnealer:
    def test_finds_ground_state_on_small_instance(self):
        problem = random_ising_problem(10, rng=np.random.default_rng(0))
        _spins, optimum = problem.brute_force_ground_state()
        result = SimulatedAnnealer(sweeps=300, seed=1).solve(problem)
        assert result.energy <= optimum + 1e-9 or np.isclose(result.energy, optimum)

    def test_history_is_monotone_best_so_far(self):
        problem = random_ising_problem(12, rng=np.random.default_rng(1))
        result = SimulatedAnnealer(sweeps=50, seed=2).solve(problem)
        assert np.all(np.diff(result.energy_history) <= 1e-12)

    def test_energy_matches_spins(self):
        problem = random_ising_problem(9, field=True, rng=np.random.default_rng(2))
        result = SimulatedAnnealer(sweeps=40, seed=3).solve(problem)
        assert np.isclose(result.energy, problem.energy(result.spins))

    def test_warm_start_respected(self):
        problem = random_ising_problem(6, rng=np.random.default_rng(3))
        spins0 = problem.random_spins(np.random.default_rng(4))
        result = SimulatedAnnealer(sweeps=1, t_start=1e-6, t_end=1e-6, seed=5).solve(
            problem, spins0=spins0
        )
        # Near-zero temperature from a given start only improves energy.
        assert result.energy <= problem.energy(spins0) + 1e-9

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="sweeps"):
            SimulatedAnnealer(sweeps=0)
        with pytest.raises(ValueError, match="temperatures"):
            SimulatedAnnealer(t_start=0.0)


class TestGreedyDescent:
    def test_terminates_at_local_minimum(self):
        problem = random_ising_problem(12, rng=np.random.default_rng(5))
        result = GreedyDescent(seed=6).solve(problem)
        for i in range(12):
            assert problem.flip_gain(result.spins, i) >= -1e-9

    def test_energy_history_strictly_improving_until_stall(self):
        problem = random_ising_problem(10, rng=np.random.default_rng(6))
        result = GreedyDescent(seed=7).solve(problem)
        history = result.energy_history
        assert np.all(np.diff(history) <= 1e-12)

    def test_sa_at_least_matches_greedy_on_average(self):
        rng = np.random.default_rng(8)
        sa_wins = 0
        total = 5
        for k in range(total):
            problem = random_ising_problem(14, rng=rng)
            sa = SimulatedAnnealer(sweeps=150, seed=k).solve(problem)
            greedy = GreedyDescent(seed=k).solve(problem)
            if sa.energy <= greedy.energy + 1e-9:
                sa_wins += 1
        assert sa_wins >= 3


class TestParallelTempering:
    def test_finds_ground_state_on_small_instance(self):
        from repro.ising import ParallelTempering

        problem = random_ising_problem(10, rng=np.random.default_rng(10))
        _spins, optimum = problem.brute_force_ground_state()
        result = ParallelTempering(sweeps=120, seed=0).solve(problem)
        assert result.energy <= optimum + 1e-9

    def test_beats_or_matches_single_chain_on_frustrated_instances(self):
        from repro.ising import ParallelTempering

        rng = np.random.default_rng(11)
        wins = 0
        total = 4
        for k in range(total):
            problem = random_ising_problem(18, rng=rng)
            pt = ParallelTempering(sweeps=60, seed=k).solve(problem)
            sa = SimulatedAnnealer(sweeps=60, seed=k).solve(problem)
            if pt.energy <= sa.energy + 1e-9:
                wins += 1
        assert wins >= 2

    def test_history_is_best_so_far(self):
        from repro.ising import ParallelTempering

        problem = random_ising_problem(12, rng=np.random.default_rng(12))
        result = ParallelTempering(sweeps=40, seed=1).solve(problem)
        assert np.all(np.diff(result.energy_history) <= 1e-12)

    def test_energy_matches_spins(self):
        from repro.ising import ParallelTempering

        problem = random_ising_problem(9, field=True, rng=np.random.default_rng(13))
        result = ParallelTempering(sweeps=30, seed=2).solve(problem)
        assert np.isclose(result.energy, problem.energy(result.spins))

    def test_validation(self):
        from repro.ising import ParallelTempering

        with pytest.raises(ValueError, match="replicas"):
            ParallelTempering(num_replicas=1)
        with pytest.raises(ValueError, match="t_min"):
            ParallelTempering(t_min=2.0, t_max=1.0)
        with pytest.raises(ValueError, match="swap_every"):
            ParallelTempering(swap_every=0)
