"""Tests of the MIS / vertex-cover / coloring Ising mappings."""

from itertools import combinations

import networkx as nx
import numpy as np
import pytest

from repro.ising import (
    ParallelTempering,
    SimulatedAnnealer,
    coloring_conflicts,
    coloring_to_ising,
    decode_coloring,
    decode_mis,
    is_independent_set,
    is_vertex_cover,
    mis_to_ising,
    solve_mis,
    vertex_cover_from_mis,
)


def brute_force_mis_size(graph: nx.Graph) -> int:
    for k in range(graph.number_of_nodes(), 0, -1):
        for subset in combinations(graph.nodes(), k):
            if is_independent_set(graph, set(subset)):
                return k
    return 0


class TestMIS:
    def test_energy_orders_configurations_correctly(self):
        """A larger independent set must have lower Ising energy than a
        smaller one, and conflicts must cost more than they gain."""
        g = nx.path_graph(4)  # MIS = {0, 2} or {1, 3}, size 2
        problem = mis_to_ising(g)

        def energy_of(selection):
            spins = -np.ones(4)
            for v in selection:
                spins[v] = 1.0
            return problem.energy(spins)

        assert energy_of({0, 2}) < energy_of({0})
        assert energy_of({0}) < energy_of(set())
        assert energy_of({0, 2}) < energy_of({0, 1})  # conflict penalized

    def test_solve_finds_optimum_on_small_graphs(self):
        for seed in (1, 2, 3):
            g = nx.gnp_random_graph(11, 0.35, seed=seed)
            found = solve_mis(g, sweeps=200, restarts=3, seed=seed)
            assert is_independent_set(g, found)
            assert len(found) >= brute_force_mis_size(g) - 1

    def test_decode_repairs_conflicts(self):
        g = nx.complete_graph(4)  # MIS size 1
        all_selected = np.ones(4)
        decoded = decode_mis(g, all_selected)
        assert is_independent_set(g, decoded)
        assert len(decoded) == 1

    def test_penalty_validation(self):
        with pytest.raises(ValueError, match="penalty"):
            mis_to_ising(nx.path_graph(3), penalty=1.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="vertices"):
            mis_to_ising(nx.Graph())

    def test_parallel_tempering_also_solves(self):
        g = nx.gnp_random_graph(10, 0.4, seed=7)
        problem = mis_to_ising(g)
        result = ParallelTempering(sweeps=80, seed=0).solve(problem)
        decoded = decode_mis(g, result.spins)
        assert is_independent_set(g, decoded)
        assert len(decoded) >= brute_force_mis_size(g) - 1


class TestVertexCover:
    def test_complement_duality(self):
        g = nx.gnp_random_graph(12, 0.3, seed=5)
        independent = solve_mis(g, sweeps=150, restarts=2, seed=0)
        cover = vertex_cover_from_mis(g, independent)
        assert is_vertex_cover(g, cover)
        assert len(cover) + len(independent) == g.number_of_nodes()

    def test_rejects_non_independent_input(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError, match="independent"):
            vertex_cover_from_mis(g, {0, 1})

    def test_is_vertex_cover_semantics(self):
        g = nx.path_graph(3)  # edges (0,1), (1,2)
        assert is_vertex_cover(g, {1})
        assert not is_vertex_cover(g, {0})


class TestColoring:
    def test_even_cycle_is_two_colorable(self):
        g = nx.cycle_graph(6)
        problem = coloring_to_ising(g, 2)
        result = SimulatedAnnealer(sweeps=300, seed=0).solve(problem)
        coloring = decode_coloring(g, result.spins, 2)
        assert coloring_conflicts(g, coloring) == 0

    def test_petersen_graph_three_coloring(self):
        g = nx.petersen_graph()
        problem = coloring_to_ising(g, 3)
        best = min(
            coloring_conflicts(
                g,
                decode_coloring(
                    g,
                    SimulatedAnnealer(sweeps=400, seed=s).solve(problem).spins,
                    3,
                ),
            )
            for s in range(4)
        )
        assert best == 0

    def test_proper_coloring_has_lower_energy_than_conflicting(self):
        g = nx.cycle_graph(4)
        problem = coloring_to_ising(g, 2)

        def spins_for(coloring):
            spins = -np.ones(8)
            for v, c in coloring.items():
                spins[v * 2 + c] = 1.0
            return spins

        proper = {0: 0, 1: 1, 2: 0, 3: 1}
        clash = {0: 0, 1: 0, 2: 0, 3: 0}
        assert problem.energy(spins_for(proper)) < problem.energy(
            spins_for(clash)
        )

    def test_decode_shape_validation(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError, match="shape"):
            decode_coloring(g, np.zeros(5), 2)

    def test_color_count_validation(self):
        with pytest.raises(ValueError, match="colors"):
            coloring_to_ising(nx.path_graph(3), 1)

    def test_conflicts_counting(self):
        g = nx.path_graph(3)
        assert coloring_conflicts(g, {0: 0, 1: 0, 2: 0}) == 2
        assert coloring_conflicts(g, {0: 0, 1: 1, 2: 0}) == 0
