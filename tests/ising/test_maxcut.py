"""Tests of the max-cut workload."""

import networkx as nx
import numpy as np
import pytest

from repro.ising import (
    MaxCutInstance,
    cut_value,
    exact_maxcut,
    greedy_maxcut,
    maxcut_to_ising,
    solve_maxcut_on_brim,
)


def _triangle():
    w = np.zeros((3, 3))
    w[0, 1] = w[1, 0] = 1.0
    w[1, 2] = w[2, 1] = 1.0
    w[0, 2] = w[2, 0] = 1.0
    return MaxCutInstance(weights=w)


class TestInstance:
    def test_rejects_asymmetric(self):
        w = np.zeros((2, 2))
        w[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            MaxCutInstance(weights=w)

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="loops"):
            MaxCutInstance(weights=np.eye(2))

    def test_from_graph_preserves_weights(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=2.5)
        g.add_edge(1, 2)
        inst = MaxCutInstance.from_graph(g)
        assert np.isclose(inst.weights[0, 1], 2.5)
        assert np.isclose(inst.weights[1, 2], 1.0)


class TestCutValue:
    def test_triangle_cut_values(self):
        inst = _triangle()
        # Any bipartition of a triangle cuts exactly 2 edges.
        assert np.isclose(cut_value(inst, np.asarray([1.0, 1.0, -1.0])), 2.0)
        assert np.isclose(cut_value(inst, np.asarray([1.0, 1.0, 1.0])), 0.0)

    def test_shape_validated(self):
        with pytest.raises(ValueError, match="shape"):
            cut_value(_triangle(), np.ones(4))


class TestEnergyCutDuality:
    def test_lower_energy_means_larger_cut(self):
        rng = np.random.default_rng(0)
        g = nx.gnp_random_graph(8, 0.5, seed=1)
        inst = MaxCutInstance.from_graph(g)
        problem = maxcut_to_ising(inst)
        spins_a = rng.choice([-1.0, 1.0], size=8)
        spins_b = rng.choice([-1.0, 1.0], size=8)
        cut_a, cut_b = cut_value(inst, spins_a), cut_value(inst, spins_b)
        e_a, e_b = problem.energy(spins_a), problem.energy(spins_b)
        if cut_a > cut_b:
            assert e_a < e_b
        elif cut_b > cut_a:
            assert e_b < e_a


class TestSolvers:
    def test_exact_beats_or_matches_greedy(self):
        g = nx.gnp_random_graph(10, 0.5, seed=2)
        inst = MaxCutInstance.from_graph(g)
        _s, optimum = exact_maxcut(inst)
        _g, greedy = greedy_maxcut(inst, rng=np.random.default_rng(3))
        assert optimum >= greedy

    def test_greedy_is_one_flip_optimal(self):
        g = nx.gnp_random_graph(12, 0.4, seed=4)
        inst = MaxCutInstance.from_graph(g)
        spins, value = greedy_maxcut(inst, rng=np.random.default_rng(5))
        for i in range(12):
            flipped = spins.copy()
            flipped[i] = -flipped[i]
            assert cut_value(inst, flipped) <= value + 1e-9

    def test_brim_reaches_near_optimal_cut(self):
        g = nx.gnp_random_graph(10, 0.5, seed=6)
        inst = MaxCutInstance.from_graph(g)
        _s, optimum = exact_maxcut(inst)
        _b, brim_cut = solve_maxcut_on_brim(
            inst, duration=200.0, restarts=6, seed=0
        )
        assert brim_cut >= 0.9 * optimum

    def test_exact_rejects_large(self):
        with pytest.raises(ValueError, match="infeasible"):
            exact_maxcut(MaxCutInstance(weights=np.zeros((25, 25))))
