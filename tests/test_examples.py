"""Smoke tests: the example scripts must run end to end.

Only the faster examples run here (the full hardware studies take minutes);
each is executed in a subprocess exactly as a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "ising_ml_lineage.py",
    "powergrid_state_estimation.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "RMSE" in result.stdout or "accuracy" in result.stdout


def test_all_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 5
    for script in scripts:
        source = (EXAMPLES_DIR / script).read_text()
        assert source.startswith('"""'), f"{script} lacks a docstring"
        assert "def main()" in source, f"{script} lacks a main()"
