"""Property-based tests (hypothesis) of the core invariants.

These encode the physics and algebra the whole system rests on:
energy descent, fixed-point/stability duality, pruning and masking
invariants, metric axioms, and autograd linearity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    RealValuedHamiltonian,
    convexity_margin,
    enforce_convexity,
    mae,
    rmse,
    symmetrize_coupling,
)
from repro.decompose import coupling_density, prune_to_density
from repro.ising import IsingProblem
from repro.nn import Tensor, ops

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def coupling_matrices(max_n=8):
    return st.integers(min_value=2, max_value=max_n).flatmap(
        lambda n: arrays(np.float64, (n, n), elements=finite_floats)
    )


@st.composite
def convex_systems(draw, max_n=8):
    """A random strictly convex (J, h) pair."""
    raw = draw(coupling_matrices(max_n))
    J = symmetrize_coupling(raw)
    h = -(np.abs(J).sum(axis=1) + 1.0)
    return J, h


class TestHamiltonianProperties:
    @given(convex_systems())
    @settings(max_examples=30, deadline=None)
    def test_gradient_flow_decreases_energy(self, system):
        J, h = system
        ham = RealValuedHamiltonian(J, h)
        rng = np.random.default_rng(0)
        sigma = rng.normal(size=J.shape[0])
        # One explicit-Euler step along -grad with a conservative step.
        lipschitz = 2.0 * (np.abs(J).sum() + np.abs(h).max() + 1.0)
        step = 0.5 / lipschitz
        sigma_next = sigma - step * ham.gradient(sigma)
        assert ham.energy(sigma_next) <= ham.energy(sigma) + 1e-9

    @given(convex_systems())
    @settings(max_examples=30, deadline=None)
    def test_fixed_point_is_global_conditional_minimum(self, system):
        J, h = system
        ham = RealValuedHamiltonian(J, h)
        n = J.shape[0]
        clamp_index = np.asarray([0])
        clamp_value = np.asarray([0.5])
        star = ham.fixed_point(clamp_index, clamp_value)
        rng = np.random.default_rng(1)
        for _ in range(5):
            other = star.copy()
            other[1:] += rng.normal(0, 0.5, size=n - 1)
            assert ham.energy(other) >= ham.energy(star) - 1e-9

    @given(coupling_matrices())
    @settings(max_examples=30, deadline=None)
    def test_symmetrize_is_idempotent(self, raw):
        once = symmetrize_coupling(raw)
        twice = symmetrize_coupling(once)
        assert np.allclose(once, twice)

    @given(coupling_matrices(), st.floats(min_value=0.01, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_enforce_convexity_postcondition(self, raw, margin):
        J = symmetrize_coupling(raw)
        h = -np.ones(J.shape[0]) * 0.01
        repaired = enforce_convexity(J, h, margin=margin)
        assert convexity_margin(J, repaired) >= margin - 1e-6


class TestIsingProperties:
    @given(coupling_matrices(max_n=7), st.integers(min_value=0, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_flip_gain_consistency(self, raw, index):
        J = symmetrize_coupling(raw)
        n = J.shape[0]
        index = index % n
        problem = IsingProblem(J=J, h=np.zeros(n))
        spins = problem.random_spins(np.random.default_rng(2))
        flipped = spins.copy()
        flipped[index] = -flipped[index]
        delta = problem.energy(flipped) - problem.energy(spins)
        assert np.isclose(problem.flip_gain(spins, index), delta, atol=1e-8)

    @given(coupling_matrices(max_n=6))
    @settings(max_examples=20, deadline=None)
    def test_energy_invariant_under_global_flip(self, raw):
        """With no external field, H(s) == H(-s): the Z2 symmetry."""
        J = symmetrize_coupling(raw)
        problem = IsingProblem(J=J, h=np.zeros(J.shape[0]))
        spins = problem.random_spins(np.random.default_rng(3))
        assert np.isclose(problem.energy(spins), problem.energy(-spins))


class TestPruningProperties:
    @given(coupling_matrices(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_prune_density_bound(self, raw, density):
        J = symmetrize_coupling(raw)
        pruned = prune_to_density(J, density)
        assert coupling_density(pruned) <= density + 1e-9
        assert np.allclose(pruned, pruned.T)

    @given(
        coupling_matrices(),
        st.floats(min_value=0.05, max_value=0.45),
        st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_prune_supports_nest(self, raw, low, high):
        J = symmetrize_coupling(raw)
        small = prune_to_density(J, low) != 0
        large = prune_to_density(J, high) != 0
        assert np.all(large[small])

    @given(coupling_matrices(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_prune_is_idempotent(self, raw, density):
        J = symmetrize_coupling(raw)
        once = prune_to_density(J, density)
        twice = prune_to_density(once, density)
        assert np.allclose(once, twice)


class TestMetricProperties:
    vectors = arrays(np.float64, 6, elements=finite_floats)

    @given(vectors, vectors)
    @settings(max_examples=50, deadline=None)
    def test_rmse_symmetry_and_nonnegativity(self, a, b):
        assert rmse(a, b) >= 0.0
        assert np.isclose(rmse(a, b), rmse(b, a))

    @given(vectors, vectors)
    @settings(max_examples=50, deadline=None)
    def test_mae_bounded_by_rmse(self, a, b):
        assert mae(a, b) <= rmse(a, b) + 1e-9

    @given(vectors)
    @settings(max_examples=30, deadline=None)
    def test_identity_of_indiscernibles(self, a):
        assert rmse(a, a) == 0.0
        assert mae(a, a) == 0.0

    @given(vectors, vectors, finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_rmse_translation_invariance(self, a, b, shift):
        assert np.isclose(rmse(a + shift, b + shift), rmse(a, b), atol=1e-8)


class TestAutogradProperties:
    matrices = arrays(np.float64, (3, 4), elements=finite_floats)

    @given(matrices, matrices)
    @settings(max_examples=30, deadline=None)
    def test_gradient_of_sum_is_ones(self, a, _b):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, 1.0)

    @given(matrices, matrices)
    @settings(max_examples=30, deadline=None)
    def test_linearity_of_gradients(self, a, b):
        """grad of (f + g) equals grad f + grad g."""
        x1 = Tensor(a, requires_grad=True)
        (x1 * b).sum().backward()
        g_prod = x1.grad.copy()

        x2 = Tensor(a, requires_grad=True)
        (x2 * 2.0).sum().backward()
        g_scale = x2.grad.copy()

        x3 = Tensor(a, requires_grad=True)
        ((x3 * b) + (x3 * 2.0)).sum().backward()
        assert np.allclose(x3.grad, g_prod + g_scale)

    @given(matrices)
    @settings(max_examples=30, deadline=None)
    def test_softmax_partition_of_unity(self, a):
        out = ops.softmax(Tensor(a), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)
        assert np.all(out.data >= 0.0)


class TestAnchoredPruningProperties:
    @given(
        coupling_matrices(),
        st.floats(min_value=0.1, max_value=0.6),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_anchored_prune_keeps_density_and_symmetry(self, raw, density, degree):
        J = symmetrize_coupling(raw)
        n = J.shape[0]
        anchors = np.arange(n // 2)
        pruned = prune_to_density(
            J, density, anchor_index=anchors, anchor_degree=degree
        )
        assert coupling_density(pruned) <= density + 1e-9
        assert np.allclose(pruned, pruned.T)
        assert np.all(np.diag(pruned) == 0.0)

    @given(coupling_matrices(max_n=8), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_anchor_rows_get_their_degree_when_budget_allows(self, raw, degree):
        J = symmetrize_coupling(raw)
        n = J.shape[0]
        anchors = np.asarray([0])
        density = 0.9  # generous budget
        pruned = prune_to_density(
            J, density, anchor_index=anchors, anchor_degree=degree
        )
        non_anchor = np.arange(1, n)
        available = int(np.count_nonzero(J[0, non_anchor]))
        kept = int(np.count_nonzero(pruned[0, non_anchor]))
        # The guarantee holds "budget permitting": the global pair budget
        # (floor of density * total pairs) caps the forced keeps.
        budget = int(np.floor(density * (n * (n - 1) // 2)))
        assert kept >= min(degree, available, budget)

    @given(coupling_matrices(), st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_values_never_invented(self, raw, density):
        J = symmetrize_coupling(raw)
        pruned = prune_to_density(
            J, density, anchor_index=np.asarray([0]), anchor_degree=2
        )
        nz = pruned != 0
        assert np.allclose(pruned[nz], J[nz])


class TestMaskedRefitProperties:
    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_concord_respects_support_and_convexity(self, seed):
        from repro.core import fit_precision_masked

        rng = np.random.default_rng(seed)
        n = 8
        A = rng.normal(size=(n, n)) * 0.4
        cov = A @ A.T + np.eye(n)
        samples = rng.multivariate_normal(np.zeros(n), cov, size=300)
        mask = rng.random((n, n)) < 0.4
        mask = mask | mask.T
        np.fill_diagonal(mask, False)
        model = fit_precision_masked(samples, mask)
        assert np.all(model.J[~mask] == 0.0)
        assert np.allclose(model.J, model.J.T)
        assert model.convexity_margin() > 0
        assert np.all(model.h < 0)


class TestCouplingOperatorProperties:
    """Permutation equivariance: relabeling nodes commutes with the
    operator's drift and leaves its energy invariant, for both storage
    backends (the dense/CSR hot paths must agree on the algebra)."""

    @given(convex_systems(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_drift_is_permutation_equivariant(self, system, perm_seed):
        from scipy import sparse as sp

        from repro.core.operators import CouplingOperator

        J, h = system
        n = J.shape[0]
        perm = np.random.default_rng(perm_seed).permutation(n)
        sigma = np.random.default_rng(perm_seed + 1).normal(size=n)
        for backend, wrap in (("dense", lambda m: m),
                              ("sparse", sp.csr_matrix)):
            op = CouplingOperator(wrap(J), h, backend=backend)
            op_perm = CouplingOperator(
                wrap(J[np.ix_(perm, perm)]), h[perm], backend=backend
            )
            assert np.allclose(
                op_perm.drift(sigma[perm]), op.drift(sigma)[perm],
                atol=1e-12,
            )

    @given(convex_systems(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_energy_is_permutation_invariant(self, system, perm_seed):
        from scipy import sparse as sp

        from repro.core.operators import CouplingOperator

        J, h = system
        n = J.shape[0]
        perm = np.random.default_rng(perm_seed).permutation(n)
        batch = np.random.default_rng(perm_seed + 1).normal(size=(3, n))
        for backend, wrap in (("dense", lambda m: m),
                              ("sparse", sp.csr_matrix)):
            op = CouplingOperator(wrap(J), h, backend=backend)
            op_perm = CouplingOperator(
                wrap(J[np.ix_(perm, perm)]), h[perm], backend=backend
            )
            assert np.allclose(
                op_perm.energy(batch[:, perm]), op.energy(batch),
                atol=1e-10,
            )

    @given(convex_systems())
    @settings(max_examples=20, deadline=None)
    def test_backends_agree_bitwise_on_energy_sign_structure(self, system):
        from scipy import sparse as sp

        from repro.core.operators import CouplingOperator

        J, h = system
        sigma = np.random.default_rng(0).normal(size=J.shape[0])
        dense = CouplingOperator(J, h, backend="dense")
        sparse = CouplingOperator(sp.csr_matrix(J), h, backend="sparse")
        assert np.allclose(dense.drift(sigma), sparse.drift(sigma), atol=1e-12)
        assert np.isclose(dense.energy(sigma), sparse.energy(sigma))


class TestAnnealingEnergyDescent:
    @given(convex_systems(max_n=6), st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_noise_free_annealing_never_increases_energy(self, system, seed):
        """The gradient-flow core of the paper: with zero injected noise
        and a conservative step, the recorded Hamiltonian trajectory of a
        quadratic (convex) anneal is monotonically non-increasing."""
        from repro.core.dynamics import CircuitSimulator, IntegrationConfig
        from repro.core.operators import CouplingOperator

        J, h = system
        op = CouplingOperator(J, h, backend="dense")
        # dt below 1 / L for the drift's Lipschitz constant keeps explicit
        # Euler inside the descent regime.
        lipschitz = float(np.abs(J).sum() + np.abs(h).max() + 1.0)
        simulator = CircuitSimulator(
            config=IntegrationConfig(
                dt=min(0.1, 0.5 / lipschitz), record_every=1,
                node_noise_std=0.0,
            )
        )
        sigma0 = np.random.default_rng(seed).uniform(-0.9, 0.9, size=J.shape[0])
        trajectory = simulator.run(
            op.drift, sigma0, duration=2.0, energy=op.energy
        )
        energies = np.asarray(trajectory.energies)
        assert np.all(np.diff(energies) <= 1e-9)


class TestFaultZeroRateIdentity:
    @given(st.integers(min_value=2, max_value=30),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_zero_rate_samples_the_null_scenario(self, n, seed):
        from repro.faults import NO_FAULTS, FaultModel

        model = FaultModel.uniform(0.0, seed=seed)
        assert not model.enabled
        assert model.sample(n) is NO_FAULTS

    @given(coupling_matrices(max_n=8))
    @settings(max_examples=30, deadline=None)
    def test_null_scenario_is_exact_identity(self, raw):
        from repro.faults import NO_FAULTS

        J = symmetrize_coupling(raw)
        # Identity, not a copy: the hot paths rely on `is` short-circuits.
        assert NO_FAULTS.apply_coupling(J) is J
        assert NO_FAULTS.stuck_values(1.0).size == 0
        assert NO_FAULTS.sync_skip_mask(16) is None
        assert NO_FAULTS.summary() == {"enabled": False}
        assert not NO_FAULTS.enabled
