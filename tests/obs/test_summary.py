"""Tests of trace aggregation and the ``obs summarize`` rendering."""

import pytest

from repro import obs
from repro.obs import format_metrics, format_summary, summarize_trace
from repro.obs.summary import summarize_records


def _recorded_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    with obs.observe(trace_path=path) as (registry, tracer):
        with tracer.span("circuit.run_batch", batch=4, steps=100) as span:
            span.set("settled_fraction", 0.75)
            tracer.event("circuit.energy_probe", step=50, energy_mean=-2.0)
        with tracer.span("circuit.run_batch", batch=2, steps=100):
            pass
        registry.counter("engine.cache_hits").inc(9)
        registry.counter("engine.cache_misses").inc(1)
        registry.histogram("engine.solve_ms").observe(0.5)
    return path


class TestSummarizeRecords:
    def test_groups_spans_by_name(self, tmp_path):
        summary = summarize_trace(_recorded_trace(tmp_path))
        spans = summary["spans"]["circuit.run_batch"]
        assert spans["count"] == 2
        assert spans["total_ms"] >= spans["max_ms"]
        assert spans["mean_ms"] * 2 == pytest.approx(spans["total_ms"])

    def test_aggregates_numeric_attributes(self, tmp_path):
        summary = summarize_trace(_recorded_trace(tmp_path))
        steps = summary["span_attributes"]["circuit.run_batch.steps"]
        assert steps == {
            "count": 2, "sum": 200.0, "mean": 100.0, "min": 100.0,
            "max": 100.0,
        }
        batch = summary["span_attributes"]["circuit.run_batch.batch"]
        assert batch["sum"] == 6.0

    def test_collects_events_and_metrics(self, tmp_path):
        summary = summarize_trace(_recorded_trace(tmp_path))
        assert summary["events"] == {"circuit.energy_probe": 1}
        probe = summary["event_attributes"]["circuit.energy_probe.energy_mean"]
        assert probe["mean"] == -2.0
        assert summary["metrics"]["counters"]["engine.cache_hits"] == 9

    def test_non_numeric_attributes_ignored(self):
        summary = summarize_records(
            [
                {
                    "kind": "span",
                    "name": "s",
                    "duration_ms": 1.0,
                    "attributes": {"mode": "spatial", "n": 8, "flag": True},
                }
            ]
        )
        assert set(summary["span_attributes"]) == {"s.n"}

    def test_empty_records(self):
        summary = summarize_records([])
        assert summary["spans"] == {}
        assert summary["metrics"] is None


class TestFormatting:
    def test_format_summary_mentions_key_observables(self, tmp_path):
        text = format_summary(summarize_trace(_recorded_trace(tmp_path)))
        assert "circuit.run_batch" in text
        assert "settled_fraction" in text
        assert "steps" in text
        assert "LU-cache hit rate: 90.0%" in text

    def test_format_summary_without_spans(self):
        text = format_summary(summarize_records([]))
        assert "(no spans recorded)" in text

    def test_format_metrics_empty_snapshot(self):
        assert format_metrics({"counters": {}, "gauges": {}, "histograms": {}}) == ""

    def test_format_metrics_hit_rate_with_only_misses(self):
        text = format_metrics(
            {"counters": {"engine.cache_misses": 3}, "gauges": {}, "histograms": {}}
        )
        assert "LU-cache hit rate: 0.0%" in text

    def test_format_metrics_annealing_path_lines(self):
        text = format_metrics(
            {
                "counters": {
                    "circuit.steps": 100,
                    "circuit.samples": 8,
                    "circuit.member_steps": 400,
                    "circuit.frozen_members": 8,
                    "circuit.early_exits": 1,
                    "circuit.rejected_steps": 25,
                },
                "gauges": {},
                "histograms": {},
            }
        )
        assert "400 member-steps executed (50.0% of the step budget saved)" in text
        assert "early exit: 8 members frozen, 1 runs exited before budget" in text
        assert "adaptive steps: 80.0% accepted (25 rejected)" in text

    def test_format_metrics_fixed_runs_show_no_adaptive_lines(self):
        # The fixed-step path records only steps/samples; none of the
        # derived annealing-path lines may appear for it.
        text = format_metrics(
            {
                "counters": {"circuit.steps": 100, "circuit.samples": 8},
                "gauges": {},
                "histograms": {},
            }
        )
        assert "member-steps" not in text
        assert "adaptive steps" not in text
