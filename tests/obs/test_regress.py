"""Bench-regression detection tests (``repro obs diff`` backend)."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    DEFAULT_MIN_BAND,
    compare_bench,
    format_diff,
    load_bench,
    result_key,
)


def _stats(samples):
    ordered = sorted(samples)
    return {
        "best_ms": ordered[0],
        "median_ms": ordered[len(ordered) // 2],
        "p90_ms": ordered[-1],
        "samples_ms": list(samples),
    }


def _bench(samples, *, name="engine_infer", n=96):
    return {
        "benchmark": "core",
        "results": [
            {
                "name": name,
                "n": n,
                "batch": 8,
                "optimized_stats": _stats(samples),
            }
        ],
    }


class TestResultKey:
    def test_key_includes_name_and_identifying_fields(self):
        row = {"name": "engine_infer", "n": 96, "batch": 8, "extra": "x"}
        assert result_key(row) == "engine_infer n=96 batch=8"

    def test_rows_with_different_parameters_never_match(self):
        a = {"name": "engine_infer", "n": 96}
        b = {"name": "engine_infer", "n": 128}
        assert result_key(a) != result_key(b)


class TestCompareBench:
    def test_synthetic_2x_slowdown_is_flagged(self):
        base = _bench([10.0, 10.2, 10.1])
        cand = _bench([20.0, 20.4, 20.2])
        report = compare_bench(base, cand)
        assert report["regressions"] == 1
        (row,) = report["rows"]
        assert row["status"] == "regression"
        assert row["ratio"] == pytest.approx(2.0, rel=0.05)
        assert "REGRESSION" in format_diff(report)

    def test_same_commit_jitter_stays_silent(self):
        base = _bench([10.0, 10.3, 10.1])
        cand = _bench([10.4, 10.2, 10.6])  # ~5% jitter, under the band
        report = compare_bench(base, cand)
        assert report["regressions"] == 0
        assert report["improvements"] == 0
        assert "REGRESSION" not in format_diff(report)

    def test_band_widens_with_sample_spread(self):
        # 40% spread in the baseline repeats: a 1.3x median shift with an
        # overlapping best sample must not flag.
        base = _bench([10.0, 12.0, 14.0])
        cand = _bench([13.0, 15.6, 18.2])
        report = compare_bench(base, cand)
        (row,) = report["rows"]
        assert row["band"] > DEFAULT_MIN_BAND
        assert row["status"] == "ok"

    def test_improvement_detected_symmetrically(self):
        base = _bench([20.0, 20.2, 20.4])
        cand = _bench([10.0, 10.1, 10.2])
        report = compare_bench(base, cand)
        assert report["improvements"] == 1
        assert report["regressions"] == 0

    def test_regression_needs_both_median_and_best_to_shift(self):
        base = _bench([10.0, 10.1, 10.2])
        cand = {
            "results": [
                {
                    "name": "engine_infer",
                    "n": 96,
                    "batch": 8,
                    "optimized_stats": {
                        "best_ms": 10.1,  # best overlaps the baseline
                        "median_ms": 15.0,
                        "samples_ms": [10.1, 15.0, 15.2],
                    },
                }
            ]
        }
        report = compare_bench(_bench([10.0, 10.1, 10.2]), cand)
        del base
        (row,) = report["rows"]
        assert row["status"] == "ok"

    def test_both_arms_of_comparison_rows_are_checked(self):
        row = {
            "name": "solver",
            "n": 64,
            "baseline_stats": _stats([30.0, 30.3, 30.1]),
            "optimized_stats": _stats([10.0, 10.1, 10.2]),
        }
        base = {"results": [copy.deepcopy(row)]}
        cand = {"results": [copy.deepcopy(row)]}
        cand["results"][0]["baseline_stats"] = _stats([70.0, 70.3, 70.1])
        report = compare_bench(base, cand)
        assert report["compared"] == 2
        assert report["regressions"] == 1
        flagged = next(r for r in report["rows"] if r["status"] != "ok")
        assert "[baseline]" in flagged["key"]

    def test_missing_and_new_rows_are_reported_not_fatal(self):
        base = _bench([10.0, 10.1, 10.2])
        cand = _bench([10.0, 10.1, 10.2], name="other_bench")
        report = compare_bench(base, cand)
        assert report["compared"] == 0
        assert report["only_in_baseline"] == ["engine_infer n=96 batch=8"]
        assert report["only_in_candidate"] == ["other_bench n=96 batch=8"]
        rendered = format_diff(report)
        assert "only in baseline" in rendered
        assert "only in candidate" in rendered

    def test_min_band_floor_is_tunable(self):
        base = _bench([10.0, 10.05, 10.1])
        cand = _bench([11.5, 11.55, 11.6])  # 15% shift
        assert compare_bench(base, cand)["regressions"] == 1
        assert (
            compare_bench(base, cand, min_band=0.25)["regressions"] == 0
        )


class TestScalingRows:
    def _sweep(self, bytes_shm, reduction):
        return {
            "results": [
                {
                    "name": "parallel_scaling_curve",
                    "rows": [
                        {
                            "n": 4096,
                            "shards": 8,
                            "workers": 4,
                            "wall_s": 1.0,
                            "task_pickled_bytes_shm": bytes_shm,
                            "pickle_reduction": reduction,
                        }
                    ],
                }
            ]
        }

    def test_single_sample_timings_are_skipped(self):
        report = compare_bench(self._sweep(4000, 250.0), self._sweep(4000, 250.0))
        assert any("single-sample" in key for key in report["skipped"])
        assert report["regressions"] == 0

    def test_payload_bloat_is_a_regression(self):
        report = compare_bench(self._sweep(4000, 250.0), self._sweep(8000, 250.0))
        assert report["regressions"] == 1
        flagged = next(r for r in report["rows"] if r["status"] != "ok")
        assert "task_pickled_bytes_shm" in flagged["key"]

    def test_pickle_reduction_regresses_downward(self):
        report = compare_bench(self._sweep(4000, 250.0), self._sweep(4000, 120.0))
        assert report["regressions"] == 1

    def test_small_payload_drift_is_tolerated(self):
        report = compare_bench(self._sweep(4000, 250.0), self._sweep(4100, 245.0))
        assert report["regressions"] == 0


_REPO_ROOT = Path(__file__).resolve().parents[2]


class TestLoadBench:
    def test_loads_committed_baselines(self):
        for name in ("BENCH_core.json", "BENCH_nn.json"):
            document = load_bench(_REPO_ROOT / name)
            assert isinstance(document["results"], list)

    def test_self_diff_of_committed_baseline_is_silent(self):
        document = load_bench(_REPO_ROOT / "BENCH_core.json")
        report = compare_bench(document, document)
        assert report["regressions"] == 0
        assert report["compared"] > 0

    def test_rejects_non_bench_documents(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="results"):
            load_bench(bogus)


class TestFormatDiff:
    def test_verbose_includes_quiet_rows(self):
        base = _bench([10.0, 10.1, 10.2])
        report = compare_bench(base, base)
        assert "engine_infer" not in format_diff(report)
        assert "engine_infer" in format_diff(report, verbose=True)

    def test_summary_counts(self):
        base = _bench([10.0, 10.1, 10.2])
        cand = _bench([25.0, 25.2, 25.4])
        rendered = format_diff(compare_bench(base, cand))
        assert "1 timings compared: 1 regression(s), 0 improvement(s)" in rendered
