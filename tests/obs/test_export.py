"""OpenMetrics / JSON snapshot export tests."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    latest_metrics,
    sanitize_metric_name,
    snapshot_document,
    to_openmetrics,
)


@pytest.fixture
def snapshot():
    return {
        "counters": {"engine.cache_hits": 6, "circuit.runs": 4},
        "gauges": {"engine.batch_size": 16},
        "histograms": {
            "engine.solve_ms": {
                "count": 8,
                "mean": 1.25,
                "p50": 1.2,
                "p90": 1.8,
                "p99": 1.95,
                "max": 2.0,
            },
            "engine.factorize_ms": {"count": 0},
        },
    }


class TestSanitizeMetricName:
    def test_dots_become_underscores_with_prefix(self):
        assert (
            sanitize_metric_name("engine.cache_hits")
            == "repro_engine_cache_hits"
        )

    def test_invalid_characters_are_replaced(self):
        assert sanitize_metric_name("a-b c/d", prefix="") == "a_b_c_d"

    def test_leading_digit_is_guarded(self):
        assert sanitize_metric_name("2pc.commits", prefix="") == "_2pc_commits"

    def test_colons_survive(self):
        assert sanitize_metric_name("ns:metric", prefix="") == "ns:metric"


class TestLatestMetrics:
    def test_picks_the_last_snapshot(self):
        records = [
            {"kind": "metrics", "snapshot": {"counters": {"x": 1}}},
            {"kind": "span", "name": "s", "span_id": 1, "parent_id": None},
            {"kind": "metrics", "snapshot": {"counters": {"x": 2}}},
        ]
        assert latest_metrics(records) == {"counters": {"x": 2}}

    def test_none_when_no_snapshot_embedded(self):
        assert latest_metrics([{"kind": "span"}]) is None


class TestToOpenmetrics:
    def test_counters_become_total_families(self, snapshot):
        body = to_openmetrics(snapshot)
        assert "# TYPE repro_engine_cache_hits_total counter" in body
        assert "repro_engine_cache_hits_total 6" in body
        assert "repro_circuit_runs_total 4" in body

    def test_gauges_map_directly(self, snapshot):
        body = to_openmetrics(snapshot)
        assert "# TYPE repro_engine_batch_size gauge" in body
        assert "repro_engine_batch_size 16" in body

    def test_histograms_become_summaries_with_quantiles(self, snapshot):
        body = to_openmetrics(snapshot)
        assert "# TYPE repro_engine_solve_ms summary" in body
        assert 'repro_engine_solve_ms{quantile="0.5"} 1.2' in body
        assert 'repro_engine_solve_ms{quantile="0.9"} 1.8' in body
        assert 'repro_engine_solve_ms{quantile="0.99"} 1.95' in body
        assert "repro_engine_solve_ms_count 8" in body
        # _sum reconstructed as mean * count = 1.25 * 8
        assert "repro_engine_solve_ms_sum 10" in body

    def test_p999_label_only_when_present(self, snapshot):
        assert 'quantile="0.999"' not in to_openmetrics(snapshot)
        snapshot["histograms"]["engine.solve_ms"]["p999"] = 1.99
        body = to_openmetrics(snapshot)
        assert 'repro_engine_solve_ms{quantile="0.999"} 1.99' in body

    def test_empty_histograms_are_skipped(self, snapshot):
        assert "factorize" not in to_openmetrics(snapshot)

    def test_body_is_eof_terminated(self, snapshot):
        assert to_openmetrics(snapshot).endswith("# EOF\n")
        assert to_openmetrics({}) == "# EOF\n"

    def test_custom_prefix(self, snapshot):
        body = to_openmetrics(snapshot, prefix="dsgl")
        assert "dsgl_engine_cache_hits_total 6" in body
        assert "repro_" not in body


class TestSnapshotDocument:
    def test_schema_tag_and_round_trip(self, snapshot):
        document = json.loads(snapshot_document(snapshot, meta={"run": "a"}))
        assert document["schema"] == SNAPSHOT_SCHEMA
        assert document["meta"] == {"run": "a"}
        assert document["snapshot"] == snapshot

    def test_deterministic_rendering(self, snapshot):
        assert snapshot_document(snapshot) == snapshot_document(snapshot)
        assert snapshot_document(snapshot).endswith("\n")
