"""Timeline reconstruction tests: stitching health and breakdowns."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import NaturalAnnealingEngine, TrainingConfig, fit_precision
from repro.core.dynamics import IntegrationConfig
from repro.obs.timeline import analyze_records, format_timeline
from repro.parallel.engine import infer_batch_sharded


def _span(name, span_id, parent_id, start, duration, **attributes):
    return {
        "kind": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_ms": start,
        "duration_ms": duration,
        "attributes": attributes,
    }


@pytest.fixture
def fanout_records():
    """A synthetic stitched trace: one map over four worker tasks."""
    records = [
        _span("session", 1, None, 0.0, 100.0),
        _span("parallel.map", 2, 1, 5.0, 90.0, tasks=4, workers=2),
    ]
    walls = [20.0, 40.0, 22.0, 21.0]
    for index, wall in enumerate(walls):
        records.append(
            _span(
                "parallel.task",
                3 + index,
                2,
                6.0 + index,
                wall,
                worker=True,
                task=index,
            )
        )
    return records


class TestAnalyzeRecords:
    def test_reconstructs_tree_with_no_orphans(self, fanout_records):
        analysis = analyze_records(fanout_records)
        assert analysis["orphans"] == []
        assert len(analysis["roots"]) == 1
        assert analysis["extent_ms"] == pytest.approx(100.0)

    def test_detects_orphan_spans(self, fanout_records):
        fanout_records.append(
            _span("lost.child", 99, 42, 1.0, 5.0)
        )
        analysis = analyze_records(fanout_records)
        assert [s["name"] for s in analysis["orphans"]] == ["lost.child"]
        rendered = format_timeline(analysis)
        assert "ORPHAN SPANS: 1" in rendered

    def test_per_shard_wall_time_and_skew(self, fanout_records):
        analysis = analyze_records(fanout_records)
        assert [row["task"] for row in analysis["shards"]] == [0, 1, 2, 3]
        assert analysis["shards"][1]["wall_ms"] == pytest.approx(40.0)
        # slowest 40 / median of (20, 40, 22, 21) = 21.5 -> ~1.86x
        assert analysis["skew"] == pytest.approx(40.0 / 21.5)

    def test_pool_idle_breakdown(self, fanout_records):
        analysis = analyze_records(fanout_records)
        (fanout,) = analysis["maps"]
        assert fanout["tasks"] == 4
        assert fanout["busy_ms"] == pytest.approx(103.0)
        assert fanout["longest_task_ms"] == pytest.approx(40.0)
        assert fanout["dispatch_overhead_ms"] == pytest.approx(50.0)
        # duration 90 x 2 workers - 103 busy
        assert fanout["idle_ms"] == pytest.approx(77.0)

    def test_critical_path_descends_heaviest_children(self, fanout_records):
        analysis = analyze_records(fanout_records)
        assert [s["name"] for s in analysis["critical_path"]] == [
            "session",
            "parallel.map",
            "parallel.task",
        ]

    def test_halo_wait_from_mesh_rounds(self):
        records = [
            _span("mesh.anneal", 1, None, 0.0, 50.0),
            _span("mesh.round", 2, 1, 0.0, 30.0, round=0, steps=1),
            _span("parallel.map", 3, 2, 1.0, 25.0, tasks=2, workers=1),
            _span("mesh.round", 4, 1, 30.0, 20.0, round=1, steps=1),
            _span("parallel.map", 5, 4, 31.0, 18.0, tasks=2, workers=1),
        ]
        analysis = analyze_records(records)
        assert len(analysis["mesh_rounds"]) == 2
        assert analysis["halo_wait_ms"] == pytest.approx(5.0 + 2.0)
        rendered = format_timeline(analysis)
        assert "halo exchange wait" in rendered

    def test_tolerates_missing_timing_fields(self):
        records = [
            {"kind": "span", "name": "bare", "span_id": 1, "parent_id": None},
            {"kind": "event", "name": "e", "span_id": 1, "at_ms": 1.0},
        ]
        analysis = analyze_records(records)
        assert analysis["orphans"] == []
        assert "bare" in format_timeline(analysis)

    def test_empty_trace_renders_placeholder(self):
        assert format_timeline(analyze_records([])) == "(no spans recorded)"


class TestFormatTimeline:
    def test_reports_stitching_and_breakdown_sections(self, fanout_records):
        rendered = format_timeline(analyze_records(fanout_records), width=40)
        assert "no orphan spans" in rendered
        assert "straggler skew" in rendered
        assert "critical path" in rendered
        assert "shard" in rendered
        assert "idle ms" in rendered
        assert "worker process" in rendered


class TestEndToEndStitching:
    """Acceptance: a --workers 4 sharded run stitches with no orphans."""

    @pytest.fixture(scope="class")
    def sharded_trace(self, tmp_path_factory):
        rng = np.random.default_rng(7)
        A = rng.normal(size=(10, 10)) * 0.4
        samples = rng.multivariate_normal(
            np.zeros(10), A @ A.T + np.eye(10), size=300
        )
        model = fit_precision(samples, TrainingConfig(ridge=1e-2))
        engine = NaturalAnnealingEngine(
            model,
            config=IntegrationConfig(
                dt=0.05, record_every=8, node_noise_std=0.02
            ),
            seed=3,
        )
        path = tmp_path_factory.mktemp("timeline") / "trace.jsonl"
        observed = np.array([0, 1, 2])
        values = rng.normal(size=(8, 3))
        with obs.observe(trace_path=path) as (_metrics, tracer_):
            with tracer_.span("session"):
                infer_batch_sharded(
                    engine, observed, values,
                    duration=2.0, workers=4, shards=4,
                )
        return obs.read_trace(path)

    def test_worker_spans_stitch_with_no_orphans(self, sharded_trace):
        analysis = analyze_records(self_records := sharded_trace)
        assert analysis["orphans"] == []
        worker_spans = [
            r
            for r in self_records
            if r.get("kind") == "span"
            and (r.get("attributes") or {}).get("worker")
        ]
        assert worker_spans, "no worker spans were absorbed"
        by_id = {
            r["span_id"]
            for r in self_records
            if r.get("kind") == "span"
        }
        assert all(s["parent_id"] in by_id for s in worker_spans)

    def test_reports_per_shard_wall_time_and_idle(self, sharded_trace):
        analysis = analyze_records(sharded_trace)
        assert [row["task"] for row in analysis["shards"]] == [0, 1, 2, 3]
        assert all(row["wall_ms"] > 0 for row in analysis["shards"])
        assert analysis["maps"] and analysis["maps"][0]["workers"] == 4
        rendered = format_timeline(analysis)
        assert "no orphan spans" in rendered
        assert "straggler skew" in rendered
        assert "idle ms" in rendered

    def test_worker_timestamps_rebased_into_parent_extent(self, sharded_trace):
        analysis = analyze_records(sharded_trace)
        session = next(
            s for s in analysis["spans"] if s["name"] == "session"
        )
        session_end = session["start_ms"] + session["duration_ms"]
        for row in analysis["spans"]:
            if (row.get("attributes") or {}).get("worker"):
                # Rebased worker clocks land inside the parent's session
                # window (wall-clock skew tolerance: a few ms).
                assert row["start_ms"] > session["start_ms"] - 5.0
                assert row["start_ms"] < session_end + 5.0
