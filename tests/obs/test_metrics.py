"""Tests of the metrics registry: instruments, summaries, null path."""

import pytest

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
)


class TestCounter:
    def test_counts_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("steps")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(3)
        registry.counter("x").inc(4)
        assert registry.counter("x").value == 7

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_holds_last_value(self):
        gauge = MetricsRegistry().gauge("fraction")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value == 0.75

    def test_unset_gauge_omitted_from_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("never_set")
        assert registry.snapshot()["gauges"] == {}


class TestHistogram:
    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 10
        assert summary["mean"] == pytest.approx(5.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["p50"] == pytest.approx(5.5)
        assert summary["p90"] == pytest.approx(9.1)
        # Type-7 linear interpolation, same as numpy's default.
        assert summary["p99"] == pytest.approx(9.91)

    def test_empty_summary(self):
        assert MetricsRegistry().histogram("empty").summary() == {"count": 0}

    def test_single_sample_quantiles(self):
        histogram = MetricsRegistry().histogram("one")
        histogram.observe(3.0)
        summary = histogram.summary()
        assert summary["p50"] == 3.0
        assert summary["p90"] == 3.0
        assert summary["p99"] == 3.0

    def test_p999_only_with_enough_samples(self):
        import numpy as np

        small = MetricsRegistry().histogram("small")
        for value in range(999):
            small.observe(float(value))
        assert "p999" not in small.summary()

        large = MetricsRegistry().histogram("large")
        values = [float(value) for value in range(1000)]
        for value in values:
            large.observe(value)
        summary = large.summary()
        assert summary["p999"] == pytest.approx(
            float(np.quantile(values, 0.999))
        )
        assert summary["p99"] == pytest.approx(
            float(np.quantile(values, 0.99))
        )

    def test_quantiles_match_numpy_linear_interpolation(self):
        import numpy as np

        values = [0.3, 7.1, 2.2, 9.9, 4.4, 1.1, 8.8, 5.0]
        histogram = MetricsRegistry().histogram("ref")
        for value in values:
            histogram.observe(value)
        summary = histogram.summary()
        for key, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            assert summary[key] == pytest.approx(
                float(np.quantile(values, q))
            )


class TestTimer:
    def test_records_elapsed_ms(self):
        registry = MetricsRegistry()
        with registry.timer("block_ms"):
            pass
        summary = registry.histogram("block_ms").summary()
        assert summary["count"] == 1
        assert 0.0 <= summary["mean"] < 1000.0

    def test_nested_timers_do_not_clobber(self):
        registry = MetricsRegistry()
        with registry.timer("outer_ms"):
            with registry.timer("outer_ms"):
                pass
        assert registry.histogram("outer_ms").summary()["count"] == 2


class TestRegistry:
    def test_snapshot_is_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 0.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        json.dumps(snapshot)  # must round-trip through JSON

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("x").inc(5)
        NULL_METRICS.gauge("y").set(1.0)
        NULL_METRICS.histogram("z").observe(2.0)
        with NULL_METRICS.timer("t"):
            pass
        assert NULL_METRICS.counter("x").value == 0
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_shared_singletons(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
