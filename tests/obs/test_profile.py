"""Sampling-profiler tests: backends, span attribution, formats."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.profile import (
    DEFAULT_INTERVAL,
    NULL_PROFILER,
    SamplingProfiler,
    format_profile,
    read_profile,
)


def _busy_wait(seconds: float) -> int:
    """Spin the CPU (the signal backend only interrupts running code)."""
    deadline = time.perf_counter() + seconds
    count = 0
    while time.perf_counter() < deadline:
        count += 1
    return count


class TestSamplingProfiler:
    @pytest.mark.parametrize("backend", ["signal", "thread"])
    def test_collects_samples_from_busy_code(self, backend):
        profiler = SamplingProfiler(interval=0.001, backend=backend)
        profiler.start()
        try:
            _busy_wait(0.15)
        finally:
            profiler.stop()
        assert profiler.sample_count > 0
        assert profiler.backend == backend
        leaves = {stack[-1] for stack in profiler.samples}
        assert any("_busy_wait" in leaf for leaf in leaves)

    def test_auto_backend_picks_signal_on_main_thread(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        profiler.stop()
        assert profiler.backend == "signal"

    def test_thread_backend_works_off_main_thread(self):
        import threading

        outcome = {}

        def run():
            profiler = SamplingProfiler(interval=0.001)
            profiler.start()
            _busy_wait(0.1)
            profiler.stop()
            outcome["backend"] = profiler.backend
            outcome["count"] = profiler.sample_count

        worker = threading.Thread(target=run)
        worker.start()
        worker.join()
        assert outcome["backend"] == "thread"
        assert outcome["count"] > 0

    def test_span_attribution_roots_each_sample(self):
        names = iter(["phase.a"] * 10_000)
        profiler = SamplingProfiler(
            interval=0.001,
            backend="thread",
            span_source=lambda: next(names, "phase.a"),
        )
        profiler.start()
        _busy_wait(0.1)
        profiler.stop()
        assert profiler.sample_count > 0
        assert all(
            stack[0] == "span:phase.a" for stack in profiler.samples
        )

    def test_no_span_falls_back_to_placeholder_root(self):
        profiler = SamplingProfiler(interval=0.001, backend="thread")
        profiler.start()
        _busy_wait(0.05)
        profiler.stop()
        assert all(
            stack[0] == "span:(no span)" for stack in profiler.samples
        )

    def test_collapsed_round_trips_through_read_profile(self, tmp_path):
        profiler = SamplingProfiler(interval=0.001, backend="thread")
        profiler.start()
        _busy_wait(0.1)
        profiler.stop()
        path = profiler.write(tmp_path / "prof.txt")
        assert read_profile(path) == profiler.samples
        for line in path.read_text().strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert ";" in stack or stack  # frame;frame count
            assert count.isdigit()

    def test_stop_is_idempotent_and_restores_handler(self):
        import signal

        before = signal.getsignal(signal.SIGALRM)
        profiler = SamplingProfiler(interval=0.01, backend="signal")
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert signal.getsignal(signal.SIGALRM) == before

    def test_double_start_raises(self):
        profiler = SamplingProfiler(interval=0.01, backend="thread")
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                profiler.start()
        finally:
            profiler.stop()

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(interval=0.0)
        with pytest.raises(ValueError, match="timer"):
            SamplingProfiler(timer="gpu")
        with pytest.raises(ValueError, match="backend"):
            SamplingProfiler(backend="ptrace")
        assert DEFAULT_INTERVAL == pytest.approx(0.005)


class TestNullProfiler:
    def test_is_inert(self, tmp_path):
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.start() is NULL_PROFILER
        NULL_PROFILER.stop()
        assert NULL_PROFILER.collapsed() == ""
        assert NULL_PROFILER.sample_count == 0
        target = tmp_path / "never.txt"
        NULL_PROFILER.write(target)
        assert not target.exists()

    def test_default_process_profiler_is_null(self):
        assert obs.profiler() is NULL_PROFILER


class TestObserveIntegration:
    def test_observe_profile_path_writes_collapsed_file(self, tmp_path):
        path = tmp_path / "prof.txt"
        with obs.observe(
            trace_path=None, profile_path=path, profile_interval=0.001
        ) as (metrics_, _tracer):
            assert obs.profiler().enabled
            assert obs.enabled()
            _busy_wait(0.1)
        assert obs.profiler() is NULL_PROFILER
        assert path.exists()
        samples = read_profile(path)
        assert sum(samples.values()) > 0

    def test_profiler_samples_carry_open_span_names(self, tmp_path):
        path = tmp_path / "prof.txt"
        with obs.observe(
            trace_path=tmp_path / "t.jsonl",
            profile_path=path,
            profile_interval=0.001,
        ):
            with obs.tracer().span("hot.phase"):
                _busy_wait(0.1)
        samples = read_profile(path)
        roots = {stack[0] for stack in samples}
        assert "span:hot.phase" in roots


class TestFormatProfile:
    def test_reports_hottest_frames_and_stacks(self):
        samples = {
            ("span:a", "m:f", "m:g"): 7,
            ("span:a", "m:f", "m:h"): 2,
            ("span:b", "m:f"): 1,
        }
        rendered = format_profile(samples)
        assert "10 samples across 3 distinct stacks" in rendered
        assert "m:g" in rendered
        assert "span:a;m:f;m:g" in rendered
        assert "70.0%" in rendered

    def test_empty_profile(self):
        assert format_profile({}) == "(no samples recorded)"

    def test_read_profile_rejects_malformed_lines(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("frame;frame notanumber\n")
        with pytest.raises(ValueError, match="line 1"):
            read_profile(bad)
