"""End-to-end telemetry: the instrumented stack feeds the obs sinks."""

import numpy as np
import pytest

from repro import obs
from repro.core import IntegrationConfig, NaturalAnnealingEngine
from repro.gnn import GNNTrainConfig, GNNTrainer, GraphWaveNet, default_adjacency
from repro.hardware import ScalableDSPU
from repro.obs import read_trace


def _span_records(records, name):
    return [
        r for r in records if r["kind"] == "span" and r["name"] == name
    ]


class TestCircuitTelemetry:
    def test_run_batch_counts_steps_and_settling(self, trained_model, tmp_path):
        path = tmp_path / "trace.jsonl"
        engine = NaturalAnnealingEngine(trained_model)
        observed = np.array([0, 1, 2])
        values = np.zeros((4, 3))
        with obs.observe(trace_path=path) as (registry, _tracer):
            engine.infer_batch(observed, values, duration=20.0)
            snapshot = registry.snapshot()

        assert snapshot["counters"]["circuit.runs"] == 1
        assert snapshot["counters"]["circuit.samples"] == 4
        # duration 20 ns at the default dt=0.1 ns is 200 steps.
        assert snapshot["counters"]["circuit.steps"] == 200
        assert 0.0 <= snapshot["gauges"]["circuit.settled_fraction"] <= 1.0
        assert snapshot["histograms"]["circuit.run_batch_ms"]["count"] == 1

        records = read_trace(path)
        (run_span,) = _span_records(records, "circuit.run_batch")
        assert run_span["attributes"]["steps"] == 200
        assert run_span["attributes"]["duration_ns"] == 20.0
        assert "settled_fraction" in run_span["attributes"]
        (infer_span,) = _span_records(records, "engine.infer_batch")
        assert infer_span["attributes"]["batch"] == 4
        assert run_span["parent_id"] == infer_span["span_id"]

    def test_energy_probe_events_descend(self, trained_model, tmp_path):
        path = tmp_path / "trace.jsonl"
        engine = NaturalAnnealingEngine(
            trained_model, config=IntegrationConfig(energy_probe_every=50)
        )
        with obs.observe(trace_path=path):
            engine.infer_batch(np.array([0, 1]), np.zeros((2, 2)), duration=20.0)

        probes = [
            r for r in read_trace(path)
            if r["kind"] == "event" and r["name"] == "circuit.energy_probe"
        ]
        # 200 steps probed every 50, plus the guaranteed final-step probe
        # coinciding with step 200: steps 50, 100, 150, 200.
        assert [p["attributes"]["step"] for p in probes] == [50, 100, 150, 200]
        energies = [p["attributes"]["energy_mean"] for p in probes]
        assert energies[-1] <= energies[0]

    def test_probe_disabled_without_tracing(self, trained_model):
        engine = NaturalAnnealingEngine(
            trained_model, config=IntegrationConfig(energy_probe_every=50)
        )
        with obs.metrics_enabled():
            result = engine.infer_batch(
                np.array([0, 1]), np.zeros((2, 2)), duration=5.0
            )
        assert result.trajectory is not None
        assert obs.tracer().records == []


class TestEngineCacheTelemetry:
    def test_hits_and_misses_counted(self, trained_model):
        engine = NaturalAnnealingEngine(trained_model)
        observed = np.array([0, 1, 2])
        with obs.metrics_enabled() as registry:
            for _ in range(4):
                engine.infer_equilibrium(observed, np.zeros(3))
            snapshot = registry.snapshot()
        assert engine.cache_misses == 1
        assert engine.cache_hits == 3
        assert engine.cache_hit_rate() == pytest.approx(0.75)
        assert snapshot["counters"]["engine.cache_misses"] == 1
        assert snapshot["counters"]["engine.cache_hits"] == 3
        assert snapshot["histograms"]["engine.factorize_ms"]["count"] == 1
        assert snapshot["histograms"]["engine.solve_ms"]["count"] == 4

    def test_distinct_observed_sets_miss_separately(self, trained_model):
        engine = NaturalAnnealingEngine(trained_model)
        engine.infer_equilibrium(np.array([0, 1]), np.zeros(2))
        engine.infer_equilibrium(np.array([2, 3]), np.zeros(2))
        engine.infer_equilibrium(np.array([0, 1]), np.zeros(2))
        assert engine.cache_misses == 2
        assert engine.cache_hits == 1

    def test_batch_inference_shares_one_factorization(self, trained_model):
        engine = NaturalAnnealingEngine(trained_model)
        observed = np.array([0, 1, 2])
        engine.infer_equilibrium_batch(observed, np.zeros((16, 3)))
        engine.infer_equilibrium_batch(observed, np.zeros((16, 3)))
        assert engine.cache_misses == 1
        assert engine.cache_hits == 1

    def test_clear_cache_resets_counters(self, trained_model):
        engine = NaturalAnnealingEngine(trained_model)
        engine.infer_equilibrium(np.array([0]), np.zeros(1))
        engine.infer_equilibrium(np.array([0]), np.zeros(1))
        engine.clear_cache()
        assert engine.cache_hits == 0
        assert engine.cache_misses == 0
        assert engine.cache_hit_rate() == 0.0
        engine.infer_equilibrium(np.array([0]), np.zeros(1))
        assert engine.cache_misses == 1


class TestDSPUTelemetry:
    def test_anneal_span_and_counters(
        self, decomposed_traffic, traffic_setup, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        dspu = ScalableDSPU(decomposed_traffic)
        tw = traffic_setup["windowing"]
        history = tw.history_of(traffic_setup["test"].series, 3)
        with obs.observe(trace_path=path) as (registry, _tracer):
            dspu.anneal(
                tw.observed_index, history, duration_ns=400.0,
                sync_interval_ns=200.0,
            )
            snapshot = registry.snapshot()

        assert snapshot["counters"]["dspu.anneal_runs"] == 1
        assert snapshot["counters"]["dspu.sync_events"] == 2
        assert snapshot["counters"]["dspu.clamp_asserts"] == (
            2 * tw.observed_index.size
        )
        assert snapshot["histograms"]["dspu.build_propagators_ms"]["count"] == 1
        phase_histograms = [
            k for k in snapshot["histograms"] if k.startswith("dspu.phase")
        ]
        assert phase_histograms

        (span,) = _span_records(read_trace(path), "dspu.anneal")
        attrs = span["attributes"]
        assert attrs["mode"] == dspu.mode
        assert attrs["num_intervals"] == 2
        assert attrs["clamped_nodes"] == tw.observed_index.size
        assert attrs["phases_completed"] >= 1


class TestGNNTelemetry:
    def test_per_epoch_events_and_histograms(self, traffic_setup, tmp_path):
        path = tmp_path / "trace.jsonl"
        ds = traffic_setup["dataset"]
        train, val, _test = ds.split()
        model = GraphWaveNet(ds.num_nodes, default_adjacency(ds), hidden=4)
        trainer = GNNTrainer(
            model, GNNTrainConfig(window=4, epochs=2, batch_size=32)
        )
        with obs.observe(trace_path=path) as (registry, _tracer):
            trainer.fit(train, val)
            snapshot = registry.snapshot()

        assert snapshot["counters"]["gnn.epochs"] == 2
        assert snapshot["histograms"]["gnn.epoch_loss"]["count"] == 2
        assert snapshot["histograms"]["gnn.grad_norm"]["count"] == 2

        records = read_trace(path)
        epochs = [
            r for r in records
            if r["kind"] == "event" and r["name"] == "gnn.epoch"
        ]
        assert [e["attributes"]["epoch"] for e in epochs] == [0, 1]
        assert all(e["attributes"]["epoch_ms"] > 0 for e in epochs)
        (fit_span,) = _span_records(records, "gnn.fit")
        assert fit_span["attributes"]["epochs_run"] == 2
        assert fit_span["attributes"]["model"] == "GraphWaveNet"
