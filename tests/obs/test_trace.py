"""Tests of span tracing: nesting, JSONL round-trip, global state."""

import json

import pytest

from repro import obs
from repro.obs import NULL_TRACER, Tracer, read_trace


class TestSpanNesting:
    def test_child_records_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        records = {r["name"]: r for r in tracer.records}
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None

    def test_children_close_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [r["name"] for r in tracer.records] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["a"]["parent_id"] == root.span_id
        assert by_name["b"]["parent_id"] == root.span_id

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("work", n=10) as span:
            span.set("result", 1.5)
        record = tracer.records[0]
        assert record["attributes"] == {"n": 10, "result": 1.5}
        assert record["duration_ms"] >= 0.0

    def test_event_attaches_to_open_span(self):
        tracer = Tracer()
        with tracer.span("run") as span:
            tracer.event("probe", step=5, energy=-1.0)
        event = [r for r in tracer.records if r["kind"] == "event"][0]
        assert event["span_id"] == span.span_id
        assert event["attributes"] == {"step": 5, "energy": -1.0}

    def test_top_level_event_has_no_span(self):
        tracer = Tracer()
        tracer.event("standalone")
        assert tracer.records[0]["span_id"] is None


class TestJsonlRoundTrip:
    def test_spans_round_trip_through_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.span("outer", n=3):
            with tracer.span("inner"):
                tracer.event("tick", k=1)
        tracer.embed_metrics({"counters": {"c": 1}})
        tracer.close()

        records = read_trace(path)
        assert records == tracer.records
        kinds = [r["kind"] for r in records]
        assert kinds == ["event", "span", "span", "metrics"]
        by_name = {r["name"]: r for r in records if r["kind"] == "span"}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_jsonl_is_one_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.span("a"):
            pass
        tracer.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "a"


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", n=1) as span:
            span.set("x", 2)
            NULL_TRACER.event("nothing")
        assert NULL_TRACER.records == []

    def test_shared_span_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestGlobalState:
    def test_disabled_by_default(self):
        assert obs.enabled() is False
        assert obs.metrics() is obs.NULL_METRICS
        assert obs.tracer() is obs.NULL_TRACER

    def test_observe_restores_disabled_state(self, tmp_path):
        with obs.observe(trace_path=tmp_path / "t.jsonl") as (registry, tracer):
            assert obs.enabled()
            assert obs.metrics() is registry
            assert obs.tracer() is tracer
        assert not obs.enabled()

    def test_disable_embeds_final_metrics_snapshot(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.observe(trace_path=path):
            obs.metrics().counter("engine.cache_hits").inc(3)
        records = read_trace(path)
        assert records[-1]["kind"] == "metrics"
        assert records[-1]["snapshot"]["counters"]["engine.cache_hits"] == 3

    def test_metrics_enabled_installs_and_restores(self):
        assert not obs.metrics().enabled
        with obs.metrics_enabled() as registry:
            assert registry.enabled
            assert obs.metrics() is registry
        assert not obs.metrics().enabled

    def test_metrics_enabled_reuses_active_registry(self):
        with obs.observe(collect_metrics=True) as (registry, _tracer):
            with obs.metrics_enabled() as inner:
                assert inner is registry

    def test_configure_requires_explicit_sinks(self):
        pair = obs.configure(collect_metrics=False, trace_path=None)
        try:
            assert pair == (obs.NULL_METRICS, obs.NULL_TRACER)
            assert not obs.enabled()
        finally:
            obs.disable()


class TestReadTrace:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "event", "name": "x"}\n\n')
        assert len(read_trace(path)) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace(tmp_path / "absent.jsonl")
