"""Shared experiment context for the benchmark harness.

All benchmarks share one :class:`ExperimentContext` so dense models,
decompositions, and GNN baselines are each trained exactly once per
session regardless of how many tables/figures consume them.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext(size="small", grid_shape=(3, 3), lanes=8, gnn_epochs=15)
