"""Shared experiment context for the benchmark harness.

All benchmarks share one :class:`ExperimentContext` so dense models,
decompositions, and GNN baselines are each trained exactly once per
session regardless of how many tables/figures consume them.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentContext


def pytest_addoption(parser):
    parser.addoption(
        "--run-perf",
        action="store_true",
        default=False,
        help="run perf-marked benchmarks (also enabled by REPRO_RUN_PERF=1)",
    )


def pytest_collection_modifyitems(config, items):
    """Skip ``perf``-marked benchmarks unless explicitly requested.

    Tier-1 test runs must stay fast and deterministic; the perf harness
    only executes under ``--run-perf`` / ``REPRO_RUN_PERF=1`` (the CI perf
    job) or through ``repro bench``.
    """
    if config.getoption("--run-perf") or os.environ.get("REPRO_RUN_PERF"):
        return
    skip_perf = pytest.mark.skip(
        reason="perf benchmark; pass --run-perf or set REPRO_RUN_PERF=1"
    )
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip_perf)


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext(size="small", grid_shape=(3, 3), lanes=8, gnn_epochs=15)
