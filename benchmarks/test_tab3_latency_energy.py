"""Table III — inference latency and energy: DS-GL vs accelerators & GPU.

Applies the paper's comparison methodology: every GNN accelerator is
charitably assumed to run at peak TFLOPS with typical power, costed over
paper-scale model FLOP counts; DS-GL uses its annealing latency and chip
power.  The headline result — 10^3x-10^5x lower latency and >=10^5x lower
energy — must reproduce.
"""

import numpy as np
import pytest

from repro.experiments import format_table3, table3_data


@pytest.fixture(scope="module")
def data(context):
    return table3_data(context)


def test_tab3_latency_energy(benchmark, context, data):
    benchmark(lambda: table3_data(context))

    print("\n=== Table III: latency & energy per inference ===")
    print(format_table3(data))

    dsgl_latency = {app: row["latency_us"] for app, row in data["dsgl"].items()}
    dsgl_energy = {app: row["energy_mj"] for app, row in data["dsgl"].items()}

    speedups, energy_gains = [], []
    for platform in data["platforms"]:
        for app, rows in platform["rows"].items():
            for metrics in rows.values():
                speedups.append(metrics["latency_us"] / dsgl_latency[app])
                energy_gains.append(metrics["energy_mj"] / dsgl_energy[app])

    speedups = np.asarray(speedups)
    energy_gains = np.asarray(energy_gains)
    print(
        f"\nspeedup over DS-GL baselines: {speedups.min():.1e} .. "
        f"{speedups.max():.1e}; energy gain {energy_gains.min():.1e} .. "
        f"{energy_gains.max():.1e}"
    )

    # Paper: 10^3x - 10^5x speedups, power two orders below => huge energy gap.
    assert speedups.min() > 1e1
    assert speedups.max() > 1e3
    assert energy_gains.min() > 1e4


def test_tab3_gpu_is_fastest_baseline(benchmark, context, data):
    """The A100 should beat the FPGA accelerators on raw latency (it has
    ~50x their peak TFLOPS), matching the paper's platform ordering."""
    benchmark(lambda: table3_data(context, paper_scale=True))
    latencies = {}
    for platform in data["platforms"]:
        values = [
            metrics["latency_us"]
            for rows in platform["rows"].values()
            for metrics in rows.values()
        ]
        latencies[platform["platform"]] = float(np.mean(values))
    assert latencies["NVIDIA A100 SXM"] == min(latencies.values())
