"""GNN fast-path performance benchmarks (``perf``-marked, skipped by
default — run with ``--run-perf`` or ``REPRO_RUN_PERF=1``).

The authoritative entry point is ``repro bench --suite nn``; these tests
share its harness (:mod:`repro.perf_nn`) and gate the claims BENCH_nn.json
records: sparse cached graph propagation beats dense autograd matmuls at
real sensor-graph sizes, and the allocation-lean backward writes most
gradients without defensive copies.
"""

import json

import pytest

from repro.perf import write_bench_json
from repro.perf_nn import bench_graphconv, run_nn_benchmarks

pytestmark = pytest.mark.perf


def test_bench_nn_smoke_writes_valid_payload(tmp_path):
    payload = run_nn_benchmarks(smoke=True, repeats=1)
    assert payload["benchmark"] == "nn_fast_path"
    assert payload["results"]
    names = [result["name"] for result in payload["results"]]
    assert any("train_epoch" in name for name in names)
    assert any("infer_window" in name for name in names)
    assert any("graphconv" in name for name in names)
    for result in payload["results"]:
        assert result["speedup"] > 0
    # Matched-dtype comparison: the graph-conv row is a correctness bound.
    graphconv = next(r for r in payload["results"] if "graphconv" in r["name"])
    assert graphconv["max_abs_diff"] < 1e-8
    # The float32 rows are cross-dtype: loose accuracy gap, not rounding.
    train = next(r for r in payload["results"] if "train_epoch" in r["name"])
    assert train["max_abs_diff"] < 1e-2
    assert payload["metrics"]["counters"]["gnn.epochs"] > 0

    out = write_bench_json(payload, tmp_path / "BENCH_nn.json")
    reloaded = json.loads(out.read_text())
    assert reloaded["results"] == payload["results"]


def test_sparse_cached_graphconv_beats_dense():
    """The gate: on a 500-node 2%-density graph, the cached CSR support
    must beat dense autograd matmuls on forward + backward."""
    result = bench_graphconv(n=500, density=0.02, repeats=2)
    assert result["backend"] == "sparse"  # auto-selection picked CSR
    assert result["max_abs_diff"] < 1e-8
    assert result["speedup"] > 1.0


def test_backward_is_allocation_lean():
    """Most first gradient writes take ownership of temporaries; the
    float32 fast path must not copy more than the float64 baseline."""
    payload = run_nn_benchmarks(smoke=True, repeats=1)
    train = next(r for r in payload["results"] if "train_epoch" in r["name"])
    for side in ("baseline", "optimized"):
        stats = train["grad_stats"][side]
        assert stats["grad_writes"] > 0
        assert stats["grad_copies"] < stats["grad_writes"] / 2
    assert (
        train["grad_stats"]["optimized"]["grad_copies"]
        <= train["grad_stats"]["baseline"]["grad_copies"]
    )
