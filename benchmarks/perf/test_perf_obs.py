"""Observability overhead benchmarks (``perf``-marked, skipped by default).

The obs design claim: instrumentation lives only at run boundaries, so
the integrator hot loop is identical whether observability is disabled
(the null sinks) or fully enabled (metrics + trace).  These benchmarks
hold that claim to < 5% on a small :meth:`CircuitSimulator.run_batch`.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.inference import NaturalAnnealingEngine
from repro.core.model import DSGLModel
from repro.perf import _best_of_ms, random_sparse_system

pytestmark = pytest.mark.perf


def _small_workload():
    """A small batched circuit inference: n=96, batch=8, 200 steps."""
    J, h = random_sparse_system(96, 0.1, seed=3)
    model = DSGLModel(J=J, h=h)
    engine = NaturalAnnealingEngine(model, backend="dense")
    observed = np.arange(32)
    values = np.zeros((8, 32))

    def run():
        engine.infer_batch(observed, values, duration=20.0)

    run()  # warm caches (operator build, allocator) before timing
    return run


def test_disabled_observability_overhead_smoke(tmp_path):
    run = _small_workload()

    # Interleave the two configurations round by round so slow machine
    # drift (thermal, noisy CI neighbours) hits both sides equally, then
    # compare best-of — robust to one-sided slowdowns.
    disabled_samples, enabled_samples = [], []
    for round_index in range(20):
        assert not obs.enabled()
        disabled_samples.append(_best_of_ms(run, 1))
        with obs.observe(trace_path=tmp_path / f"trace{round_index}.jsonl"):
            enabled_samples.append(_best_of_ms(run, 1))
    disabled_ms = min(disabled_samples)
    enabled_ms = min(enabled_samples)

    overhead = (enabled_ms - disabled_ms) / disabled_ms
    # Fully-enabled tracing costs < 5% on a small run_batch; the disabled
    # null-sink path, which does strictly less work at the same call
    # sites, is bounded by the same margin.
    assert overhead < 0.05, (
        f"observability overhead {overhead:.1%} "
        f"(disabled {disabled_ms:.3f} ms, enabled {enabled_ms:.3f} ms)"
    )


def test_energy_probe_off_costs_nothing_smoke():
    """With tracing off the probe branch must not slow the loop."""
    from repro.core.dynamics import IntegrationConfig

    J, h = random_sparse_system(96, 0.1, seed=3)
    model = DSGLModel(J=J, h=h)
    observed = np.arange(32)
    values = np.zeros((8, 32))

    def timing(config):
        engine = NaturalAnnealingEngine(model, config=config, backend="dense")

        def run():
            engine.infer_batch(observed, values, duration=20.0)

        run()
        return _best_of_ms(run, 15)

    plain_ms = timing(IntegrationConfig())
    probed_ms = timing(IntegrationConfig(energy_probe_every=10))
    assert probed_ms < plain_ms * 1.05
