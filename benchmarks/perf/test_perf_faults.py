"""Fault-layer overhead benchmarks (``perf``-marked, skipped by default).

The fault design claim mirrors the obs layer: disabled means the shared
:data:`~repro.faults.NO_FAULTS` null object, whose injection points cost a
truthy check at run boundaries — nothing in the hot loop.  These
benchmarks bound the *enabled* path instead: an active scenario pays one
coupling transform per operator build plus a slightly larger clamp set,
and the divergence guard pays a strided ``isfinite`` sweep.
"""

import numpy as np
import pytest

from repro.core.dynamics import IntegrationConfig
from repro.core.inference import NaturalAnnealingEngine
from repro.core.model import DSGLModel
from repro.faults import FaultModel
from repro.perf import _best_of_ms, random_sparse_system

pytestmark = pytest.mark.perf


def _engine_runner(faults=None, config=None):
    """A small batched circuit inference: n=96, batch=8, 200 steps."""
    J, h = random_sparse_system(96, 0.1, seed=3)
    model = DSGLModel(J=J, h=h)
    kwargs = {"backend": "dense"}
    if faults is not None:
        kwargs["faults"] = faults
    if config is not None:
        kwargs["config"] = config
    engine = NaturalAnnealingEngine(model, **kwargs)
    observed = np.arange(32)
    values = np.zeros((8, 32))

    def run():
        engine.infer_batch(observed, values, duration=20.0)

    run()  # warm caches (fault-transformed operator build) before timing
    return run


def test_enabled_fault_injection_overhead_smoke():
    """An active scenario must not slow the integration loop materially:
    coupling faults are folded into the cached operator once, and stuck
    nodes just extend the clamp set."""
    J, _h = random_sparse_system(96, 0.1, seed=3)
    scenario = FaultModel.uniform(0.05, seed=1).sample(96, J=J)
    assert scenario.enabled

    clean = _engine_runner()
    faulty = _engine_runner(faults=scenario)

    clean_samples, faulty_samples = [], []
    for _round in range(20):
        clean_samples.append(_best_of_ms(clean, 1))
        faulty_samples.append(_best_of_ms(faulty, 1))
    clean_ms = min(clean_samples)
    faulty_ms = min(faulty_samples)

    overhead = (faulty_ms - clean_ms) / clean_ms
    assert overhead < 0.15, (
        f"fault-injection overhead {overhead:.1%} "
        f"(clean {clean_ms:.3f} ms, faulty {faulty_ms:.3f} ms)"
    )


def test_divergence_guard_overhead_smoke():
    """A strided finiteness sweep must be loop noise, not loop cost."""
    plain = _engine_runner(config=IntegrationConfig())
    guarded = _engine_runner(
        config=IntegrationConfig(divergence_check_every=25)
    )
    plain_ms = _best_of_ms(plain, 15)
    guarded_ms = _best_of_ms(guarded, 15)
    assert guarded_ms < plain_ms * 1.08, (
        f"divergence guard overhead "
        f"(plain {plain_ms:.3f} ms, guarded {guarded_ms:.3f} ms)"
    )
