"""Annealing-path tuning performance gates (``perf``-marked).

These execute only under ``pytest benchmarks/perf --run-perf`` (the CI
perf job) or with ``REPRO_RUN_PERF=1``.  The authoritative entry point
is ``repro bench``, which includes the same rows via
:mod:`repro.tune.bench`.

The acceptance gate: per-member early-exit freeze-out must beat the
fixed worst-case step budget by at least 2x at n=2048 while both sides
stay within the absolute accuracy ceiling (MAE against the exact
equilibrium fixed point) — the headline claim recorded in
``BENCH_core.json``.
"""

import pytest

from repro.tune.bench import (
    bench_tune_adaptive,
    bench_tune_early_exit,
    bench_tune_suite,
)

pytestmark = pytest.mark.perf


def test_tune_smoke_suite_rows_are_well_formed():
    rows = bench_tune_suite(smoke=True, repeats=1)
    assert len(rows) == 2
    names = {row["name"] for row in rows}
    assert names == {"tune_early_exit_vs_fixed", "tune_adaptive_vs_conservative"}
    for row in rows:
        assert row["speedup"] > 0
        # Both sides must land within the absolute accuracy ceiling for
        # the speedup to count as equal-accuracy.
        assert row["baseline_mae"] <= row["accuracy_tol"]
        assert row["optimized_mae"] <= row["accuracy_tol"]
        assert row["equal_accuracy"]
        # The optimized side stopped before the worst-case budget.
        assert row["early_exit_t_ns"] <= row["duration_ns"]
        assert row["baseline_stats"]["samples_ms"]
        assert row["optimized_stats"]["samples_ms"]


def test_early_exit_beats_fixed_budget_2x_at_n2048():
    """The acceptance point: at n=2048 the freeze-out path must cut
    integration latency by at least 2x against the same-dt fixed budget,
    with both arms within the equal-accuracy MAE ceiling."""
    row = bench_tune_early_exit(
        n=2048, density=0.01, batch=8, duration=100.0, repeats=2
    )
    assert row["speedup"] >= 2.0
    assert row["equal_accuracy"]
    assert row["early_exit_t_ns"] < row["duration_ns"]


def test_adaptive_beats_conservative_dt_at_equal_accuracy():
    """The variable-step story: starting from a 10x-safety-margin dt the
    PI controller recovers most of the headroom — faster than the
    conservative fixed step at the same accuracy ceiling."""
    row = bench_tune_adaptive(
        n=1024, density=0.02, batch=8, duration=100.0, repeats=2
    )
    assert row["speedup"] > 1.0
    assert row["equal_accuracy"]
