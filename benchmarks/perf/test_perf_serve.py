"""Serving SLO benchmarks (``perf``-marked, skipped by default).

These execute only under ``pytest benchmarks/perf --run-perf`` (the CI
perf job) or with ``REPRO_RUN_PERF=1``.  The authoritative entry point
is ``repro serve bench``, which shares the same harness in
:mod:`repro.serve.bench`.
"""

import json

import pytest

from repro.perf import write_bench_json
from repro.serve import run_serve_benchmarks
from repro.serve.bench import bench_serve_burst, bench_serve_overload

pytestmark = pytest.mark.perf


def test_serve_bench_smoke_writes_valid_payload(tmp_path):
    payload = run_serve_benchmarks(smoke=True, repeats=1)
    assert payload["benchmark"] == "serve_slo"
    open_rows = [
        r for r in payload["results"] if r["name"] == "serve_open_loop"
    ]
    assert len(open_rows) >= 3
    for row in open_rows:
        assert row["completed"] == row["requests"]
        assert row["p50_ms"] <= row["p99_ms"] <= row["p999_ms"]

    out = write_bench_json(payload, tmp_path / "BENCH_serve.json")
    reloaded = json.loads(out.read_text())
    assert reloaded["results"] == payload["results"]


def test_dynamic_batching_beats_serial_at_equal_accuracy():
    """The serving claim at a real (not smoke) size: coalescing a burst
    into dynamic batches beats batch-size-1 serial serving on throughput
    while producing bit-for-bit identical predictions."""
    row = bench_serve_burst(n=256, density=0.05, burst=64, repeats=2)
    assert row["bitwise_identical"] is True
    assert row["max_abs_diff"] == 0.0
    assert row["speedup"] > 1.5
    assert row["throughput_batched_rps"] > row["throughput_serial_rps"]


def test_admission_control_sheds_instead_of_collapsing():
    """Overload must degrade by shedding (distinct status), not by
    unbounded queueing: everything is either served or shed, promptly."""
    row = bench_serve_overload(n=128, density=0.05, seed=0)
    assert row["shed"] > 0
    assert row["completed"] > 0
    assert row["shed"] + row["completed"] == row["requests"]
