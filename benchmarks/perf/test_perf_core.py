"""Hot-path performance benchmarks (``perf``-marked, skipped by default).

These execute only under ``pytest benchmarks/perf --run-perf`` (the CI
perf job) or with ``REPRO_RUN_PERF=1`` — tier-1 runs never pay for them.
The authoritative entry point is ``repro bench``, which shares the same
harness in :mod:`repro.perf`.
"""

import json

import pytest

from repro.perf import run_core_benchmarks, write_bench_json

pytestmark = pytest.mark.perf


def test_bench_smoke_writes_valid_payload(tmp_path):
    payload = run_core_benchmarks(smoke=True, repeats=1)
    assert payload["benchmark"] == "core_hot_paths"
    assert payload["results"]
    for result in payload["results"]:
        if result["name"] == "parallel_scaling_curve":
            assert result["rows"]
            for row in result["rows"]:
                # Transport and worker count never change result bits.
                assert row["max_abs_diff"] < 1e-8
                assert row["transport_max_abs_diff"] < 1e-8
                assert row["task_pickled_bytes_shm"] >= 1
            continue
        assert result["speedup"] > 0
        # Optimized paths must agree with their baselines.
        assert result["max_abs_diff"] < 1e-8

    out = write_bench_json(payload, tmp_path / "BENCH_core.json")
    reloaded = json.loads(out.read_text())
    assert reloaded["results"] == payload["results"]


def test_batched_and_cached_paths_beat_baselines():
    """The trajectory claim: batching/caching wins at real sizes.

    Kept below trajectory-grade sizes so the CI perf job stays fast while
    still asserting a real (not smoke-sized) advantage.
    """
    from repro.perf import bench_circuit_batch, bench_equilibrium

    equilibrium = bench_equilibrium(n=512, density=0.05, batch=64, repeats=2)
    assert equilibrium["speedup"] > 5.0

    circuit = bench_circuit_batch(
        n=128, density=0.1, batch=32, duration=10.0, repeats=2
    )
    assert circuit["speedup"] > 1.5


def test_parallel_sharding_is_bit_exact_and_records_hardware():
    """The parallel layer's contract, measured: same shards on N worker
    processes produce the same bits as on 1, and the payload records the
    hardware (``cpu_count``) the speedup was measured on — speedup itself
    is a property of the machine, not asserted here."""
    from repro.perf import bench_parallel_batch

    result = bench_parallel_batch(
        n=96, density=0.1, batch=8, duration=2.0, workers=2, repeats=1
    )
    assert result["max_abs_diff"] == 0.0
    assert result["bitwise_identical"] is True
    assert result["workers"] == 2
    assert result["shards"] == 2
    assert result["cpu_count"] >= 1
