"""Perf gates for the zero-copy shared-memory scale-out path.

Two claims from the scale-out work, measured rather than assumed:

* At real problem sizes (n >= 8192) the shared-memory transport pickles
  at least 10x fewer bytes per pool task than the legacy path, which
  serializes the coupling operator and the shard's state slice into every
  task (the ``smoke`` gate — runs in the CI perf job).
* A 100k-node / 0.1%-density mesh anneals end-to-end on laptop-class
  memory through :func:`repro.parallel.anneal_mesh` (full perf runs
  only — minutes, not CI smoke material).
"""

import numpy as np
import pytest

from repro.parallel import shm_available

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(
        not shm_available(), reason="named shared memory unavailable"
    ),
]


def test_smoke_pickled_bytes_reduced_10x_at_8192():
    """The acceptance gate: >= 10x smaller task payloads at n >= 8192."""
    from repro.core.dynamics import CircuitSimulator, IntegrationConfig
    from repro.core.operators import CouplingOperator
    from repro.parallel import shard_task_bytes
    from repro.perf import random_sparse_mesh

    n = 8192
    J, h = random_sparse_mesh(n, 0.01, seed=0)
    operator = CouplingOperator(J, h, backend="sparse")
    rng = np.random.default_rng(1)
    sigma0 = rng.uniform(-1.0, 1.0, size=(8, n))
    simulator = CircuitSimulator(
        config=IntegrationConfig(dt=0.1, record_every=1_000_000)
    )
    sizes = shard_task_bytes(
        simulator, operator.drift, sigma0, 2.0,
        shards=4, energy=operator.energy,
    )
    reduction = sizes["legacy"] / max(sizes["shm"], 1)
    assert reduction >= 10.0, sizes
    # The shm payload is descriptors only — it must not scale with n.
    assert sizes["shm"] < 4096, sizes


def test_smoke_transport_equivalence_at_scale():
    """Transport never changes bits, checked at a non-toy size."""
    from repro.core.dynamics import CircuitSimulator, IntegrationConfig
    from repro.core.operators import CouplingOperator
    from repro.parallel import run_batch_sharded, shm_residue
    from repro.perf import random_sparse_mesh

    n = 2048
    J, h = random_sparse_mesh(n, 0.01, seed=2)
    operator = CouplingOperator(J, h, backend="sparse")
    rng = np.random.default_rng(3)
    sigma0 = rng.uniform(-1.0, 1.0, size=(8, n))
    simulator = CircuitSimulator(
        config=IntegrationConfig(
            dt=0.1, record_every=1_000_000, node_noise_std=0.01
        )
    )
    run = lambda shm: run_batch_sharded(  # noqa: E731
        simulator, operator.drift, sigma0, 2.0,
        energy=operator.energy, workers=2, shards=4, root_seed=5, shm=shm,
    )
    legacy, shared = run(False), run(True)
    assert np.array_equal(legacy.states, shared.states)
    assert np.array_equal(legacy.energies, shared.energies)
    assert shm_residue() == []


def test_mesh_100k_nodes_end_to_end():
    """The tentpole scale target: 100k nodes at 0.1% density, end to end.

    Sparse generation, community partitioning, and a handful of exact
    halo-exchange rounds — asserting the state stays finite and in the
    rails, no /dev/shm residue survives, and peak RSS stays laptop-class
    (the dense coupling matrix alone would need 80 GB).
    """
    from repro.parallel import anneal_mesh, shm_residue
    from repro.perf import _peak_rss_mb, random_sparse_mesh

    n = 100_000
    J, h = random_sparse_mesh(n, 0.001, seed=0)
    assert J.nnz >= 9_000_000  # ~0.1% of 1e10 pairs, stored twice
    rng = np.random.default_rng(1)
    sigma0 = rng.uniform(-1.0, 1.0, size=n)

    result = anneal_mesh(
        J, h, sigma0, duration=0.5, dt=0.1, shards=8, workers=2
    )
    assert result.n_steps == 5
    assert np.all(np.isfinite(result.state))
    assert np.all(np.abs(result.state) <= 1.0)
    assert result.partition.num_shards == 8
    assert shm_residue() == []
    assert _peak_rss_mb() < 16_384, "100k mesh exceeded laptop-class memory"
