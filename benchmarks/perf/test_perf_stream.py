"""Streaming-update performance gates (``perf``-marked, skipped by default).

These execute only under ``pytest benchmarks/perf --run-perf`` (the CI
perf job) or with ``REPRO_RUN_PERF=1``.  The authoritative entry point
is ``repro bench``, which includes the same rows via
:mod:`repro.stream.bench`.

The acceptance gate: absorbing a single-edge delta into a cached
reduced-system factorization via the Sherman-Morrison-Woodbury
incremental path must beat a full LU refactorization by at least 5x at
n=4096 — the headline claim recorded in ``BENCH_core.json``.
"""

import pytest

from repro.stream.bench import bench_stream_suite, bench_stream_update

pytestmark = pytest.mark.perf


def test_stream_smoke_suite_rows_are_well_formed():
    rows = bench_stream_suite(smoke=True, repeats=1)
    assert len(rows) == 2
    for row in rows:
        assert row["name"] == "stream_incremental_update"
        assert row["delta_edges"] in (1, 8)
        # Free-free edges contribute two SMW columns each; edges touching
        # observed nodes become exact B-edits and cost no rank.
        assert 0 <= row["update_rank"] <= 2 * row["delta_edges"]
        assert row["speedup"] > 0
        # Incremental and refactorized solves agree within the bound.
        assert row["residual"] <= row["residual_tol"]
        assert row["max_abs_diff"] < 1e-8
        assert row["baseline_stats"]["samples_ms"]
        assert row["optimized_stats"]["samples_ms"]


def test_single_edge_incremental_update_beats_refactorization_5x():
    """The acceptance point: one edge edit at n=4096, incremental path
    >= 5x faster than refactorize-from-scratch (delta -> next prediction,
    both arms ending in the same batch solve)."""
    row = bench_stream_update(
        n=4096, density=0.01, delta_edges=1, repeats=2
    )
    assert row["speedup"] >= 5.0
    assert row["residual"] <= row["residual_tol"]
    assert row["max_abs_diff"] < 1e-8


def test_incremental_advantage_grows_with_n():
    """The scaling story behind the gate: the refactorization arm grows
    superlinearly while the SMW update stays low-rank, so the speedup at
    n=1024 must already exceed the one at n=256."""
    small = bench_stream_update(n=256, density=0.05, delta_edges=1, repeats=2)
    large = bench_stream_update(n=1024, density=0.02, delta_edges=1, repeats=2)
    assert large["speedup"] > small["speedup"]
    assert large["speedup"] > 2.0
