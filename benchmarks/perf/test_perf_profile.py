"""Sampling-profiler overhead benchmarks (``perf``-marked, off by default).

The profiler's claim: at the default 200 Hz sampling rate the signal
handler does O(stack depth) work a few hundred times per second, which
on any real workload is noise — the gate holds it to < 10% on the same
small batched inference the obs-overhead benchmark uses.  (The disabled
path is covered by ``test_perf_obs.py``: with no profiler configured the
call sites hit the null singletons and pay nothing.)
"""

import numpy as np
import pytest

from repro import obs
from repro.core.inference import NaturalAnnealingEngine
from repro.core.model import DSGLModel
from repro.perf import _best_of_ms, random_sparse_system

pytestmark = pytest.mark.perf


def _small_workload():
    """Same shape as test_perf_obs: n=96, batch=8, 200 steps."""
    J, h = random_sparse_system(96, 0.1, seed=3)
    model = DSGLModel(J=J, h=h)
    engine = NaturalAnnealingEngine(model, backend="dense")
    observed = np.arange(32)
    values = np.zeros((8, 32))

    def run():
        engine.infer_batch(observed, values, duration=20.0)

    run()  # warm caches before timing
    return run


def test_default_rate_sampling_overhead_smoke(tmp_path):
    """Enabled sampling at DEFAULT_INTERVAL costs < 10% wall time."""
    run = _small_workload()

    # Interleave plain and profiled rounds so machine drift hits both
    # sides equally, then compare best-of (see test_perf_obs.py).
    plain_samples, profiled_samples = [], []
    for round_index in range(20):
        assert not obs.enabled()
        plain_samples.append(_best_of_ms(run, 1))
        with obs.observe(
            collect_metrics=False,
            profile_path=tmp_path / f"prof{round_index}.txt",
        ):
            profiled_samples.append(_best_of_ms(run, 1))
    plain_ms = min(plain_samples)
    profiled_ms = min(profiled_samples)

    overhead = (profiled_ms - plain_ms) / plain_ms
    assert overhead < 0.10, (
        f"profiler overhead {overhead:.1%} at {obs.DEFAULT_INTERVAL}s "
        f"interval (plain {plain_ms:.3f} ms, profiled {profiled_ms:.3f} ms)"
    )


def test_profiler_actually_samples_the_workload_smoke(tmp_path):
    """Sanity for the gate above: the profiled rounds really sample."""
    run = _small_workload()
    path = tmp_path / "prof.txt"
    with obs.observe(collect_metrics=False, profile_path=path):
        for _ in range(5):
            run()
    samples = obs.read_profile(path)
    assert sum(samples.values()) > 0, "profiler collected no samples"
    frames = {frame for stack in samples for frame in stack}
    assert any("infer_batch" in frame for frame in frames)
