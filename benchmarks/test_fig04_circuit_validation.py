"""Fig. 4 — circuit-level validation: DSPU stabilizes, BRIM polarizes.

Regenerates the 6-spin experiment of Fig. 4: identical inputs and coupling
parameters on both machines; the Real-Valued DSPU settles at intermediate
analog voltages while BRIM's free nodes polarize to the rails.
"""

import numpy as np

from repro.experiments import fig4_data


def test_fig4_circuit_validation(benchmark):
    data = benchmark(fig4_data)
    free = data["free_index"]
    clamped = data["clamp_index"]

    print("\n=== Fig. 4: circuit-level validation (6-spin graph) ===")
    print(f"inputs (clamped): v{list(clamped)}")
    header = "node  " + "".join(f"v{i}      " for i in range(6))
    print(header)
    print("DSPU  " + "".join(f"{v:+.3f}  " for v in data["dspu_final"]))
    print("BRIM  " + "".join(f"{v:+.3f}  " for v in data["brim_final"]))
    settle = data["dspu"].settle_time(tolerance=1e-3)
    print(f"DSPU settle time: {settle:.1f} ns of {data['dspu'].times[-1]:.0f} ns")

    # Paper's validation criterion.
    assert np.all(np.abs(data["dspu_final"][free]) < 0.99), (
        "DSPU free nodes must stabilize strictly inside the rails"
    )
    assert np.all(np.abs(data["brim_final"][free]) > 0.9), (
        "BRIM free nodes must polarize to the rails"
    )
