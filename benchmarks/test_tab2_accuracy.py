"""Table II — RMSE comparison between DS-GL and SOTA GNNs.

Trains GWN/MTGNN/DDGCRN and evaluates the four DS-GL design choices
(Spatial-only, Chain, Mesh, DMesh) on all seven scalar datasets.

Expected shape: DS-GL's pattern variants are competitive with — and on
most datasets better than — the GNN baselines, and the full co-annealing
variants beat the latency-optimized Spatial-only design on accuracy.
"""

import numpy as np
import pytest

from repro.experiments import GNN_BASELINES, format_table2, table2_data


@pytest.fixture(scope="module")
def data(context):
    return table2_data(context)


def test_tab2_accuracy(benchmark, context, data):
    benchmark(lambda: context.gnn_rmse("GWN", "traffic"))

    print("\n=== Table II: RMSE, DS-GL vs SOTA GNNs ===")
    print(format_table2(data))

    dsgl_variants = ("DS-GL-Spatial", "DS-GL-Chain", "DS-GL-Mesh", "DS-GL-Dmesh")
    for name, row in data.items():
        for method in list(GNN_BASELINES) + list(dsgl_variants):
            assert 0.0 < row[method] < 1.0, (name, method)


def test_tab2_dsgl_wins_on_most_datasets(benchmark, context, data):
    benchmark(lambda: context.gnn_rmse("MTGNN", "traffic"))
    wins = 0
    for name, row in data.items():
        best_gnn = min(row[b] for b in GNN_BASELINES)
        best_dsgl = min(
            row[m] for m in row if m.startswith("DS-GL-") and m != "DS-GL-Spatial"
        )
        if best_dsgl <= best_gnn * 1.05:
            wins += 1
    assert wins >= len(data) // 2, (
        f"DS-GL competitive on only {wins}/{len(data)} datasets"
    )


def test_tab2_full_coannealing_beats_spatial_only(benchmark, context, data):
    """Spatial-only trades accuracy for latency, so the pattern variants
    should win on accuracy for most datasets."""
    benchmark(lambda: context.gnn_rmse("DDGCRN", "traffic"))
    better = 0
    for row in data.values():
        best_full = min(row["DS-GL-Chain"], row["DS-GL-Mesh"], row["DS-GL-Dmesh"])
        if best_full <= row["DS-GL-Spatial"] * 1.02:
            better += 1
    assert better >= len(data) - 2
