"""Table I — hardware comparison with BRIM.

Regenerates the BRIM / DSPU-2000 / DS-GL power-area-capability rows from
the calibrated cost model and checks the headline scaling claim: 4x the
effective spins for ~2x the power with real-value support.
"""

import numpy as np

from repro.experiments import format_table1, table1_data


def test_tab1_hardware_costs(benchmark):
    rows = benchmark(table1_data)
    print("\n=== Table I: hardware comparison ===")
    print(format_table1(rows))

    by_name = {r["design"]: r for r in rows}
    brim = by_name["BRIM"]
    dspu = by_name["DSPU-2000"]
    dsgl = by_name["DS-GL"]

    # Paper row: BRIM 2000 spins / 250 mW / 5 mm^2, binary, not scalable.
    assert np.isclose(brim["power_mw"], 250.0, rtol=0.02)
    assert np.isclose(brim["area_mm2"], 5.0, rtol=0.02)
    # Real-value support costs ~4% power / ~2% area (260 mW / 5.1 mm^2).
    assert np.isclose(dspu["power_mw"], 260.0, rtol=0.02)
    assert dspu["data_type"] == "real-value"
    # DS-GL: 4x spins at ~2.1x power, ~1.3x area, scalable.
    assert dsgl["effective_spins"] == 4 * brim["effective_spins"]
    assert np.isclose(dsgl["power_mw"], 550.0, rtol=0.05)
    assert dsgl["area_mm2"] < 1.45 * brim["area_mm2"]
    assert dsgl["scalable"]
