"""Fig. 10 — DS-GL accuracy (RMSE) vs coupling-matrix density per pattern.

Regenerates the seven per-dataset curves: RMSE as a function of the
communication demand density D for Chain/Mesh/DMesh decompositions (all
with Wormholes enabled), against the best-GNN reference line.

Expected shape: RMSE falls as density rises, and richer patterns
(DMesh >= Mesh >= Chain in connectivity) reach equal or better accuracy.
"""

import numpy as np
import pytest

from repro.datasets import SCALAR_DATASETS
from repro.experiments import DENSITY_GRID, fig10_data, format_density_sweep


@pytest.fixture(scope="module")
def data(context):
    return fig10_data(context)


def test_fig10_density_sweep(benchmark, context, data):
    # Benchmark one representative design-point evaluation (cached model).
    benchmark(lambda: context.dsgl_rmse("traffic", 0.15, "dmesh"))

    print("\n=== Fig. 10: RMSE vs density (sparsity = 1 - density) ===")
    print(format_density_sweep(data))

    for name in SCALAR_DATASETS:
        entry = data[name]
        for pattern, curve in entry["curves"].items():
            improves = curve[-1] <= curve[0] * 1.15
            # A dataset whose *sparsest* decomposition already crushes the
            # best GNN has nothing left for density to buy (stock's
            # cointegration structure fits in very few couplings); there
            # the trend is allowed to saturate instead of improve.
            saturated = curve[0] <= entry["best_gnn"] * 0.5
            assert improves or saturated, (name, pattern, curve)


def test_fig10_density_improves_accuracy(benchmark, context, data):
    """Across all datasets/patterns, the dense end of the sweep must beat
    the sparse end on average — the figure's headline trend."""
    benchmark(lambda: context.dsgl_rmse("stock", 0.1, "mesh"))
    sparse_end, dense_end = [], []
    for entry in data.values():
        if min(curve[0] for curve in entry["curves"].values()) <= entry["best_gnn"] * 0.5:
            continue  # saturated dataset (see test above)
        for curve in entry["curves"].values():
            sparse_end.append(curve[0])
            dense_end.append(curve[-1])
    assert np.mean(dense_end) < np.mean(sparse_end)


def test_fig10_dsgl_competitive_with_gnn(benchmark, context, data):
    """At the densest sweep point, the best DS-GL pattern should be within
    striking distance of (and usually beat) the best GNN."""
    benchmark(lambda: context.best_gnn_rmse("stock"))
    wins = 0
    for name, entry in data.items():
        best_dsgl = min(curve[-1] for curve in entry["curves"].values())
        if best_dsgl <= entry["best_gnn"] * 1.1:
            wins += 1
    assert wins >= len(data) // 2, (
        "DS-GL should be competitive with the best GNN on most datasets"
    )
