"""Fig. 12 — RMSE vs inter-tile synchronization interval.

Inter-mapping synchronization (the switch-in-turn interval) sweeps from
50 ns to 5 us at a fixed annealing budget: accuracy is flat for fast
synchronization and degrades as the interval grows, with a negligible
drop at the hardware-supported 200 ns (the paper's operating point).
"""

import numpy as np
import pytest

from repro.experiments import fig12_data, format_sync_sweep


@pytest.fixture(scope="module")
def data(context):
    return fig12_data(context)


def test_fig12_sync_interval(benchmark, context, data):
    trained = context.dense("stock")
    dspu = context.dspu("stock", 0.15, "dmesh")
    history = trained.windowing.history_of(trained.test.flat_series(), 3)
    benchmark(
        lambda: dspu.anneal(
            trained.windowing.observed_index,
            history,
            duration_ns=10000.0,
            sync_interval_ns=200.0,
        )
    )

    print("\n=== Fig. 12: RMSE vs synchronization interval ===")
    print(format_sync_sweep(data))

    for name, entry in data.items():
        sync = np.asarray(entry["sync_ns"], dtype=float)
        curve = np.asarray(entry["rmse"])
        fast = curve[sync <= 500.0]
        slow = curve[sync >= 2500.0]
        # Fast synchronization is at least as accurate as slow (on average).
        assert fast.mean() <= slow.mean() * 1.05, (name, curve)


def test_fig12_operating_point_drop_is_small(benchmark, context, data):
    """At the DS-GL operating point (200 ns) the accuracy drop relative to
    the fastest sweep point must be small — the paper's key takeaway."""
    trained = context.dense("no2")
    dspu = context.dspu("no2", 0.15, "dmesh")
    history = trained.windowing.history_of(trained.test.flat_series(), 3)
    benchmark(
        lambda: dspu.anneal(
            trained.windowing.observed_index,
            history,
            duration_ns=10000.0,
            sync_interval_ns=1000.0,
        )
    )
    for name, entry in data.items():
        sync = np.asarray(entry["sync_ns"], dtype=float)
        curve = np.asarray(entry["rmse"])
        at_200 = curve[np.argmin(np.abs(sync - 200.0))]
        best_fast = curve[sync <= 500.0].min()
        assert at_200 <= best_fast * 1.35, (name, at_200, best_fast)
