"""Ablations of the decomposition design choices (beyond the paper).

DESIGN.md calls out four design decisions in the Fig. 5 pipeline; each is
ablated here on the traffic workload:

* **fine-tune method** — CONCORD closed-form refit vs the paper's SGD
  regression vs no refit at all (prune-only);
* **wormhole budget** — how many remote super-connections the accuracy
  needs;
* **capacity slack** — PE headroom that keeps communities whole;
* **anchor degree** — guaranteed couplings from predicted-frame variables
  to the observed frames (the importance-aware pruning fix).
"""

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.decompose import DecompositionConfig, decompose
from repro.experiments import evaluate_equilibrium


@pytest.fixture(scope="module")
def trained(context):
    return context.dense("traffic")


def _score(trained, system):
    return evaluate_equilibrium(
        system.model, trained.windowing, trained.test.flat_series(), max_windows=20
    )


def _config(trained, **overrides):
    base = dict(
        density=0.15,
        pattern="dmesh",
        grid_shape=(3, 3),
        anchor_index=tuple(trained.windowing.target_index.tolist()),
    )
    base.update(overrides)
    return DecompositionConfig(**base)


def test_ablation_finetune_method(benchmark, context, trained):
    """Closed-form CONCORD refit should beat prune-only; the SGD path is
    the slow reference implementation."""
    results = {}
    for method in ("closed_form", "none", "sgd"):
        config = _config(
            trained,
            finetune_method=method,
            finetune=TrainingConfig(epochs=8, lr=0.02),
        )
        system = decompose(trained.model, trained.samples, config)
        results[method] = _score(trained, system)
    benchmark(
        lambda: decompose(
            trained.model, trained.samples, _config(trained)
        )
    )

    print("\n=== Ablation: fine-tune method (traffic, D=0.15, DMesh) ===")
    for method, rmse in results.items():
        print(f"  {method:12s} RMSE {rmse:.4f}")
    assert results["closed_form"] <= results["none"] * 1.02


def test_ablation_wormhole_budget(benchmark, context, trained):
    """Wormholes carry the rare remote couplings; removing them entirely
    must not help."""
    results = {}
    for budget in (0, 1, 3, 6):
        config = _config(trained, wormhole_budget=budget)
        system = decompose(trained.model, trained.samples, config)
        results[budget] = _score(trained, system)
    benchmark(
        lambda: decompose(
            trained.model, trained.samples, _config(trained, wormhole_budget=3)
        )
    )

    print("\n=== Ablation: wormhole budget ===")
    for budget, rmse in results.items():
        print(f"  budget {budget}: RMSE {rmse:.4f}")
    assert min(results[3], results[6]) <= results[0] * 1.05


def test_ablation_capacity_slack(benchmark, context, trained):
    """Zero slack fragments communities to fill PEs exactly; headroom
    should help (or at least not hurt much)."""
    results = {}
    for slack in (1.0, 1.25, 1.5, 2.0):
        config = _config(trained, capacity_slack=slack)
        system = decompose(trained.model, trained.samples, config)
        results[slack] = _score(trained, system)
    benchmark(
        lambda: decompose(
            trained.model, trained.samples, _config(trained, capacity_slack=1.5)
        )
    )

    print("\n=== Ablation: PE capacity slack ===")
    for slack, rmse in results.items():
        print(f"  slack {slack:.2f}: RMSE {rmse:.4f}")
    assert min(results[1.5], results[2.0]) <= results[1.0] * 1.1


def test_ablation_anchor_degree(benchmark, context, trained):
    """The importance-aware pruning fix: anchoring the predicted frame's
    couplings is what keeps sparse systems predictive."""
    results = {}
    for degree in (0, 1, 3, 6):
        config = _config(trained, anchor_degree=degree)
        if degree == 0:
            config = _config(trained, anchor_index=None, anchor_degree=0)
        system = decompose(trained.model, trained.samples, config)
        results[degree] = _score(trained, system)
    benchmark(
        lambda: decompose(
            trained.model, trained.samples, _config(trained, anchor_degree=3)
        )
    )

    print("\n=== Ablation: anchor degree (0 = magnitude-only pruning) ===")
    for degree, rmse in results.items():
        print(f"  degree {degree}: RMSE {rmse:.4f}")
    assert results[3] <= results[0] * 1.02
