"""Fig. 13 — RMSE vs matrix density under dynamic Gaussian noise.

Dynamic noise with standard deviation n in {0, 5, 10, 15}% is injected at
both nodes and coupling units (Sec. V.G).  The expected behaviour is the
paper's: "the impact of dynamic noise is not significant" — curves shift
mildly upward with n while preserving the density trend.
"""

import numpy as np
import pytest

from repro.experiments import fig13_data, format_noise_sweep


@pytest.fixture(scope="module")
def data(context):
    return fig13_data(context)


def test_fig13_noise_robustness(benchmark, context, data):
    trained = context.dense("no2")
    dspu = context.dspu("no2", 0.15, "dmesh")
    history = trained.windowing.history_of(trained.test.flat_series(), 3)
    benchmark(
        lambda: dspu.anneal(
            trained.windowing.observed_index,
            history,
            duration_ns=10000.0,
            node_noise_std=0.01,
            coupling_noise_std=0.1,
        )
    )

    print("\n=== Fig. 13: RMSE vs density under noise ===")
    print(format_noise_sweep(data))

    for name, entry in data.items():
        clean = np.asarray(entry["curves"][0.0])
        worst = np.asarray(entry["curves"][0.15])
        # Natural noise tolerance: 15% noise costs less than 60% RMSE.
        assert np.mean(worst) <= np.mean(clean) * 1.6, (name,)


def test_fig13_noise_ordering(benchmark, context, data):
    """More noise must not meaningfully help: at laptop scale a few
    percent of noise can act as regularization, so the bound is loose -
    15% noise must not *improve* the mean RMSE by more than 10%."""
    trained = context.dense("traffic")
    dspu = context.dspu("traffic", 0.15, "dmesh")
    history = trained.windowing.history_of(trained.test.flat_series(), 3)
    benchmark(
        lambda: dspu.anneal(
            trained.windowing.observed_index,
            history,
            duration_ns=10000.0,
            coupling_noise_std=0.05,
        )
    )
    for name, entry in data.items():
        levels = sorted(entry["curves"])
        means = [float(np.mean(entry["curves"][n])) for n in levels]
        assert means[-1] >= means[0] * 0.90, (name, means)
