"""Fig. 11 — best RMSE vs inference latency (annealing time).

Temporal & Spatial co-annealing trades annealing time for accuracy:
the RMSE falls sharply with latency and then flattens past an inflection
point.  (Our latency axis is stretched ~2.5x relative to the paper's
because the simulated node time constant is paired with the 200 ns switch
interval; see EXPERIMENTS.md.)
"""

import numpy as np
import pytest

from repro.experiments import fig11_data, format_latency_sweep


@pytest.fixture(scope="module")
def data(context):
    return fig11_data(context)


def test_fig11_latency_sweep(benchmark, context, data):
    trained = context.dense("traffic")
    dspu = context.dspu("traffic", 0.15, "dmesh")
    history = trained.windowing.history_of(trained.test.flat_series(), 3)
    benchmark(
        lambda: dspu.anneal(
            trained.windowing.observed_index, history, duration_ns=10000.0
        )
    )

    print("\n=== Fig. 11: best RMSE vs inference latency ===")
    print(format_latency_sweep(data))

    for name, entry in data.items():
        curve = entry["rmse"]
        # Longest-latency accuracy beats the shortest-latency accuracy.
        assert curve[-1] < curve[0], (name, curve)


def test_fig11_sharp_then_flat(benchmark, context, data):
    """Most of the improvement should land in the first half of the sweep
    (the sharp-decline-then-inflection shape)."""
    benchmark(lambda: context.dsgl_rmse("no2", 0.15, "dmesh"))
    sharp_shaped = 0
    for entry in data.values():
        curve = np.asarray(entry["rmse"])
        total_gain = curve[0] - curve.min()
        mid = len(curve) // 2
        early_gain = curve[0] - curve[:mid + 1].min()
        if total_gain <= 0 or early_gain >= 0.5 * total_gain:
            sharp_shaped += 1
    assert sharp_shaped >= len(data) - 2
