"""Table IV — multi-dimensional datasets (CA housing, climate).

Nodes carry multiple features (6 for housing, 12 for climate); each
(node, feature) pair becomes one dynamical-system variable.  Expected
shape: DS-GL matches or beats the GNNs on RMSE while being orders of
magnitude faster (annealing microseconds vs numpy-inference milliseconds).
"""

import pytest

from repro.experiments import GNN_BASELINES, format_table4, table4_data


@pytest.fixture(scope="module")
def data(context):
    return table4_data(context)


def test_tab4_multidim(benchmark, context, data):
    trained = context.dense("ca_housing")
    dspu = context.dspu("ca_housing", 0.15, "dmesh")
    history = trained.windowing.history_of(trained.test.flat_series(), 3)
    benchmark(
        lambda: dspu.anneal(
            trained.windowing.observed_index, history, duration_ns=10000.0
        )
    )

    print("\n=== Table IV: multi-dimensional datasets ===")
    print(format_table4(data))

    for name, row in data.items():
        for method, metrics in row.items():
            assert 0.0 < metrics["rmse"] < 1.0, (name, method)
            assert metrics["latency_us"] > 0.0


def test_tab4_dsgl_competitive_accuracy(benchmark, context, data):
    benchmark(lambda: context.dense("climate").model.density)
    for name, row in data.items():
        best_gnn = min(row[b]["rmse"] for b in GNN_BASELINES)
        assert row["DS-GL"]["rmse"] <= best_gnn * 1.35, (
            name,
            row["DS-GL"]["rmse"],
            best_gnn,
        )


def test_tab4_dsgl_latency_advantage(benchmark, context, data):
    """DS-GL annealing time must be far below the measured wall-clock GNN
    inference (the paper reports 10^3x-10^4x)."""
    trained = context.dense("climate")
    dspu = context.dspu("climate", 0.15, "dmesh")
    history = trained.windowing.history_of(trained.test.flat_series(), 3)
    benchmark(
        lambda: dspu.anneal(
            trained.windowing.observed_index, history, duration_ns=5000.0
        )
    )
    for name, row in data.items():
        slowest_gnn = max(row[b]["latency_us"] for b in GNN_BASELINES)
        assert row["DS-GL"]["latency_us"] * 10.0 < slowest_gnn, (name,)
