"""Performance harness for the GNN baseline stack (``repro bench --suite nn``).

The paper's headline speedups are ratios of annealing latency to GNN
baseline latency, so the baseline side needs the same benchmarked,
regression-gated treatment the annealing engine gets from
:mod:`repro.perf`.  This suite times the baseline *fast path* — float32
training, the allocation-lean backward, fused ops, and cached
CouplingOperator graph propagation — against the historical float64
dense path, and writes ``BENCH_nn.json``:

* **train epoch** — full training epochs of GraphWaveNet on the bundled
  synthetic traffic dataset, float64 dense vs float32 + cached graph
  support (and a float32-only variant isolating the dtype effect),
  with backward-pass gradient-buffer allocation counts from
  :func:`repro.nn.grad_write_stats`,
* **single-window inference** — the Table III latency quantity,
* **graph conv** — dense autograd matmuls vs the cached sparse
  (CSR-backed) :class:`~repro.nn.GraphSupport` propagation on a large
  sparse graph, forward + backward at matched dtype.

Every comparison reuses the shared timing helpers of :mod:`repro.perf`
(full per-repeat sample lists; best-of headline) and runs under
:func:`repro.obs.metrics_enabled`, embedding the ``gnn.*`` metric
snapshot in the payload.

The float32 rows are *not* bit-comparable to their float64 baselines;
their ``max_abs_diff`` records the observed accuracy gap (see the
EXPERIMENTS.md caveat).  The graph-conv row compares at matched dtype,
where agreement is at rounding level.
"""

from __future__ import annotations

import platform

import numpy as np

from . import obs
from .datasets import load_dataset
from .datasets.base import SpatioTemporalDataset
from .gnn import GNNTrainConfig, GNNTrainer, GraphWaveNet, default_adjacency
from .gnn.trainer import build_windows
from .nn import GraphConv, GraphSupport, Tensor, no_grad
from .nn.tensor import grad_write_stats, reset_grad_write_stats
from .perf import _timed_comparison

__all__ = [
    "random_adjacency",
    "bench_graphconv",
    "bench_train_epoch",
    "bench_inference",
    "run_nn_benchmarks",
]


def random_adjacency(n: int, density: float, seed: int = 0) -> np.ndarray:
    """A random row-normalized directed adjacency at a target density.

    The graph-conv benchmark needs what real sensor graphs look like
    after :func:`~repro.datasets.graphs.normalized_adjacency`: asymmetric,
    non-negative, rows summing to one — exactly what
    ``CouplingOperator(symmetric=False)`` exists for.
    """
    if not 0 < density <= 1:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    weights = rng.random((n, n)) * (rng.random((n, n)) < density)
    np.fill_diagonal(weights, 1.0)  # self-loops keep every row non-empty
    return weights / weights.sum(axis=1, keepdims=True)


def _traffic(size: str = "small") -> SpatioTemporalDataset:
    return load_dataset("traffic", size=size)


def bench_graphconv(
    n: int,
    density: float,
    channels: int = 16,
    batch: int = 4,
    order: int = 2,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Dense autograd matmuls vs cached sparse propagation, fwd + bwd.

    Both sides run at float64 on the *same* adjacency values, so
    ``max_abs_diff`` is a rounding-level correctness bound, and the
    speedup isolates the storage/backend choice.
    """
    rng = np.random.default_rng(seed)
    adjacency = random_adjacency(n, density, seed=seed)
    conv = GraphConv(channels, channels, order=order, rng=np.random.default_rng(1))
    x_data = rng.standard_normal((batch, n, channels))
    support = GraphSupport(adjacency, backend="sparse")
    outputs: dict[str, np.ndarray] = {}

    def run(adjacency_like, key: str) -> None:
        conv.zero_grad()
        x = Tensor(x_data, requires_grad=True)
        out = conv(x, adjacency_like)
        out.sum().backward()
        outputs[key] = out.numpy()

    comparison = _timed_comparison(
        lambda: run(adjacency, "baseline"),
        lambda: run(support, "optimized"),
        repeats,
    )
    max_abs_diff = float(
        np.max(np.abs(outputs["baseline"] - outputs["optimized"]))
    )
    return {
        "name": f"nn.graphconv[sparse,order={order}]",
        "n": n,
        "density": density,
        "channels": channels,
        "batch": batch,
        "backend": support.backend,
        "max_abs_diff": max_abs_diff,
        **comparison,
    }


def _epoch_runner(
    dataset: SpatioTemporalDataset,
    adjacency: np.ndarray,
    hidden: int,
    epochs: int,
    batch_size: int,
    dtype: str | None,
    graph_backend: str | None,
    sink: dict,
    key: str,
):
    """A closure training a fresh GraphWaveNet for ``epochs`` epochs.

    Fresh model + trainer per call keeps repeats independent and
    deterministic; loss and gradient-allocation stats of the latest run
    land in ``sink[key]``.
    """
    train, _val, _test = dataset.split()

    def run() -> None:
        model = GraphWaveNet(
            dataset.num_nodes, adjacency, hidden=hidden, seed=0,
            graph_backend=graph_backend,
        )
        trainer = GNNTrainer(
            model,
            GNNTrainConfig(
                window=6, epochs=epochs, batch_size=batch_size, seed=0,
                dtype=dtype,
            ),
        )
        reset_grad_write_stats()
        trainer.fit(train, None)
        writes, copies = grad_write_stats()
        sink[key] = {
            "train_loss": trainer.history[-1][0],
            "grad_writes": writes,
            "grad_copies": copies,
        }

    return run


def bench_train_epoch(
    dataset: SpatioTemporalDataset,
    hidden: int = 32,
    epochs: int = 1,
    batch_size: int = 32,
    repeats: int = 3,
    graph_backend: str | None = "auto",
    name: str = "fastpath",
) -> dict:
    """Training epochs: float64 dense (historical) vs float32 fast path.

    ``graph_backend=None`` benchmarks the dtype change alone.  The per-run
    gradient-buffer write/copy counters quantify the allocation-lean
    backward (copies avoided = fraction of first-writes that took
    ownership of a temporary instead of allocating).
    """
    adjacency = default_adjacency(dataset)
    sink: dict[str, dict] = {}
    baseline = _epoch_runner(
        dataset, adjacency, hidden, epochs, batch_size,
        dtype=None, graph_backend=None, sink=sink, key="baseline",
    )
    optimized = _epoch_runner(
        dataset, adjacency, hidden, epochs, batch_size,
        dtype="float32", graph_backend=graph_backend, sink=sink, key="optimized",
    )
    comparison = _timed_comparison(baseline, optimized, repeats)
    loss64 = sink["baseline"]["train_loss"]
    loss32 = sink["optimized"]["train_loss"]
    return {
        "name": f"nn.train_epoch[GWN,{name}]",
        "n": int(dataset.num_nodes),
        "density": float(np.count_nonzero(adjacency)) / adjacency.size,
        "hidden": hidden,
        "epochs": epochs,
        "batch_size": batch_size,
        "graph_backend": graph_backend,
        # Cross-dtype comparison: this is the float32 accuracy gap on the
        # final epoch's train loss, not a rounding bound.
        "max_abs_diff": abs(loss64 - loss32),
        "train_loss_float64": loss64,
        "train_loss_float32": loss32,
        "grad_stats": {
            "baseline": sink["baseline"],
            "optimized": sink["optimized"],
        },
        **comparison,
    }


def bench_inference(
    dataset: SpatioTemporalDataset,
    hidden: int = 32,
    repeats: int = 30,
    graph_backend: str | None = "auto",
) -> dict:
    """Single-window inference latency, float64 dense vs float32 cached."""
    adjacency = default_adjacency(dataset)
    _train, _val, test = dataset.split()
    window = 6
    X64, _ = build_windows(test.series, window)
    sample64 = np.ascontiguousarray(X64[:1])
    sample32 = sample64.astype(np.float32)

    model64 = GraphWaveNet(dataset.num_nodes, adjacency, hidden=hidden, seed=0)
    model64.eval()
    model32 = GraphWaveNet(
        dataset.num_nodes, adjacency, hidden=hidden, seed=0,
        graph_backend=graph_backend,
    )
    model32.astype(np.float32)
    model32.eval()

    with no_grad():
        prediction64 = model64(Tensor(sample64)).numpy()
        prediction32 = model32(Tensor(sample32)).numpy()

        def baseline() -> None:
            model64(Tensor(sample64))

        def optimized() -> None:
            model32(Tensor(sample32))

        baseline()  # warm-up (adjacency caches, BLAS threads)
        optimized()
        comparison = _timed_comparison(baseline, optimized, repeats)
    return {
        "name": "nn.infer_window[GWN]",
        "n": int(dataset.num_nodes),
        "density": float(np.count_nonzero(adjacency)) / adjacency.size,
        "hidden": hidden,
        "window": window,
        "graph_backend": graph_backend,
        # Untrained same-seed weights: the float32 prediction gap.
        "max_abs_diff": float(np.max(np.abs(prediction64 - prediction32))),
        **comparison,
    }


def run_nn_benchmarks(
    smoke: bool = False,
    batch: int = 32,
    repeats: int = 3,
) -> dict:
    """Run the GNN baseline benchmark suite.

    Args:
        smoke: Tiny sizes (seconds, for CI smoke runs).
        batch: Training mini-batch size.
        repeats: Best-of repeats per timing.

    Returns:
        A JSON-serializable payload (see ``BENCH_nn.json``) embedding a
        ``gnn.*`` metrics snapshot collected while the benchmarks ran.
    """
    with obs.metrics_enabled() as registry:
        dataset = _traffic("small")
        results = []
        if smoke:
            results.append(
                bench_train_epoch(
                    dataset, hidden=8, epochs=1, batch_size=batch,
                    repeats=repeats, graph_backend="auto", name="fastpath",
                )
            )
            results.append(
                bench_inference(
                    dataset, hidden=8, repeats=max(repeats, 10),
                )
            )
            results.append(
                bench_graphconv(
                    n=160, density=0.05, channels=8, batch=2, repeats=repeats
                )
            )
        else:
            results.append(
                bench_train_epoch(
                    dataset, hidden=32, epochs=2, batch_size=batch,
                    repeats=repeats, graph_backend="auto", name="fastpath",
                )
            )
            results.append(
                bench_train_epoch(
                    dataset, hidden=32, epochs=2, batch_size=batch,
                    repeats=repeats, graph_backend=None, name="float32-only",
                )
            )
            results.append(
                bench_inference(dataset, hidden=32, repeats=max(repeats, 30))
            )
            results.append(
                bench_graphconv(
                    n=500, density=0.02, channels=16, batch=4, repeats=repeats
                )
            )
        snapshot = registry.snapshot()
    return {
        "benchmark": "nn_fast_path",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "smoke": smoke,
        "repeats": repeats,
        "results": results,
        "metrics": snapshot,
    }
