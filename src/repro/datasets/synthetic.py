"""Synthetic spatio-temporal processes for the seven evaluation applications.

The paper evaluates on proprietary/Kaggle datasets (traffic in Japan, the
Chinese Air Quality Reanalysis, CDC COVID tracker, NASDAQ tickers, Zillow
housing, world weather).  None are redistributable here, so each application
is replaced by a *seeded generative process on a sensor graph* that matches
the statistical character the corresponding GL task exploits:

* **traffic** — daily double-peaked (rush hour) profiles modulated per node,
  with congestion diffusing to neighboring road segments and AR noise.
* **pm25 / pm10 / no2 / o3** — pollutant fields driven by slowly-varying
  regional emission baselines, graph diffusion (transport), a shared
  synoptic weather forcing, and, for O3, photochemical anti-correlation
  with NO2 plus a strong diurnal cycle.
* **covid** — stochastic SIR epidemics on the contact graph; the observed
  series is daily new infections, producing the multi-wave bursty shape of
  case-increment data.
* **stock** — sector-correlated geometric Brownian motion with a market
  factor; communities play the role of sectors.

All generators return min-max normalized series in [0, 1], matching the
RMSE scale of the paper's Tables/Figures.  Multi-dimensional datasets
(Sec. V.H) live in :func:`make_ca_housing` and :func:`make_climate`.
"""

from __future__ import annotations

import numpy as np

from .base import SpatioTemporalDataset
from .graphs import community_geometric_graph, normalized_adjacency

__all__ = [
    "minmax_normalize",
    "make_traffic",
    "make_air_quality",
    "make_covid",
    "make_stock",
    "make_ca_housing",
    "make_climate",
]


def minmax_normalize(series: np.ndarray) -> np.ndarray:
    """Scale a series to [0, 1] over its global range (per feature)."""
    series = np.asarray(series, dtype=float)
    if series.ndim == 2:
        lo, hi = series.min(), series.max()
        if hi - lo < 1e-12:
            return np.zeros_like(series)
        return (series - lo) / (hi - lo)
    out = np.empty_like(series)
    for f in range(series.shape[2]):
        lo, hi = series[..., f].min(), series[..., f].max()
        out[..., f] = 0.0 if hi - lo < 1e-12 else (series[..., f] - lo) / (hi - lo)
    return out


def _diffusion_step(A_norm: np.ndarray, x: np.ndarray, mixing: float) -> np.ndarray:
    """One step of graph diffusion: convex mix of self and neighborhood."""
    return (1.0 - mixing) * x + mixing * (A_norm @ x)


def make_traffic(
    num_nodes: int = 72,
    num_frames: int = 480,
    frames_per_day: int = 24,
    seed: int = 7,
) -> SpatioTemporalDataset:
    """Traffic-flow prediction dataset (application 1).

    Each node is a road sensor with a baseline daily profile containing
    morning and evening rush peaks; congestion shocks appear at random
    nodes and diffuse along the road graph before dissipating.
    """
    rng = np.random.default_rng(seed)
    net = community_geometric_graph(num_nodes, num_communities=6, rng=rng)
    A = normalized_adjacency(net.adjacency, self_loops=False)

    hours = np.arange(num_frames) % frames_per_day
    t_of_day = hours / frames_per_day
    morning = np.exp(-((t_of_day - 8 / 24) ** 2) / (2 * (1.5 / 24) ** 2))
    evening = np.exp(-((t_of_day - 18 / 24) ** 2) / (2 * (2.0 / 24) ** 2))
    daily = 0.3 + 0.9 * morning + 0.7 * evening

    node_gain = rng.uniform(0.5, 1.5, size=num_nodes)
    node_phase = rng.normal(0.0, 0.6, size=num_nodes)

    series = np.zeros((num_frames, num_nodes))
    congestion = np.zeros(num_nodes)
    for t in range(num_frames):
        base = node_gain * np.roll(daily, 0)[t]
        base = base * (1.0 + 0.15 * np.sin(2 * np.pi * t_of_day[t] + node_phase))
        # Congestion shocks arrive and diffuse over the road network.
        if rng.random() < 0.15:
            congestion[rng.integers(num_nodes)] += rng.uniform(0.5, 1.5)
        congestion = 0.85 * _diffusion_step(A, congestion, mixing=0.4)
        series[t] = base + congestion + rng.normal(0, 0.04, size=num_nodes)
    return SpatioTemporalDataset(
        name="traffic",
        series=minmax_normalize(series),
        network=net,
        description=(
            "Synthetic stand-in for the Japan traffic-flow dataset [20]: "
            "rush-hour daily profiles + diffusing congestion shocks."
        ),
    )


def make_air_quality(
    pollutant: str,
    num_nodes: int = 64,
    num_frames: int = 480,
    frames_per_day: int = 24,
    seed: int | None = None,
) -> SpatioTemporalDataset:
    """Air-quality dataset family (application 2): PM25, PM10, NO2, O3.

    Shared mechanics: regional emission baselines (community-level), graph
    transport, a synoptic AR(1) weather factor that modulates everything,
    and pollutant-specific diurnal behaviour.
    """
    pollutant = pollutant.lower()
    profiles = {
        "pm25": dict(diurnal=0.15, weather=0.5, transport=0.45, noise=0.05, seed=11),
        "pm10": dict(diurnal=0.2, weather=0.55, transport=0.4, noise=0.07, seed=13),
        "no2": dict(diurnal=0.6, weather=0.3, transport=0.3, noise=0.05, seed=17),
        "o3": dict(diurnal=0.9, weather=0.25, transport=0.35, noise=0.04, seed=19),
    }
    if pollutant not in profiles:
        raise ValueError(f"unknown pollutant {pollutant!r}; pick from {sorted(profiles)}")
    p = profiles[pollutant]
    rng = np.random.default_rng(p["seed"] if seed is None else seed)
    net = community_geometric_graph(num_nodes, num_communities=5, rng=rng)
    A = normalized_adjacency(net.adjacency, self_loops=False)

    emission = rng.uniform(0.4, 1.2, size=net.n)
    emission += 0.3 * rng.standard_normal(np.max(net.communities) + 1)[net.communities]
    t_of_day = (np.arange(num_frames) % frames_per_day) / frames_per_day
    if pollutant == "o3":
        # Photochemical: peaks mid-afternoon, vanishes at night.
        diurnal_shape = np.clip(np.sin(np.pi * (t_of_day - 0.25) / 0.6), 0, None)
    else:
        # Traffic-linked: morning/evening maxima.
        diurnal_shape = 0.5 + 0.5 * np.cos(2 * np.pi * (t_of_day - 0.35))

    weather = 0.0
    x = emission.copy()
    series = np.zeros((num_frames, net.n))
    for t in range(num_frames):
        weather = 0.92 * weather + rng.normal(0, 0.25)
        forcing = emission * (1.0 + p["diurnal"] * diurnal_shape[t])
        x = _diffusion_step(A, x, mixing=p["transport"])
        x = 0.75 * x + 0.25 * forcing
        level = x * (1.0 + p["weather"] * np.tanh(weather))
        if pollutant == "o3":
            # O3 is titrated by fresh NO: suppress where emission is high
            # at night.
            level = level * (0.6 + 0.4 * diurnal_shape[t])
        series[t] = level + rng.normal(0, p["noise"], size=net.n)
    return SpatioTemporalDataset(
        name=pollutant,
        series=minmax_normalize(series),
        network=net,
        description=(
            f"Synthetic stand-in for the {pollutant.upper()} series of the "
            "Chinese Air Quality Reanalysis [22]: regional emissions, graph "
            "transport, synoptic weather, diurnal chemistry."
        ),
    )


def make_covid(
    num_nodes: int = 60,
    num_frames: int = 420,
    seed: int = 23,
) -> SpatioTemporalDataset:
    """Pandemic-progression dataset (application 3): daily case increments.

    Stochastic SIR on the mobility graph with seasonally varying contact
    rate and reseeding, producing successive epidemic waves like the CDC
    COVID tracker increments.
    """
    rng = np.random.default_rng(seed)
    net = community_geometric_graph(num_nodes, num_communities=5, rng=rng)
    A = normalized_adjacency(net.adjacency, self_loops=False)

    population = rng.uniform(0.5e5, 5e5, size=net.n)
    susceptible = population.copy()
    infected = np.zeros(net.n)
    seeds = rng.choice(net.n, size=3, replace=False)
    infected[seeds] = 50.0
    susceptible -= infected

    gamma = 0.12  # recovery rate
    series = np.zeros((num_frames, net.n))
    for t in range(num_frames):
        season = 1.0 + 0.45 * np.sin(2 * np.pi * t / 180.0 + 1.0)
        beta = 0.16 * season
        pressure = infected / population
        pressure = _diffusion_step(A, pressure, mixing=0.35)
        new_cases = beta * susceptible * pressure
        new_cases = rng.poisson(np.maximum(new_cases, 0.0)).astype(float)
        new_cases = np.minimum(new_cases, susceptible)
        susceptible -= new_cases
        infected += new_cases - gamma * infected
        infected = np.maximum(infected, 0.0)
        if rng.random() < 0.02:  # importation events reseed the epidemic
            k = rng.integers(net.n)
            reseed = min(20.0, susceptible[k])
            infected[k] += reseed
            susceptible[k] -= reseed
        series[t] = new_cases
    # Case increments are heavy-tailed; report on a log1p scale like
    # standard epidemic-forecasting practice, then min-max normalize.
    return SpatioTemporalDataset(
        name="covid",
        series=minmax_normalize(np.log1p(series)),
        network=net,
        description=(
            "Synthetic stand-in for CDC COVID-19 daily case increments [7]: "
            "stochastic SIR waves on a mobility graph."
        ),
    )


def make_stock(
    num_nodes: int = 64,
    num_frames: int = 420,
    seed: int = 29,
) -> SpatioTemporalDataset:
    """Stock-price dataset (application 4).

    Log-prices follow a market factor + sector factors (communities are
    sectors) + idiosyncratic GBM, plus *sector cointegration*: each stock
    mean-reverts toward its sector's average level (the pairs-trading
    structure of co-listed equities).  The cointegration is what makes
    cross-stock couplings genuinely predictive rather than pure
    correlation — knowing a stock's peers constrains where it reverts to.
    """
    rng = np.random.default_rng(seed)
    net = community_geometric_graph(
        num_nodes, num_communities=6, extra_intra_prob=0.35, rng=rng
    )
    num_sectors = int(np.max(net.communities)) + 1
    market_beta = rng.uniform(0.6, 1.4, size=net.n)
    sector_beta = rng.uniform(0.4, 1.0, size=net.n)
    drift = rng.normal(2e-4, 2e-4, size=net.n)
    reversion = rng.uniform(0.08, 0.2, size=net.n)
    spread = rng.normal(0.0, 0.3, size=net.n)  # equilibrium offset

    log_price = rng.uniform(2.0, 4.5, size=net.n)
    series = np.zeros((num_frames, net.n))
    for t in range(num_frames):
        market = rng.normal(0, 0.011)
        sector = rng.normal(0, 0.009, size=num_sectors)
        idio = rng.normal(0, 0.012, size=net.n)
        sector_mean = np.zeros(num_sectors)
        for s in range(num_sectors):
            members = net.communities == s
            sector_mean[s] = log_price[members].mean()
        cointegration = reversion * (
            sector_mean[net.communities] + spread - log_price
        )
        log_price = (
            log_price
            + drift
            + cointegration
            + market_beta * market
            + sector_beta * sector[net.communities]
            + idio
        )
        series[t] = log_price
    return SpatioTemporalDataset(
        name="stock",
        series=minmax_normalize(series),
        network=net,
        description=(
            "Synthetic stand-in for NASDAQ daily prices [28]: market + "
            "sector factor GBM with sector-community correlation graph."
        ),
    )


_HOUSING_FEATURES = (
    "median_income",
    "house_age",
    "avg_rooms",
    "avg_occupancy",
    "proximity_coast",
    "median_value",
)


def make_ca_housing(
    num_nodes: int = 48,
    num_frames: int = 260,
    seed: int = 31,
) -> SpatioTemporalDataset:
    """Multi-dimensional housing dataset (Sec. V.H, CA housing stand-in).

    Nodes are neighborhoods with 6 features each; the target feature
    (median value) is a smooth function of the others plus spatially
    correlated appreciation over time, so cross-feature *and* cross-node
    structure both matter.
    """
    rng = np.random.default_rng(seed)
    net = community_geometric_graph(num_nodes, num_communities=4, rng=rng)
    A = normalized_adjacency(net.adjacency, self_loops=False)

    income = rng.uniform(2.0, 10.0, size=net.n)
    income = 0.6 * income + 0.4 * (A @ income)  # spatially smooth wealth
    age = rng.uniform(5.0, 50.0, size=net.n)
    rooms = 3.0 + 0.45 * income + rng.normal(0, 0.4, size=net.n)
    occupancy = rng.uniform(2.0, 4.0, size=net.n)
    coast = np.exp(-3.0 * net.coordinates[:, 0])  # west edge = coast

    frames = np.zeros((num_frames, net.n, len(_HOUSING_FEATURES)))
    appreciation = np.zeros(net.n)
    for t in range(num_frames):
        appreciation = 0.95 * _diffusion_step(A, appreciation, 0.3) + rng.normal(
            0, 0.01, size=net.n
        )
        cycle = 1.0 + 0.1 * np.sin(2 * np.pi * t / 130.0)
        value = (
            0.9 * income + 2.5 * coast - 0.02 * age + 0.3 * rooms
        ) * cycle * (1.0 + appreciation)
        value = value + rng.normal(0, 0.08, size=net.n)
        frames[t] = np.stack(
            [income, age, rooms, occupancy, coast, value], axis=1
        )
    return SpatioTemporalDataset(
        name="ca_housing",
        series=minmax_normalize(frames),
        network=net,
        description=(
            "Synthetic stand-in for Zillow CA house prices [26]: 6 features "
            "per neighborhood, spatially smooth appreciation."
        ),
        feature_names=_HOUSING_FEATURES,
    )


_CLIMATE_FEATURES = (
    "temperature",
    "humidity",
    "wind_speed",
    "wind_gust",
    "pressure",
    "precipitation",
    "cloud_cover",
    "visibility",
    "uv_index",
    "dew_point",
    "feels_like",
    "air_quality_index",
)


def make_climate(
    num_nodes: int = 40,
    num_frames: int = 365,
    seed: int = 37,
) -> SpatioTemporalDataset:
    """Multi-dimensional climate dataset (Sec. V.H, 12 features per node).

    Cities on a graph; temperature follows latitude + season + synoptic
    waves; the other 11 features are physically-linked transforms
    (dew point from temperature and humidity, feels-like from wind, etc.),
    giving the dense cross-feature couplings the paper exploits.
    """
    rng = np.random.default_rng(seed)
    net = community_geometric_graph(num_nodes, num_communities=5, rng=rng)
    A = normalized_adjacency(net.adjacency, self_loops=False)

    latitude = net.coordinates[:, 1]  # 0 = equator-ish, 1 = polar-ish
    base_temp = 30.0 - 35.0 * latitude

    synoptic = np.zeros(net.n)
    humidity_state = rng.uniform(0.4, 0.8, size=net.n)
    frames = np.zeros((num_frames, net.n, len(_CLIMATE_FEATURES)))
    for t in range(num_frames):
        season = 12.0 * np.sin(2 * np.pi * (t / 365.0) - np.pi / 2) * (
            0.3 + latitude
        )
        synoptic = 0.9 * _diffusion_step(A, synoptic, 0.4) + rng.normal(
            0, 1.2, size=net.n
        )
        temperature = base_temp + season + synoptic
        humidity_state = np.clip(
            0.9 * humidity_state + 0.1 * rng.uniform(0.2, 1.0, size=net.n)
            - 0.004 * synoptic,
            0.05,
            1.0,
        )
        humidity = 100.0 * humidity_state
        wind = np.abs(rng.normal(4.0, 2.0, size=net.n) + 0.3 * np.abs(synoptic))
        gust = wind * rng.uniform(1.2, 1.8, size=net.n)
        pressure = 1013.0 - 0.8 * synoptic + rng.normal(0, 1.0, size=net.n)
        precipitation = np.maximum(
            0.0, (humidity_state - 0.6) * 20.0 + rng.normal(0, 2.0, size=net.n)
        )
        cloud = np.clip(humidity_state * 100.0 + rng.normal(0, 8.0, size=net.n), 0, 100)
        visibility = np.clip(20.0 - 0.12 * cloud - 0.5 * precipitation, 0.5, 20.0)
        uv = np.clip(
            (temperature - 5.0) / 4.0 * (1.0 - cloud / 150.0), 0.0, 11.0
        )
        dew_point = temperature - (100.0 - humidity) / 5.0
        feels_like = temperature - 0.7 * np.sqrt(wind) + 0.08 * (humidity - 50.0) / 10.0
        aqi = np.clip(
            60.0 - 2.0 * wind + 0.4 * np.abs(synoptic) * 10.0 + rng.normal(0, 5.0, size=net.n),
            5.0,
            250.0,
        )
        frames[t] = np.stack(
            [
                temperature,
                humidity,
                wind,
                gust,
                pressure,
                precipitation,
                cloud,
                visibility,
                uv,
                dew_point,
                feels_like,
                aqi,
            ],
            axis=1,
        )
    return SpatioTemporalDataset(
        name="climate",
        series=minmax_normalize(frames),
        network=net,
        description=(
            "Synthetic stand-in for the world-weather repository [10]: 12 "
            "physically-linked features per city."
        ),
        feature_names=_CLIMATE_FEATURES,
    )
