"""Graph generators with the structure of real-world GL graphs.

DS-GL's decomposition leans on two properties of real graphs the paper calls
out: extreme sparsity and *community structure* ("communities consist of
nodes with dense interconnects but with sparse connections to the external
nodes").  The generators here produce spatial sensor networks with both
properties: nodes placed in the plane in clustered regions, connected by
distance (geometric edges) plus planted intra-community edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["SensorNetwork", "community_geometric_graph", "normalized_adjacency"]


@dataclass(frozen=True)
class SensorNetwork:
    """A spatial graph of sensor nodes.

    Attributes:
        adjacency: Symmetric non-negative ``(N, N)`` weight matrix.
        coordinates: ``(N, 2)`` node positions in the unit square.
        communities: ``(N,)`` integer community labels.
    """

    adjacency: np.ndarray
    coordinates: np.ndarray
    communities: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.adjacency.shape[0]

    def graph(self) -> nx.Graph:
        """As a networkx graph with edge weights."""
        g = nx.from_numpy_array(self.adjacency)
        for i, (x, y) in enumerate(self.coordinates):
            g.nodes[i]["pos"] = (float(x), float(y))
            g.nodes[i]["community"] = int(self.communities[i])
        return g


def community_geometric_graph(
    num_nodes: int,
    num_communities: int = 4,
    radius: float = 0.22,
    cluster_spread: float = 0.08,
    extra_intra_prob: float = 0.15,
    rng: np.random.Generator | None = None,
) -> SensorNetwork:
    """Sample a clustered geometric sensor network.

    Community centers are spread over the unit square; nodes scatter around
    their center; edges connect nodes within ``radius`` with weight
    decaying in distance, plus random intra-community edges that densify
    the communities.  The construction guarantees a connected graph by
    chaining community centers.

    Args:
        num_nodes: Total nodes ``N``.
        num_communities: Number of planted communities.
        radius: Geometric connection radius.
        cluster_spread: Standard deviation of node scatter around centers.
        extra_intra_prob: Probability of extra intra-community edges.
        rng: Randomness source.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if num_communities < 1 or num_communities > num_nodes:
        raise ValueError("num_communities must be in [1, num_nodes]")
    rng = rng or np.random.default_rng(0)

    # Community centers on a jittered grid so they tile the unit square.
    grid = int(np.ceil(np.sqrt(num_communities)))
    centers = []
    for k in range(num_communities):
        gx, gy = k % grid, k // grid
        centers.append(
            (
                (gx + 0.5) / grid + rng.normal(0, 0.03),
                (gy + 0.5) / grid + rng.normal(0, 0.03),
            )
        )
    centers = np.clip(np.asarray(centers), 0.05, 0.95)

    labels = np.sort(rng.integers(0, num_communities, size=num_nodes))
    coords = centers[labels] + rng.normal(0, cluster_spread, size=(num_nodes, 2))
    coords = np.clip(coords, 0.0, 1.0)

    diff = coords[:, None, :] - coords[None, :, :]
    dist = np.sqrt(np.sum(diff**2, axis=-1))
    adjacency = np.where(dist <= radius, np.exp(-((dist / radius) ** 2)), 0.0)
    np.fill_diagonal(adjacency, 0.0)

    # Densify communities.
    same = labels[:, None] == labels[None, :]
    extra = (rng.random((num_nodes, num_nodes)) < extra_intra_prob) & same
    extra = np.triu(extra, 1)
    extra = extra | extra.T
    adjacency = np.maximum(adjacency, np.where(extra, 0.5, 0.0))
    np.fill_diagonal(adjacency, 0.0)

    adjacency = _connect_components(adjacency, coords)
    return SensorNetwork(adjacency=adjacency, coordinates=coords, communities=labels)


def _connect_components(adjacency: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Bridge disconnected components with their closest node pairs."""
    g = nx.from_numpy_array(adjacency)
    components = [sorted(c) for c in nx.connected_components(g)]
    if len(components) <= 1:
        return adjacency
    adjacency = adjacency.copy()
    base = components[0]
    for other in components[1:]:
        best = None
        best_d = np.inf
        for u in base:
            for v in other:
                d = float(np.linalg.norm(coords[u] - coords[v]))
                if d < best_d:
                    best_d = d
                    best = (u, v)
        assert best is not None
        u, v = best
        adjacency[u, v] = adjacency[v, u] = max(0.2, np.exp(-best_d))
        base = base + other
    return adjacency


def normalized_adjacency(adjacency: np.ndarray, self_loops: bool = True) -> np.ndarray:
    """Symmetric normalization ``D^-1/2 (A [+ I]) D^-1/2`` used by GNNs and
    the diffusion processes."""
    A = np.asarray(adjacency, dtype=float)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("adjacency must be square")
    if self_loops:
        A = A + np.eye(A.shape[0])
    degree = A.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return A * inv_sqrt[:, None] * inv_sqrt[None, :]
