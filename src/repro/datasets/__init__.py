"""Synthetic spatio-temporal datasets standing in for the paper's workloads."""

from .base import SpatioTemporalDataset, chronological_split
from .graphs import SensorNetwork, community_geometric_graph, normalized_adjacency
from .powergrid import PowerGrid, make_powergrid
from .registry import (
    ALL_DATASETS,
    EXTENSION_DATASETS,
    MULTIDIM_DATASETS,
    SCALAR_DATASETS,
    load_dataset,
)
from .synthetic import (
    make_air_quality,
    make_ca_housing,
    make_climate,
    make_covid,
    make_stock,
    make_traffic,
    minmax_normalize,
)

__all__ = [
    "ALL_DATASETS",
    "EXTENSION_DATASETS",
    "MULTIDIM_DATASETS",
    "PowerGrid",
    "SCALAR_DATASETS",
    "SensorNetwork",
    "SpatioTemporalDataset",
    "chronological_split",
    "community_geometric_graph",
    "load_dataset",
    "make_air_quality",
    "make_ca_housing",
    "make_climate",
    "make_covid",
    "make_powergrid",
    "make_stock",
    "make_traffic",
    "minmax_normalize",
    "normalized_adjacency",
]
