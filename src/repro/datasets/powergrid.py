"""Power-grid cascading-failure dataset (the paper's opening motivation).

"These applications span a broad spectrum of critical areas, including
power grid cascading failure prediction..." (Sec. I).  The paper's
evaluation does not include a grid dataset, so this module provides the
natural extension workload: a DC-power-flow simulator over a synthetic
transmission grid with stochastic line outages and load-shedding cascades.
The observable series is per-bus load served; cascades produce correlated,
spatially propagating dips — exactly the structure natural annealing
exploits.

The DC approximation solves ``B' theta = P`` for bus angles ``theta`` with
line flows ``f_ij = b_ij (theta_i - theta_j)``; a line trips when its flow
exceeds capacity, flows redistribute, and overloaded islands shed load.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .base import SpatioTemporalDataset
from .graphs import SensorNetwork, community_geometric_graph
from .synthetic import minmax_normalize

__all__ = ["PowerGrid", "make_powergrid"]


class PowerGrid:
    """A DC-power-flow transmission grid with cascading line outages.

    Attributes:
        network: Bus graph (buses = nodes, lines = edges).
        susceptance: Per-line susceptance magnitudes.
        capacity: Per-line flow limits.
    """

    def __init__(
        self,
        network: SensorNetwork,
        capacity_margin: float = 1.25,
        rng: np.random.Generator | None = None,
    ):
        self.network = network
        self.rng = rng or np.random.default_rng(0)
        graph = network.graph()
        self.edges = [tuple(sorted(e)) for e in graph.edges()]
        self.susceptance = {
            e: 1.0 + float(network.adjacency[e[0], e[1]]) for e in self.edges
        }
        # Lines are rated at a margin above their *mean-load* flow (t=6 is
        # the midpoint of the sinusoidal daily load shape), with a floor so
        # lightly loaded lines are not hair-triggered.  With the default
        # margin the grid is deliberately under-provisioned at the daily
        # peak — a stressed grid whose cascades cluster around peak hours,
        # which is the regime cascading-failure prediction studies.
        mean_flows = self._solve_flows(
            set(self.edges), self._nominal_injections(6)
        )
        self.capacity = {
            e: max(abs(mean_flows.get(e, 0.0)) * capacity_margin, 0.5)
            for e in self.edges
        }

    @property
    def num_buses(self) -> int:
        """Number of buses."""
        return self.network.n

    def _nominal_injections(self, t: int) -> np.ndarray:
        """Net injection per bus: generation (community hubs) minus load."""
        n = self.num_buses
        labels = self.network.communities
        generators = np.zeros(n)
        # The first bus of each community hosts generation.
        for community in np.unique(labels):
            members = np.nonzero(labels == community)[0]
            generators[members[0]] = 1.0
        load_shape = 0.7 + 0.3 * np.sin(2 * np.pi * t / 24.0 - np.pi / 2)
        load = np.full(n, load_shape / n * (n - np.count_nonzero(generators)))
        load[generators > 0] = 0.0
        injection = generators / np.count_nonzero(generators) * load.sum() - load
        return injection - injection.mean()  # balanced system

    def _solve_flows(
        self, live_edges: set[tuple[int, int]], injection: np.ndarray
    ) -> dict[tuple[int, int], float]:
        """DC power flow on the surviving topology, per connected island."""
        n = self.num_buses
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(live_edges)
        flows: dict[tuple[int, int], float] = {}
        for island in nx.connected_components(graph):
            island = sorted(island)
            if len(island) < 2:
                continue
            index = {bus: k for k, bus in enumerate(island)}
            m = len(island)
            B = np.zeros((m, m))
            island_edges = [
                e for e in live_edges if e[0] in index and e[1] in index
            ]
            for a, b in island_edges:
                s = self.susceptance[(a, b)]
                ia, ib = index[a], index[b]
                B[ia, ia] += s
                B[ib, ib] += s
                B[ia, ib] -= s
                B[ib, ia] -= s
            p = injection[island].copy()
            p -= p.mean()  # island-balanced
            # Ground the first bus of the island (slack).
            theta = np.zeros(m)
            theta[1:] = np.linalg.solve(B[1:, 1:], p[1:])
            for a, b in island_edges:
                flows[(a, b)] = self.susceptance[(a, b)] * (
                    theta[index[a]] - theta[index[b]]
                )
        return flows

    def simulate(
        self,
        num_frames: int,
        outage_rate: float = 0.3,
        repair_frames: int = 12,
    ) -> np.ndarray:
        """Run the cascading-failure process; returns per-bus load served.

        Each frame: random line outages arrive, flows re-solve, overloaded
        lines trip (the cascade), islands too small to balance shed load,
        and tripped lines return after ``repair_frames``.
        """
        if num_frames < 1:
            raise ValueError("num_frames must be positive")
        n = self.num_buses
        down_until: dict[tuple[int, int], int] = {}
        series = np.zeros((num_frames, n))
        for t in range(num_frames):
            # Repairs and fresh random outages.
            live = {
                e for e in self.edges if down_until.get(e, -1) < t
            }
            # On average ``outage_rate`` random line outages arrive per frame.
            per_line = outage_rate / max(1, len(self.edges))
            for e in list(live):
                if self.rng.random() < per_line:
                    live.discard(e)
                    down_until[e] = t + repair_frames
            injection = self._nominal_injections(t)
            injection = injection * (1.0 + self.rng.normal(0, 0.05, size=n))
            injection -= injection.mean()
            # Cascade loop: trip overloaded lines until stable.
            for _round in range(10):
                flows = self._solve_flows(live, injection)
                overloaded = [
                    e for e, f in flows.items() if abs(f) > self.capacity[e]
                ]
                if not overloaded:
                    break
                worst = max(overloaded, key=lambda e: abs(flows[e]) / self.capacity[e])
                live.discard(worst)
                down_until[worst] = t + repair_frames
            # Load served: buses in islands with generation keep their
            # load; stranded islands shed proportionally to isolation.
            graph = nx.Graph()
            graph.add_nodes_from(range(n))
            graph.add_edges_from(live)
            served = np.ones(n)
            generators = set()
            for community in np.unique(self.network.communities):
                members = np.nonzero(self.network.communities == community)[0]
                generators.add(int(members[0]))
            for island in nx.connected_components(graph):
                if not island & generators:
                    for bus in island:
                        served[bus] = 0.15  # emergency supply only
            # Stress dims service near tripped lines.
            flows = self._solve_flows(live, injection)
            utilization = np.zeros(n)
            counts = np.zeros(n)
            for (a, b), f in flows.items():
                u = abs(f) / self.capacity[(a, b)]
                utilization[a] += u
                utilization[b] += u
                counts[a] += 1
                counts[b] += 1
            utilization = utilization / np.maximum(counts, 1.0)
            served *= 1.0 - 0.2 * np.clip(utilization - 0.7, 0.0, 1.0)
            series[t] = served
        return series


def make_powergrid(
    num_nodes: int = 48,
    num_frames: int = 360,
    seed: int = 41,
) -> SpatioTemporalDataset:
    """Cascading-failure dataset: per-bus load served over time."""
    rng = np.random.default_rng(seed)
    net = community_geometric_graph(
        num_nodes, num_communities=4, radius=0.25, rng=rng
    )
    grid = PowerGrid(net, rng=rng)
    series = grid.simulate(num_frames)
    return SpatioTemporalDataset(
        name="powergrid",
        series=minmax_normalize(series),
        network=net,
        description=(
            "Synthetic transmission grid with DC power flow and cascading "
            "line outages; observable is per-bus load served (extension "
            "workload motivated by the paper's introduction)."
        ),
    )
