"""Dataset containers and train/test splitting for spatio-temporal GL.

A :class:`SpatioTemporalDataset` holds a node series (``(T, N)`` for scalar
nodes or ``(T, N, F)`` for multi-dimensional nodes, Sec. V.H), the sensor
graph it lives on, and chronological split utilities.  All evaluation
metrics in the reproduction are computed on min-max normalized series, which
is what makes the paper's RMSE magnitudes (1e-3..1e-1) comparable across
applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graphs import SensorNetwork

__all__ = ["SpatioTemporalDataset", "chronological_split"]


@dataclass
class SpatioTemporalDataset:
    """A graph-structured time series for one GL application.

    Attributes:
        name: Registry key, e.g. ``"traffic"``.
        series: ``(T, N)`` or ``(T, N, F)`` node observations, min-max
            normalized to [0, 1] at construction.
        network: The spatial sensor graph.
        description: Human-readable provenance.
        feature_names: Names of the ``F`` per-node features (multi-dim only).
    """

    name: str
    series: np.ndarray
    network: SensorNetwork
    description: str = ""
    feature_names: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.series = np.asarray(self.series, dtype=float)
        if self.series.ndim not in (2, 3):
            raise ValueError(
                f"series must be (T, N) or (T, N, F), got {self.series.shape}"
            )
        if self.series.shape[1] != self.network.n:
            raise ValueError(
                f"series has {self.series.shape[1]} nodes but the network "
                f"has {self.network.n}"
            )
        if self.series.ndim == 3 and self.feature_names:
            if len(self.feature_names) != self.series.shape[2]:
                raise ValueError("feature_names length must match feature dim")

    @property
    def num_frames(self) -> int:
        """Number of time steps ``T``."""
        return self.series.shape[0]

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes ``N``."""
        return self.series.shape[1]

    @property
    def num_features(self) -> int:
        """Per-node feature count ``F`` (1 for scalar-node datasets)."""
        return 1 if self.series.ndim == 2 else self.series.shape[2]

    @property
    def is_multidimensional(self) -> bool:
        """True for the Sec. V.H multi-feature datasets."""
        return self.series.ndim == 3

    def flat_series(self) -> np.ndarray:
        """Series with node features flattened: ``(T, N * F)``.

        For multi-dimensional datasets each (node, feature) pair becomes one
        dynamical-system variable, exactly how DS-GL maps multi-feature
        nodes onto DSPU capacitors.
        """
        if self.series.ndim == 2:
            return self.series
        T = self.series.shape[0]
        return self.series.reshape(T, -1)

    def split(
        self, train_fraction: float = 0.7, val_fraction: float = 0.1
    ) -> tuple["SpatioTemporalDataset", "SpatioTemporalDataset", "SpatioTemporalDataset"]:
        """Chronological train/val/test split (no leakage across time)."""
        train_s, val_s, test_s = chronological_split(
            self.series, train_fraction, val_fraction
        )
        make = lambda s, tag: SpatioTemporalDataset(
            name=f"{self.name}/{tag}",
            series=s,
            network=self.network,
            description=self.description,
            feature_names=self.feature_names,
        )
        return make(train_s, "train"), make(val_s, "val"), make(test_s, "test")


def chronological_split(
    series: np.ndarray, train_fraction: float = 0.7, val_fraction: float = 0.1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a time axis into contiguous train/val/test segments."""
    series = np.asarray(series)
    if not 0 < train_fraction < 1:
        raise ValueError("train_fraction must be in (0, 1)")
    if val_fraction < 0 or train_fraction + val_fraction >= 1:
        raise ValueError("train + val fractions must leave room for test")
    T = series.shape[0]
    t_train = int(round(T * train_fraction))
    t_val = int(round(T * val_fraction))
    t_train = max(1, t_train)
    train = series[:t_train]
    val = series[t_train : t_train + t_val]
    test = series[t_train + t_val :]
    if test.shape[0] == 0:
        raise ValueError("test split is empty; reduce train/val fractions")
    return train, val, test
