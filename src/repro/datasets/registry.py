"""Named dataset registry for the evaluation workloads.

``load_dataset(name)`` returns the seeded synthetic stand-in for each of the
paper's nine datasets (seven scalar + two multi-dimensional).  Two size
presets exist: ``"small"`` keeps the full pipeline fast enough for CI-style
runs; ``"paper"`` scales nodes/frames up for benchmark sweeps.
"""

from __future__ import annotations

from typing import Callable

from .base import SpatioTemporalDataset
from .powergrid import make_powergrid
from .synthetic import (
    make_air_quality,
    make_ca_housing,
    make_climate,
    make_covid,
    make_stock,
    make_traffic,
)

__all__ = [
    "SCALAR_DATASETS",
    "MULTIDIM_DATASETS",
    "EXTENSION_DATASETS",
    "ALL_DATASETS",
    "load_dataset",
]

#: The seven scalar-node datasets of Tables II/III and Figs. 10-13,
#: in the paper's presentation order.
SCALAR_DATASETS: tuple[str, ...] = (
    "no2",
    "covid",
    "o3",
    "traffic",
    "pm25",
    "pm10",
    "stock",
)

#: The two multi-dimensional datasets of Table IV.
MULTIDIM_DATASETS: tuple[str, ...] = ("ca_housing", "climate")

#: Extension workloads motivated by the paper's introduction but not in
#: its evaluation section.
EXTENSION_DATASETS: tuple[str, ...] = ("powergrid",)

ALL_DATASETS: tuple[str, ...] = (
    SCALAR_DATASETS + MULTIDIM_DATASETS + EXTENSION_DATASETS
)

_SIZES: dict[str, dict[str, float]] = {
    "small": {"nodes": 0.5, "frames": 0.5},
    "paper": {"nodes": 1.0, "frames": 1.0},
}


def _scaled(default_nodes: int, default_frames: int, size: str) -> tuple[int, int]:
    if size not in _SIZES:
        raise ValueError(f"unknown size preset {size!r}; pick from {sorted(_SIZES)}")
    f = _SIZES[size]
    return max(16, int(default_nodes * f["nodes"])), max(
        96, int(default_frames * f["frames"])
    )


def load_dataset(name: str, size: str = "paper") -> SpatioTemporalDataset:
    """Instantiate one of the nine named evaluation datasets.

    Args:
        name: One of :data:`ALL_DATASETS` (case-insensitive).
        size: ``"small"`` (halved nodes/frames) or ``"paper"``.

    Returns:
        The seeded, min-max-normalized dataset.
    """
    key = name.lower()
    builders: dict[str, Callable[[int, int], SpatioTemporalDataset]] = {
        "traffic": lambda n, t: make_traffic(num_nodes=n, num_frames=t),
        "pm25": lambda n, t: make_air_quality("pm25", num_nodes=n, num_frames=t),
        "pm10": lambda n, t: make_air_quality("pm10", num_nodes=n, num_frames=t),
        "no2": lambda n, t: make_air_quality("no2", num_nodes=n, num_frames=t),
        "o3": lambda n, t: make_air_quality("o3", num_nodes=n, num_frames=t),
        "covid": lambda n, t: make_covid(num_nodes=n, num_frames=t),
        "stock": lambda n, t: make_stock(num_nodes=n, num_frames=t),
        "ca_housing": lambda n, t: make_ca_housing(num_nodes=n, num_frames=t),
        "climate": lambda n, t: make_climate(num_nodes=n, num_frames=t),
        "powergrid": lambda n, t: make_powergrid(num_nodes=n, num_frames=t),
    }
    defaults: dict[str, tuple[int, int]] = {
        "traffic": (72, 480),
        "pm25": (64, 480),
        "pm10": (64, 480),
        "no2": (64, 480),
        "o3": (64, 480),
        "covid": (60, 420),
        "stock": (64, 420),
        "ca_housing": (48, 260),
        "climate": (40, 365),
        "powergrid": (48, 360),
    }
    if key not in builders:
        raise ValueError(f"unknown dataset {name!r}; pick from {ALL_DATASETS}")
    nodes, frames = _scaled(*defaults[key], size=size)
    return builders[key](nodes, frames)
