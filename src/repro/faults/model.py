"""Device fault models for the annealing stack (Sec. V.G robustness).

Analog Ising/GL hardware lives or dies by its behaviour under device
non-idealities.  Beyond the paper's Gaussian noise study, real arrays
exhibit *hard* faults — nodes latched to a supply rail, open (dead)
couplers, couplers whose programmed conductance drifts — and *control*
faults such as missed synchronization edges.  This module describes those
faults declaratively:

* :class:`FaultModel` — rates and drift magnitudes, plus a seed.  Its
  :meth:`~FaultModel.sample` draws one concrete, deterministic
  :class:`FaultScenario` for a system size (and optionally a coupling
  matrix, so coupler faults target *programmed* devices only).
* :class:`FaultScenario` — the sampled realization: which nodes are stuck
  at which rail, which coupler pairs are open, per-coupler gain/offset
  drift, and the synchronization skip rate.  Scenarios transform coupling
  matrices (:meth:`~FaultScenario.apply_coupling`) and expose stuck-node
  clamp assignments, so injection points stay tiny.
* :data:`NO_FAULTS` — the shared null scenario.  Exactly like
  :data:`repro.obs.NULL_METRICS`, instrumented code can thread it through
  unconditionally: every method is a no-op returning its input untouched,
  so the disabled fault layer is bit-for-bit invisible (enforced by
  ``tests/faults`` and ``benchmarks/perf/test_perf_faults.py``).

Determinism: sampling uses ``np.random.default_rng(seed)`` internally and
never touches a caller's generator, so enabling the fault layer does not
shift any downstream random stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse as sp

__all__ = ["FaultModel", "FaultScenario", "NullFaultScenario", "NO_FAULTS"]


def _symmetric_offdiag(matrix: np.ndarray) -> np.ndarray:
    """Symmetrize and zero the diagonal of a drift-factor matrix."""
    matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    return matrix


class NullFaultScenario:
    """Shared do-nothing scenario: the fault layer's disabled state.

    Mirrors the ``repro.obs`` null sinks: every query returns "no faults"
    and every transform returns its input object unchanged (not even a
    copy), so code threading :data:`NO_FAULTS` through is byte-identical
    to code with no fault layer at all.
    """

    __slots__ = ()

    enabled = False
    affects_coupling = False
    sync_skip_rate = 0.0
    stuck_index = np.zeros(0, dtype=int)
    stuck_sign = np.zeros(0)

    def stuck_values(self, rail: float) -> np.ndarray:
        return np.zeros(0)

    def apply_coupling(self, matrix):
        return matrix

    def sync_skip_mask(self, num_intervals: int) -> None:
        return None

    def summary(self) -> dict:
        return {"enabled": False}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NO_FAULTS"


#: The process-shared null scenario (default everywhere).
NO_FAULTS = NullFaultScenario()


@dataclass(frozen=True)
class FaultScenario:
    """One sampled realization of device faults for an ``n``-node system.

    Attributes:
        n: System size the scenario was sampled for.
        stuck_index: Node indices latched to a supply rail.
        stuck_sign: ``+-1`` rail polarity per stuck node.
        dead_pairs: ``(d, 2)`` coupler pairs (``i < j``) that are open
            circuits — their conductance reads as zero.
        gain: ``(n, n)`` symmetric multiplicative drift factor per coupler
            (``None`` when gain drift is disabled).  Applied to every
            programmed coupling; the diagonal (in-node self reaction) is
            never touched.
        offset: ``(n, n)`` symmetric additive drift per coupler as a
            *fraction of the mean programmed magnitude* of the matrix it
            is applied to (``None`` when disabled).  Relative offsets keep
            the scenario reusable across conductance normalizations (the
            DSPU rescales its matrices by a global time factor).
        sync_skip_rate: Probability a digital synchronization edge is
            missed (the mapping switch stalls for that interval).
        seed: Seed that sampled this scenario; also seeds
            :meth:`sync_skip_mask` so event-level faults replay
            identically across runs.
    """

    n: int
    stuck_index: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=int)
    )
    stuck_sign: np.ndarray = field(default_factory=lambda: np.zeros(0))
    dead_pairs: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 2), dtype=int)
    )
    gain: np.ndarray | None = None
    offset: np.ndarray | None = None
    sync_skip_rate: float = 0.0
    seed: int = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether any fault is actually present in this realization."""
        return bool(
            self.stuck_index.size
            or self.dead_pairs.size
            or self.gain is not None
            or self.offset is not None
            or self.sync_skip_rate > 0
        )

    @property
    def affects_coupling(self) -> bool:
        """Whether :meth:`apply_coupling` would change a coupling matrix."""
        return bool(
            self.dead_pairs.size
            or self.gain is not None
            or self.offset is not None
        )

    # ------------------------------------------------------------------
    def stuck_values(self, rail: float) -> np.ndarray:
        """Rail voltages the stuck nodes are latched to."""
        return self.stuck_sign * float(rail)

    def apply_coupling(self, matrix):
        """Return ``matrix`` with coupler faults applied.

        Accepts a dense ndarray or a scipy sparse matrix and preserves the
        storage kind, the symmetry, and — critically — the *diagonal*: the
        self-reaction resistor sits inside the node, not in a coupler, so
        drift and opens never touch it.  Offsets apply only to programmed
        (non-zero) couplers, scaled by the mean programmed magnitude, so
        sparse matrices stay sparse.
        """
        if not self.affects_coupling:
            return matrix
        if matrix.shape != (self.n, self.n):
            raise ValueError(
                f"scenario sampled for n={self.n} applied to matrix of "
                f"shape {matrix.shape}"
            )
        if sp.issparse(matrix):
            out = matrix.tocoo(copy=True)
            rows, cols, data = out.row, out.col, np.asarray(
                out.data, dtype=float
            ).copy()
            offdiag = rows != cols
            if self.gain is not None:
                data[offdiag] *= self.gain[rows[offdiag], cols[offdiag]]
            if self.offset is not None:
                reference = (
                    float(np.mean(np.abs(data[offdiag])))
                    if np.any(offdiag)
                    else 0.0
                )
                live = offdiag & (data != 0)
                data[live] += reference * self.offset[rows[live], cols[live]]
            if self.dead_pairs.size:
                dead = np.zeros((self.n, self.n), dtype=bool)
                i, j = self.dead_pairs[:, 0], self.dead_pairs[:, 1]
                dead[i, j] = dead[j, i] = True
                data[dead[rows, cols] & offdiag] = 0.0
            return sp.csr_matrix(
                (data, (rows, cols)), shape=matrix.shape
            )
        out = np.array(matrix, dtype=float)
        diagonal = np.diag(out).copy()
        if self.gain is not None:
            out *= self.gain
        if self.offset is not None:
            mask = out != 0
            np.fill_diagonal(mask, False)
            reference = (
                float(np.mean(np.abs(out[mask]))) if mask.any() else 0.0
            )
            out[mask] += reference * self.offset[mask]
        if self.dead_pairs.size:
            i, j = self.dead_pairs[:, 0], self.dead_pairs[:, 1]
            out[i, j] = out[j, i] = 0.0
        np.fill_diagonal(out, diagonal)
        return out

    def sync_skip_mask(self, num_intervals: int) -> np.ndarray | None:
        """Which control intervals miss their synchronization edge.

        Deterministic given the scenario seed, so the same scenario
        replays the same event-level fault pattern run after run.
        Returns ``None`` when synchronization faults are disabled.
        """
        if self.sync_skip_rate <= 0:
            return None
        rng = np.random.default_rng((self.seed, 0x5C))
        return rng.random(num_intervals) < self.sync_skip_rate

    def summary(self) -> dict:
        """Counts for trace events and log lines."""
        return {
            "enabled": self.enabled,
            "stuck_nodes": int(self.stuck_index.size),
            "dead_couplers": int(self.dead_pairs.shape[0]),
            "gain_drift": self.gain is not None,
            "offset_drift": self.offset is not None,
            "sync_skip_rate": float(self.sync_skip_rate),
        }


@dataclass(frozen=True)
class FaultModel:
    """Statistical description of device faults, with seeded sampling.

    Attributes:
        stuck_node_rate: Probability each node is latched to a rail
            (polarity uniform).
        dead_coupler_rate: Probability each (programmed) coupler pair is
            an open circuit.
        coupler_gain_std: Standard deviation of the multiplicative
            conductance drift per coupler (0 disables).
        coupler_offset_std: Standard deviation of the additive drift per
            coupler, as a fraction of the mean programmed magnitude
            (0 disables).
        sync_skip_rate: Probability each synchronization edge is missed.
        seed: Sampling seed; identical models sample identical scenarios.
    """

    stuck_node_rate: float = 0.0
    dead_coupler_rate: float = 0.0
    coupler_gain_std: float = 0.0
    coupler_offset_std: float = 0.0
    sync_skip_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "stuck_node_rate",
            "dead_coupler_rate",
            "sync_skip_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("coupler_gain_std", "coupler_offset_std"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether any fault channel has a non-zero rate."""
        return bool(
            self.stuck_node_rate
            or self.dead_coupler_rate
            or self.coupler_gain_std
            or self.coupler_offset_std
            or self.sync_skip_rate
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultModel":
        """All four device-fault channels driven by one rate.

        The robustness-sweep convenience: ``rate`` sets the stuck-node and
        dead-coupler probabilities and the gain/offset drift standard
        deviations alike, analogous to the paper's single noise axis.
        """
        return cls(
            stuck_node_rate=rate,
            dead_coupler_rate=rate,
            coupler_gain_std=rate,
            coupler_offset_std=rate,
            seed=seed,
        )

    def sample(
        self, n: int, J: np.ndarray | None = None
    ) -> FaultScenario | NullFaultScenario:
        """Draw one deterministic fault realization for an ``n``-node system.

        Args:
            n: System size.
            J: Optional coupling matrix (dense or sparse); when given,
                dead-coupler faults are drawn among *programmed* couplers
                only, matching the physical picture of device opens.

        Returns:
            A :class:`FaultScenario`, or :data:`NO_FAULTS` when every
            rate is zero (the scenario is then free to thread through any
            hot path).
        """
        if not self.enabled:
            return NO_FAULTS
        rng = np.random.default_rng(self.seed)
        # Sampling order is fixed so each channel's draw is independent of
        # the other channels' rates being zero or not.
        stuck = np.flatnonzero(rng.random(n) < self.stuck_node_rate)
        stuck_sign = np.where(rng.random(n) < 0.5, -1.0, 1.0)[stuck]

        if J is not None:
            if sp.issparse(J):
                rows, cols = J.nonzero()
            else:
                rows, cols = np.nonzero(np.asarray(J))
            upper = rows < cols
            candidates = np.stack([rows[upper], cols[upper]], axis=1)
        else:
            rows, cols = np.triu_indices(n, k=1)
            candidates = np.stack([rows, cols], axis=1)
        dead = candidates[
            rng.random(len(candidates)) < self.dead_coupler_rate
        ]

        gain = None
        if self.coupler_gain_std > 0:
            gain = 1.0 + _symmetric_offdiag(
                rng.normal(0.0, self.coupler_gain_std, size=(n, n))
            )
            np.fill_diagonal(gain, 1.0)
        offset = None
        if self.coupler_offset_std > 0:
            offset = _symmetric_offdiag(
                rng.normal(0.0, self.coupler_offset_std, size=(n, n))
            )
        return FaultScenario(
            n=n,
            stuck_index=stuck,
            stuck_sign=stuck_sign,
            dead_pairs=dead,
            gain=gain,
            offset=offset,
            sync_skip_rate=self.sync_skip_rate,
            seed=self.seed,
        )
