"""Resilience policies: divergence guarding and random restarts.

Fault-perturbed dynamics can lose the convexity the trained system
guarantees — a duty-boosted phase with a drifted coupler may grow instead
of contract, and an unrailed integration can overflow to ``inf``/``NaN``.
Two policies turn those silent-garbage modes into recoverable events:

* :class:`DivergenceError` + the integrator's ``divergence_check_every``
  guard (see :class:`repro.core.dynamics.IntegrationConfig`): mid-run
  NaN/overflow raises a diagnostic error carrying the step and simulated
  time, and emits a ``circuit.divergence`` trace event, instead of
  returning a garbage trajectory.
* :class:`RestartPolicy`: anneals ``K`` random restarts of one inference
  in a single batched integration (reusing
  :meth:`~repro.core.inference.NaturalAnnealingEngine.infer_batch`, so
  the K restarts share every coupling matvec), selects the best-energy
  survivor, and retries with fresh initializations when a whole batch
  diverges.  Recovery statistics flow through :mod:`repro.obs` counters
  (``faults.restart_*``).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from .. import obs

__all__ = [
    "DivergenceError",
    "RestartOutcome",
    "RestartPolicy",
    "check_finite",
]

logger = logging.getLogger("repro.faults")


class DivergenceError(RuntimeError):
    """An annealing run produced non-finite state mid-integration.

    Attributes:
        step: Integration step (or control interval) at which divergence
            was detected.
        time_ns: Simulated time of the detection.
        bad_nodes: Number of non-finite state entries.
        where: Which integration path detected it.
    """

    def __init__(
        self, where: str, step: int, time_ns: float, bad_nodes: int
    ):
        self.where = where
        self.step = step
        self.time_ns = float(time_ns)
        self.bad_nodes = int(bad_nodes)
        super().__init__(
            f"{where}: state diverged (NaN/overflow) at step {step} "
            f"(t={time_ns:.1f} ns, {bad_nodes} non-finite entries); "
            "the dynamics are non-contractive — check fault/noise levels "
            "or enable a resilience policy"
        )

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) through ``__init__``, which takes four fields — so a
        # DivergenceError raised inside a worker process would fail to
        # unpickle in the parent.  Reconstruct from the fields instead.
        return (
            DivergenceError,
            (self.where, self.step, self.time_ns, self.bad_nodes),
        )


def check_finite(
    sigma: np.ndarray, where: str, step: int, time_ns: float
) -> None:
    """Raise :class:`DivergenceError` (with a trace event) on bad state.

    The observability side effects fire before the raise so the trace
    tells the story even when the caller swallows the error (the restart
    policy does exactly that).
    """
    if np.isfinite(sigma).all():
        return
    bad = int(np.size(sigma) - np.count_nonzero(np.isfinite(sigma)))
    obs.metrics().counter("faults.divergence_errors").inc()
    obs.tracer().event(
        "circuit.divergence",
        where=where,
        step=step,
        t_ns=float(time_ns),
        bad_nodes=bad,
    )
    logger.warning(
        "%s diverged at step %d (t=%.1f ns, %d non-finite entries)",
        where, step, time_ns, bad,
    )
    raise DivergenceError(where, step, time_ns, bad)


@dataclass
class RestartOutcome:
    """Result of a random-restart inference.

    Attributes:
        prediction: Denormalized free-node values of the winner.
        state: Full final node-voltage vector of the winner.
        energies: ``(restarts,)`` final Hamiltonian per restart.
        best_index: Which restart won (lowest energy).
        attempts: Batched integrations executed (> 1 only after
            divergence retries).
        diverged: Batched integrations lost to divergence.
    """

    prediction: np.ndarray
    state: np.ndarray
    energies: np.ndarray
    best_index: int
    attempts: int
    diverged: int


@dataclass
class RestartPolicy:
    """Best-of-K random-restart annealing with divergence recovery.

    Attributes:
        restarts: Random initializations annealed per inference (all in
            one batched integration).
        max_retries: Extra batched attempts allowed when an attempt
            raises :class:`DivergenceError`; each retry re-initializes
            from a fresh random state.
        seed: Seed of the restart initializations.
        workers: ``None`` (default, with ``shards=None``) keeps the legacy
            single-batch path bit-for-bit.  Setting either field engages
            the sharded fan-out (:func:`repro.parallel.restart_fanout`):
            the restart pool splits into shards seeded from
            ``(seed, shard_index)`` and anneals on ``workers`` processes.
            Sharded results are identical for every worker count
            (including 1) but differ from the legacy path, which draws
            all initializations from one stream.  Divergence is retried
            *per shard*; only shards that exhaust their retries drop out,
            and the policy raises only when every shard is lost.
        shards: Shard count of the fan-out, independent of ``workers``.
    """

    restarts: int = 4
    max_retries: int = 2
    seed: int = 0
    workers: int | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.restarts < 1:
            raise ValueError("restarts must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")

    def infer(
        self,
        engine,
        observed_index: np.ndarray,
        observed_values: np.ndarray,
        duration: float = 50.0,
    ) -> RestartOutcome:
        """Anneal ``restarts`` random initializations, keep the best.

        Args:
            engine: A :class:`~repro.core.inference.NaturalAnnealingEngine`
                (or anything exposing ``infer_batch`` and ``operator``);
                its fault scenario, noise, and backend settings all apply.
            observed_index: Indices of observed (clamped) nodes.
            observed_values: ``(k,)`` raw-domain observed values of one
                inference sample.
            duration: Annealing time per restart in simulated ns.

        Returns:
            The :class:`RestartOutcome` of the lowest-energy restart.

        Raises:
            DivergenceError: Every attempt (1 + ``max_retries``) diverged.
        """
        if self.workers is not None or self.shards is not None:
            return self._infer_sharded(
                engine, observed_index, observed_values, duration
            )
        values = np.asarray(observed_values, dtype=float).reshape(1, -1)
        batch = np.repeat(values, self.restarts, axis=0)
        rng = np.random.default_rng(self.seed)
        registry = obs.metrics()
        diverged = 0
        result = None
        last_error: DivergenceError | None = None
        for attempt in range(1 + self.max_retries):
            try:
                result = engine.infer_batch(
                    observed_index, batch, duration=duration, rng=rng
                )
                break
            except DivergenceError as error:
                diverged += 1
                last_error = error
                registry.counter("faults.restart_divergences").inc()
                logger.info(
                    "restart attempt %d diverged (%s); retrying with "
                    "fresh initializations", attempt + 1, error,
                )
        if result is None:
            assert last_error is not None
            raise DivergenceError(
                f"restart_policy ({diverged} attempts, last: "
                f"{last_error.where})",
                step=last_error.step,
                time_ns=last_error.time_ns,
                bad_nodes=last_error.bad_nodes,
            )
        energies = np.asarray(engine.operator.energy(result.states))
        best = int(np.argmin(energies))
        registry.counter("faults.restart_runs").inc()
        registry.counter("faults.restarts").inc(self.restarts)
        if best != 0:
            # A non-default initialization won: the restart pool recovered
            # accuracy the single-run path would have lost.
            registry.counter("faults.restart_recoveries").inc()
        obs.tracer().event(
            "faults.restart",
            restarts=self.restarts,
            best_index=best,
            best_energy=float(energies[best]),
            energy_spread=float(energies.max() - energies.min()),
            diverged=diverged,
        )
        return RestartOutcome(
            prediction=result.predictions[best],
            state=result.states[best],
            energies=energies,
            best_index=best,
            attempts=diverged + 1,
            diverged=diverged,
        )

    def _infer_sharded(
        self,
        engine,
        observed_index: np.ndarray,
        observed_values: np.ndarray,
        duration: float,
    ) -> RestartOutcome:
        """Sharded restart fan-out: shard the pool, keep every survivor.

        ``energies`` / ``best_index`` cover the *surviving* restarts in
        shard order (a shard that exhausts its retries contributes
        nothing); ``attempts`` counts batched integrations across shards.
        """
        from ..parallel.engine import restart_fanout

        results, slices = restart_fanout(
            engine, observed_index, observed_values,
            restarts=self.restarts, duration=duration, root_seed=self.seed,
            max_retries=self.max_retries, workers=self.workers,
            shards=self.shards,
        )
        registry = obs.metrics()
        diverged = sum(r["diverged"] for r in results)
        survivors = [r for r in results if r["error"] is None]
        if diverged:
            registry.counter("faults.restart_divergences").inc(diverged)
        if not survivors:
            where, step, time_ns, bad_nodes = results[-1]["error"]
            raise DivergenceError(
                f"restart_policy ({diverged} attempts across "
                f"{len(results)} shards, last: {where})",
                step=step, time_ns=time_ns, bad_nodes=bad_nodes,
            )
        predictions = np.concatenate([r["predictions"] for r in survivors])
        states = np.concatenate([r["states"] for r in survivors])
        energies = np.asarray(engine.operator.energy(states))
        best = int(np.argmin(energies))
        registry.counter("faults.restart_runs").inc()
        registry.counter("faults.restarts").inc(self.restarts)
        if best != 0:
            registry.counter("faults.restart_recoveries").inc()
        obs.tracer().event(
            "faults.restart",
            restarts=self.restarts,
            shards=len(slices),
            best_index=best,
            best_energy=float(energies[best]),
            energy_spread=float(energies.max() - energies.min()),
            diverged=diverged,
        )
        return RestartOutcome(
            prediction=predictions[best],
            state=states[best],
            energies=energies,
            best_index=best,
            attempts=len(survivors) + diverged,
            diverged=diverged,
        )
