"""``repro.faults`` — fault injection and resilience for the annealing stack.

Describes hard device faults (stuck-at-rail nodes, open couplers, coupler
gain/offset drift) and control faults (skipped synchronization events) as
seeded, deterministic :class:`FaultScenario` realizations, threads them
through every inference path (:class:`~repro.core.dynamics.
CircuitSimulator`, :class:`~repro.core.inference.NaturalAnnealingEngine`,
:meth:`~repro.hardware.scalable_dspu.ScalableDSPU.anneal`), and provides
the resilience policies that keep a faulty run useful: the divergence
guard and best-of-K random restarts.

The disabled state is the :data:`NO_FAULTS` null scenario — the same
null-object pattern as :mod:`repro.obs` — so inference with the fault
layer off is bit-for-bit identical to inference before the layer existed.
"""

from .model import NO_FAULTS, FaultModel, FaultScenario, NullFaultScenario
from .resilience import (
    DivergenceError,
    RestartOutcome,
    RestartPolicy,
    check_finite,
)

__all__ = [
    "NO_FAULTS",
    "DivergenceError",
    "FaultModel",
    "FaultScenario",
    "NullFaultScenario",
    "RestartOutcome",
    "RestartPolicy",
    "check_finite",
]
