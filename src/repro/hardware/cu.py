"""Coupling Unit model (Sec. IV.C, "CU architecture").

A CU sits at a mesh intersection, connecting up to four PEs through four
``L``-lane portals.  Its ``4L x 3L`` analog crossbar couples nodes from
*different* PEs (same-PE pairs are already coupled locally), with the
coupling parameters held in the In-CU Weight Buffer and selected by the
Weight Select module during temporal co-annealing slice switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .interconnect import CUSite

__all__ = ["CouplingUnit", "CUCapacityError"]


class CUCapacityError(RuntimeError):
    """Raised when a CU portal or crossbar allocation is infeasible."""


@dataclass
class CouplingUnit:
    """One CU of the mesh with its weight buffer and port bookkeeping.

    Attributes:
        site: Mesh corner and attached PEs.
        lanes: ``L`` — lanes per portal (one portal per attached PE).
        ports: Per-PE mapping node -> port slot on this CU.
        weight_buffer: (node_a, node_b) -> coupling parameter, the In-CU
            Weight Buffer contents (global node indices, a < b).
    """

    site: CUSite
    lanes: int
    ports: dict[int, dict[int, int]] = field(default_factory=dict)
    weight_buffer: dict[tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError("lane budget must be positive")
        for pe in self.site.pes:
            self.ports.setdefault(pe, {})

    @property
    def crossbar_shape(self) -> tuple[int, int]:
        """``4L x 3L`` coupling crossbar (Sec. IV.C)."""
        return (4 * self.lanes, 3 * self.lanes)

    def free_ports(self, pe: int) -> int:
        """Unused port slots on the portal facing ``pe``."""
        if pe not in self.ports:
            raise ValueError(f"PE {pe} is not attached to CU {self.site.corner}")
        return self.lanes - len(self.ports[pe])

    def connect_node(self, pe: int, node: int) -> int:
        """Expose ``node`` of ``pe`` on this CU (idempotent).

        Returns:
            The port slot index.

        Raises:
            CUCapacityError: The portal for ``pe`` is out of slots.
        """
        slots = self.ports.get(pe)
        if slots is None:
            raise ValueError(f"PE {pe} is not attached to CU {self.site.corner}")
        if node in slots:
            return slots[node]
        if len(slots) >= self.lanes:
            raise CUCapacityError(
                f"CU {self.site.corner} portal to PE {pe} out of slots"
            )
        used = set(slots.values())
        slot = next(k for k in range(self.lanes) if k not in used)
        slots[node] = slot
        return slot

    def program_coupling(self, node_a: int, node_b: int, weight: float) -> None:
        """Write one coupling parameter into the In-CU Weight Buffer.

        Both endpoints must already be connected through *different*
        portals of this CU (same-PE pairs are coupled inside the PE).
        """
        pe_a = self._pe_of(node_a)
        pe_b = self._pe_of(node_b)
        if pe_a is None or pe_b is None:
            raise ValueError(
                f"both nodes must be connected to CU {self.site.corner} first"
            )
        if pe_a == pe_b:
            raise ValueError(
                "same-PE pairs are coupled in the local crossbar, not the CU"
            )
        key = (min(node_a, node_b), max(node_a, node_b))
        self.weight_buffer[key] = float(weight)

    def buffer_weight(self, node_a: int, node_b: int, weight: float) -> None:
        """Stage a coupling parameter in the In-CU Weight Buffer.

        Unlike :meth:`program_coupling`, no live port is required: during
        Temporal & Spatial co-annealing the buffer holds the weights of
        *all* slices while only the active slice occupies crossbar ports
        (the Weight Select module swaps them in at switch time).
        """
        key = (min(node_a, node_b), max(node_a, node_b))
        self.weight_buffer[key] = float(weight)

    def _pe_of(self, node: int) -> int | None:
        for pe, slots in self.ports.items():
            if node in slots:
                return pe
        return None

    def connected_nodes(self) -> list[int]:
        """All nodes currently exposed on this CU."""
        out: list[int] = []
        for slots in self.ports.values():
            out.extend(slots.keys())
        return out

    def utilization(self) -> float:
        """Fraction of crossbar couplers programmed."""
        rows, cols = self.crossbar_shape
        return len(self.weight_buffer) / (rows * cols / 2)

    def total_coupling_strength(self) -> float:
        """Sum of |weight| in the buffer (used by cost accounting)."""
        return float(np.sum(np.abs(list(self.weight_buffer.values())))) if self.weight_buffer else 0.0

    def clear(self) -> None:
        """Release ports and wipe the weight buffer (remapping)."""
        for pe in self.ports:
            self.ports[pe] = {}
        self.weight_buffer.clear()
