"""Configuration-time model: programming the coupling network.

BRIM's couplers are programmed *column by column* by the Programming Unit
under Column Select control (Fig. 2); a monolithic n-node machine
therefore needs n column-write cycles before it can anneal.  The Scalable
DSPU programs all PEs in parallel (each PE is its own small crossbar with
its own programming unit) and streams CU weight buffers concurrently, so
its configuration time scales with the *PE capacity*, not the total spin
count — one more scalability win of the mesh organization.

During Temporal & Spatial co-annealing the Weight Select module swaps
pre-staged slice weights from the In-CU Weight Buffer into the crossbar at
each switch; that is a buffer-to-DAC transfer, far cheaper than full
reprogramming, and is modeled separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import HardwareConfig
from .scheduler import CoAnnealingSchedule

__all__ = ["ProgrammingModel", "ConfigurationCost"]


@dataclass(frozen=True)
class ConfigurationCost:
    """Time to (re)configure a machine for a new problem.

    Attributes:
        full_program_ns: Writing every coupler from scratch.
        slice_switch_ns: Swapping one temporal slice's CU weights in
            (incurred at every switch interval during temporal
            co-annealing; must fit inside the switch interval).
        amortized_overhead: ``full_program_ns / (full_program_ns +
            annealing budget)`` for a single inference at the given
            annealing time — how much of one-shot latency is setup.
    """

    full_program_ns: float
    slice_switch_ns: float
    amortized_overhead: float


@dataclass(frozen=True)
class ProgrammingModel:
    """First-order timing of the programming path.

    Attributes:
        column_write_ns: One column-parallel coupler write (DAC settle).
        buffer_swap_ns_per_weight: Weight Select transfer of one staged
            weight from the In-CU buffer to the crossbar.
    """

    column_write_ns: float = 10.0
    buffer_swap_ns_per_weight: float = 0.5

    def monolithic(
        self, num_spins: int, annealing_ns: float = 5000.0
    ) -> ConfigurationCost:
        """A single crossbar machine (BRIM / Real-Valued DSPU)."""
        if num_spins < 1:
            raise ValueError("num_spins must be positive")
        full = num_spins * self.column_write_ns
        return ConfigurationCost(
            full_program_ns=full,
            slice_switch_ns=0.0,
            amortized_overhead=full / (full + annealing_ns),
        )

    def scalable(
        self,
        config: HardwareConfig,
        schedule: CoAnnealingSchedule | None = None,
        annealing_ns: float = 5000.0,
    ) -> ConfigurationCost:
        """The Scalable DSPU grid.

        PEs program concurrently (``pe_capacity`` column writes); CU weight
        buffers stream concurrently with the PE pass.  The slice-switch
        cost is the largest per-CU slice weight count times the buffer
        swap time.
        """
        pe_pass = config.pe_capacity * self.column_write_ns
        if schedule is not None and schedule.assignments:
            per_cu_weights: dict[tuple[int, int], int] = {}
            for a in schedule.assignments:
                per_cu_weights[a.cu] = per_cu_weights.get(a.cu, 0) + 1
            heaviest_cu = max(per_cu_weights.values())
            cu_pass = heaviest_cu * self.buffer_swap_ns_per_weight
            worst_slice = max(
                (
                    sum(
                        1
                        for a in schedule.assignments
                        if a.cu == cu and a.slice_index == s
                    )
                    for cu, slices in schedule.slices_per_cu.items()
                    for s in range(slices)
                ),
                default=0,
            )
            slice_switch = worst_slice * self.buffer_swap_ns_per_weight
        else:
            cu_pass = 0.0
            slice_switch = 0.0
        full = max(pe_pass, cu_pass)
        return ConfigurationCost(
            full_program_ns=full,
            slice_switch_ns=slice_switch,
            amortized_overhead=full / (full + annealing_ns),
        )

    def speedup_over_monolithic(
        self, config: HardwareConfig, schedule: CoAnnealingSchedule | None = None
    ) -> float:
        """Configuration-time advantage of the mesh over one big crossbar
        of equal capacity."""
        mono = self.monolithic(config.total_capacity)
        mesh = self.scalable(config, schedule)
        return mono.full_program_ns / max(mesh.full_program_ns, 1e-12)
