"""Spatial and Temporal schedulers (Sec. IV.D, Fig. 9).

The **Spatial Scheduler** maps every inter-PE coupling onto a CU: directly
neighboring PEs use a shared corner CU; remote pairs get a Wormhole route
over the super-connection grid, terminating at CUs adjacent to each PE.
Lane budgets are respected per (PE, CU) portal.

When a portal's communication demand exceeds the ``L`` lanes, the
**Temporal Scheduler** divides that CU's couplings into *slices*, each
individually feasible, and rotates them in turn (Switch-in-turn).  A
mapping whose every CU needs only one slice supports pure Spatial
co-annealing; otherwise Temporal & Spatial co-annealing applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decompose.redistribute import PlacementResult
from .config import HardwareConfig
from .cu import CouplingUnit
from .interconnect import MeshTopology

__all__ = ["CouplingAssignment", "CoAnnealingSchedule", "build_schedule"]


@dataclass(frozen=True)
class CouplingAssignment:
    """One inter-PE coupling mapped onto the interconnect.

    Attributes:
        node_a: First global node index (a < b).
        node_b: Second global node index.
        pe_a: PE of ``node_a``.
        pe_b: PE of ``node_b``.
        cu: Corner of the CU whose crossbar realizes the coupling.
        slice_index: Temporal slice this coupling belongs to at its CU.
        wormhole: Whether a super-connection route carries it.
        route_length: CU hops of the Wormhole route (1 for direct).
    """

    node_a: int
    node_b: int
    pe_a: int
    pe_b: int
    cu: tuple[int, int]
    slice_index: int
    wormhole: bool
    route_length: int


@dataclass
class CoAnnealingSchedule:
    """Complete mapping of a decomposed system onto the Scalable DSPU.

    Attributes:
        assignments: One entry per inter-PE coupling.
        cus: Instantiated CouplingUnits keyed by corner.
        slices_per_cu: Temporal slice count per CU corner.
        num_phases: Global switch-in-turn period (max slice count).
        demand_per_pe: Boundary-node count per PE.
    """

    assignments: list[CouplingAssignment]
    cus: dict[tuple[int, int], CouplingUnit]
    slices_per_cu: dict[tuple[int, int], int]
    num_phases: int
    demand_per_pe: np.ndarray

    @property
    def is_spatial_only(self) -> bool:
        """True when every CU fits its couplings in one slice (D <= L)."""
        return self.num_phases <= 1

    def active_in_phase(self, phase: int) -> list[CouplingAssignment]:
        """Assignments whose slice is live during switch phase ``phase``.

        A CU with ``s`` slices cycles through them with period ``s``; CUs
        with fewer slices than the global period simply repeat sooner.
        """
        out = []
        for assignment in self.assignments:
            s = self.slices_per_cu[assignment.cu]
            if phase % s == assignment.slice_index:
                out.append(assignment)
        return out

    def wormhole_count(self) -> int:
        """Number of couplings carried over super-connections."""
        return sum(1 for a in self.assignments if a.wormhole)

    def duty_cycle(self) -> float:
        """Average fraction of phases each inter-PE coupling is live."""
        if not self.assignments:
            return 1.0
        return float(
            np.mean([1.0 / self.slices_per_cu[a.cu] for a in self.assignments])
        )


def build_schedule(
    J: np.ndarray,
    placement: PlacementResult,
    config: HardwareConfig,
) -> CoAnnealingSchedule:
    """Run both schedulers on a sparse coupling matrix.

    Args:
        J: Sparse symmetric coupling matrix of the decomposed system.
        placement: Node-to-PE placement (grid must match the config).
        config: Hardware parameters (grid, ``L``...).

    Returns:
        The :class:`CoAnnealingSchedule`.

    Raises:
        ValueError: Grid mismatch, or a PE exceeds its capacity.
    """
    if placement.grid_shape != config.grid_shape:
        raise ValueError(
            f"placement grid {placement.grid_shape} != hardware grid "
            f"{config.grid_shape}"
        )
    loads = placement.loads()
    if np.any(loads > config.pe_capacity):
        raise ValueError(
            f"PE load {int(loads.max())} exceeds capacity {config.pe_capacity}"
        )
    topology = MeshTopology(config.grid_shape)
    cus = {
        site.corner: CouplingUnit(site=site, lanes=config.lanes)
        for site in topology.cu_sites
    }

    pe = placement.pe_of_node
    rows, cols = np.nonzero(np.triu(J, 1))
    inter = pe[rows] != pe[cols]
    pairs = list(zip(rows[inter].tolist(), cols[inter].tolist()))
    # Deterministic order: strongest couplings scheduled first, so they get
    # the earliest (most frequently revisited) slices.
    pairs.sort(key=lambda p: -abs(J[p[0], p[1]]))

    # Per-CU slice bookkeeping: each slice tracks the distinct nodes it
    # exposes per portal (bounded by L) and its accumulated coupling
    # strength.  Placement balances strength across slices so that every
    # duty-boosted phase stays close to the average dynamics — unbalanced
    # slices make individual phases strongly non-contractive.
    slice_nodes: dict[tuple[int, int], list[dict[int, set[int]]]] = {
        corner: [] for corner in cus
    }
    slice_strength: dict[tuple[int, int], list[float]] = {
        corner: [] for corner in cus
    }

    def try_place(corner: tuple[int, int], a: int, b: int) -> int:
        """Least-loaded feasible slice at this CU for the pair (a, b)."""
        lanes = config.lanes
        slices = slice_nodes[corner]
        strengths = slice_strength[corner]
        pe_a, pe_b = int(pe[a]), int(pe[b])
        feasible: list[int] = []
        for index, portals in enumerate(slices):
            pa = portals.setdefault(pe_a, set())
            pb = portals.setdefault(pe_b, set())
            room_a = a in pa or len(pa) < lanes
            room_b = b in pb or len(pb) < lanes
            if room_a and room_b:
                feasible.append(index)
        weight = abs(J[a, b])
        if feasible:
            index = min(feasible, key=lambda i: strengths[i])
            slices[index].setdefault(pe_a, set()).add(a)
            slices[index].setdefault(pe_b, set()).add(b)
            strengths[index] += weight
            return index
        slices.append({pe_a: {a}, pe_b: {b}})
        strengths.append(weight)
        return len(slices) - 1

    assignments: list[CouplingAssignment] = []
    for a, b in pairs:
        pe_a, pe_b = int(pe[a]), int(pe[b])
        shared = topology.shared_cus(pe_a, pe_b)
        if shared:
            # Direct spatial coupling: pick the shared CU with the fewest
            # slices so far (least congested).
            corner = min(shared, key=lambda c: len(slice_nodes[c]))
            wormhole = False
            route_length = 1
        else:
            route = topology.wormhole_route(pe_a, pe_b)
            corner = route[0]
            wormhole = True
            route_length = len(route)
        slice_index = try_place(corner, a, b)
        cu = cus[corner]
        cu.buffer_weight(a, b, float(J[a, b]))
        # Live crossbar ports are held by the first slice; later slices'
        # nodes are swapped in at switch time by the Weight Select module.
        if slice_index == 0:
            if pe_a in cu.ports and cu.free_ports(pe_a) > 0:
                cu.connect_node(pe_a, a)
            if pe_b in cu.ports and cu.free_ports(pe_b) > 0:
                cu.connect_node(pe_b, b)
        assignments.append(
            CouplingAssignment(
                node_a=a,
                node_b=b,
                pe_a=pe_a,
                pe_b=pe_b,
                cu=corner,
                slice_index=slice_index,
                wormhole=wormhole,
                route_length=route_length,
            )
        )

    # Round each CU's slice count up to the next power of two so every
    # count divides the global switch period — each slice is then live for
    # exactly 1/s of the rotation, which the duty-cycle compensation of the
    # co-annealing simulator relies on.
    def next_pow2(value: int) -> int:
        out = 1
        while out < value:
            out *= 2
        return out

    slices_per_cu = {
        corner: next_pow2(max(1, len(slices)))
        for corner, slices in slice_nodes.items()
    }
    num_phases = max(slices_per_cu.values(), default=1)

    demand = np.zeros(placement.num_pes, dtype=int)
    for p, group in enumerate(placement.groups):
        if group.size == 0:
            continue
        external = np.setdiff1d(np.arange(J.shape[0]), group)
        if external.size == 0:
            continue
        talks = np.abs(J[np.ix_(group, external)]).sum(axis=1) > 0
        demand[p] = int(np.count_nonzero(talks))

    return CoAnnealingSchedule(
        assignments=assignments,
        cus=cus,
        slices_per_cu=slices_per_cu,
        num_phases=num_phases,
        demand_per_pe=demand,
    )
