"""Hardware configuration of the Scalable DSPU (Sec. IV.C).

Collects the architectural constants of the paper in one place:

* per-PE capacity ``K`` (nodes in the local crossbar),
* hardware communication capability ``L`` — lanes per exporting portal of
  both PEs and CUs ("we set L as 30 for better performance and hardware
  tradeoff"),
* grid dimensions of the 2D PE array,
* timing: integration step, inter-tile synchronization interval (200 ns on
  the DS-GL hardware, Sec. V.D), and the temporal co-annealing
  switch-in-turn interval.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareConfig"]


@dataclass(frozen=True)
class HardwareConfig:
    """Architectural parameters of a Scalable DSPU instance.

    Attributes:
        grid_shape: ``(rows, cols)`` of the PE array.
        pe_capacity: ``K`` — nodes per PE (each PE is a K x K local
            crossbar).
        lanes: ``L`` — analog I/O lanes per exporting portal (PE and CU
            portals are matched).
        sync_interval_ns: Interval at which inter-PE node values are
            resampled across tile boundaries (zero-order hold between
            samples).  200 ns on the DS-GL hardware; Fig. 12 sweeps it.
        switch_interval_ns: Interval of the temporal co-annealing
            switch-in-turn rotation (one slice of boundary couplings is
            live per interval).
        dt_ns: Analog integration step of the circuit simulation.
        rail_volts: Supply rail; node voltages saturate at +-rail.
    """

    grid_shape: tuple[int, int] = (4, 4)
    pe_capacity: int = 500
    lanes: int = 30
    sync_interval_ns: float = 200.0
    switch_interval_ns: float = 200.0
    dt_ns: float = 0.1
    rail_volts: float = 1.0

    def __post_init__(self) -> None:
        rows, cols = self.grid_shape
        if rows < 1 or cols < 1:
            raise ValueError("grid must have positive dimensions")
        if self.pe_capacity < 1:
            raise ValueError("pe_capacity must be positive")
        if self.lanes < 1:
            raise ValueError("lanes must be positive")
        if self.sync_interval_ns <= 0 or self.switch_interval_ns <= 0:
            raise ValueError("timing intervals must be positive")
        if self.dt_ns <= 0:
            raise ValueError("dt_ns must be positive")
        if self.rail_volts <= 0:
            raise ValueError("rail_volts must be positive")

    @property
    def num_pes(self) -> int:
        """PEs in the array."""
        return self.grid_shape[0] * self.grid_shape[1]

    @property
    def total_capacity(self) -> int:
        """Total effective spins of the array."""
        return self.num_pes * self.pe_capacity

    @property
    def cu_crossbar_shape(self) -> tuple[int, int]:
        """Per-CU coupling crossbar: ``4L x 3L`` (Sec. IV.C).

        A full ``4L x 4L`` is unnecessary because nodes of the same PE are
        already fully coupled inside the PE.
        """
        return (4 * self.lanes, 3 * self.lanes)
