"""The Scalable DSPU: distributed spatial-temporal co-annealing (Sec. IV).

A :class:`ScalableDSPU` is a decomposed system mapped onto the PE/CU grid.
Its annealing simulator reproduces the paper's two operating modes:

* **Spatial co-annealing** — every CU fits its couplings in one slice; all
  inter-PE couplings conduct continuously.  Inter-PE node values are
  exchanged at the hardware synchronization interval (200 ns on DS-GL;
  Fig. 12 sweeps it), held constant (zero-order hold) in between.
* **Temporal & Spatial co-annealing** — some CU needs several slices; the
  Switch-in-turn rotation activates one slice per switch interval.  While
  a coupling is inactive, its last-sampled contribution is held by the PE
  buffers, so the rotation converges to the same fixed point given enough
  phases — buying accuracy with annealing time (Fig. 11).

Simulation method: between digital control events (sync/switch edges) the
analog dynamics are *linear*, ``dsigma/dt = A sigma + b`` with constant
``A`` and ``b``, so each interval is integrated exactly with the matrix
exponential — no step-size error regardless of interval length.  The few
distinct ``A`` matrices (one per live-slice phase) are factored once per
mapping.

Physical timescale: trained parameters are conductances up to an arbitrary
global scale (scaling ``J`` and ``h`` together leaves the fixed point
unchanged).  The simulator normalizes that scale so the fastest node time
constant equals ``node_time_constant_ns``, anchoring annealing latency in
nanoseconds like the paper's circuit.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp
from scipy.linalg import expm

from .. import obs
from ..core.operators import select_backend
from ..decompose.pipeline import DecomposedSystem
from ..faults.model import NO_FAULTS, FaultScenario, NullFaultScenario
from ..faults.resilience import check_finite
from .config import HardwareConfig
from .pe import ProcessingElement
from .scheduler import CoAnnealingSchedule, build_schedule

__all__ = ["AnnealingOutcome", "ScalableDSPU"]

logger = logging.getLogger("repro.hardware")

#: ``backend="auto"`` only switches the per-phase matrices to CSR storage
#: for systems at least this large; small grids gain nothing from sparsity.
SPARSE_AUTO_MIN_NODES = 128


def _pairs_matrix(
    entries: list[tuple[int, int, float]], n: int, sparse: bool
):
    """Symmetric matrix from ``(i, j, weight)`` coupling pairs.

    Duplicate ``(i, j)`` entries *accumulate* — two conductances wired in
    parallel add — and they must do so identically in both storage
    backends: the CSR constructor sums duplicate coordinates, so the
    dense path accumulates with ``+=`` rather than assigning
    (last-write-wins would silently diverge from the sparse backend;
    regression-tested by ``tests/hardware/test_scalable_dspu.py``).
    """
    if not sparse:
        M = np.zeros((n, n))
        for i, j, w in entries:
            M[i, j] += w
            M[j, i] += w
        return M
    rows = [i for i, _j, _w in entries] + [j for _i, j, _w in entries]
    cols = [j for _i, j, _w in entries] + [i for i, _j, _w in entries]
    data = [w for _i, _j, w in entries] * 2
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def _forcing_integral(B: np.ndarray, t: float, phi: np.ndarray) -> np.ndarray:
    """Forcing integral ``int_0^t e^{Bs} ds``, robust to singular ``B``.

    The closed form ``B^{-1} (e^{Bt} - I)`` is the fast path, but a
    free-node block can be exactly singular — an isolated free node with
    zero self-reaction yields a zero 1x1 block, where the integral is
    simply ``t * I`` — or close enough to singular that the solve returns
    garbage without raising.  Both cases fall back to the augmented-matrix
    identity (Van Loan)::

        expm([[B*t, I*t], [0, 0]]) = [[e^{Bt}, int_0^t e^{Bs} ds], [0, I]]

    which is well-defined for every ``B``.
    """
    m = B.shape[0]
    identity = np.eye(m)
    target = phi - identity
    try:
        integral = np.linalg.solve(B, target)
    except np.linalg.LinAlgError:
        integral = None
    if integral is not None and np.isfinite(integral).all():
        residual = float(np.abs(B @ integral - target).max())
        if residual <= 1e-8 * max(float(np.abs(target).max()), 1.0):
            return integral
    augmented = np.zeros((2 * m, 2 * m))
    augmented[:m, :m] = B * t
    augmented[:m, m:] = identity * t
    return expm(augmented)[:m, m:]


def _phase_propagator(
    B: np.ndarray, interval: float, growth_cap: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact propagator of one switch phase: cap, exponentiate, integrate.

    Module-level (rather than a closure in ``_build_propagators``) so the
    per-phase builds can fan out over worker processes — each phase is
    independent, and the computation is deterministic, so parallel and
    serial builds are bit-for-bit identical.
    """
    lam = float(np.max(np.linalg.eigvalsh((B + B.T) / 2.0)))
    excess = lam - growth_cap / interval
    if excess > 0:
        B = B - excess * np.eye(B.shape[0])
    phi = expm(B * interval)
    integral = _forcing_integral(B, interval, phi)
    return phi, integral, B


def _phase_propagator_damped(
    B_capped: np.ndarray, interval: float, delta: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rebuild one phase propagator under uniform damping ``delta``."""
    B = B_capped - delta * np.eye(B_capped.shape[0])
    phi = expm(B * interval)
    integral = _forcing_integral(B, interval, phi)
    return phi, integral, B


def _phase_propagator_shm(
    blocks_shared, index: int, interval: float, growth_cap: float, out
) -> None:
    """Shared-memory task wrapper around :func:`_phase_propagator`.

    Reads phase ``index``'s free-node block from the shared stack and
    writes ``(phi, integral, B_capped)`` into row ``index`` of the output
    slab — the task pickles two descriptors instead of three dense
    ``(m, m)`` matrices each way.
    """
    phi, integral, B = _phase_propagator(
        blocks_shared.array[index], interval, growth_cap
    )
    out.array[index, 0] = phi
    out.array[index, 1] = integral
    out.array[index, 2] = B


def _phase_propagator_damped_shm(
    index: int, interval: float, delta: float, out
) -> None:
    """Damped rebuild reading the capped ``B`` back from the output slab."""
    phi, integral, B = _phase_propagator_damped(
        out.array[index, 2].copy(), interval, delta
    )
    out.array[index, 0] = phi
    out.array[index, 1] = integral
    out.array[index, 2] = B


@dataclass
class AnnealingOutcome:
    """Result of one co-annealing inference run.

    Attributes:
        prediction: Denormalized free-node values.
        state: Final node voltages (normalized domain).
        latency_ns: Simulated annealing time.  Quantized to whole control
            intervals, rounding *up*: the machine always anneals at least
            the requested ``duration_ns`` — unless ``early_exit`` settled
            the run first, in which case it reflects the intervals
            actually integrated.
        mode: ``"spatial"`` or ``"temporal+spatial"``.
        phases_completed: Switch-in-turn phases executed — one per control
            interval actually integrated.
        sync_skips: Synchronization events lost to injected faults (the
            mapping rotation stalls for each; 0 without fault injection).
        exited_early: The run settled (state unchanged over
            ``settle_patience`` consecutive full rotations) and stopped
            before the requested duration.
    """

    prediction: np.ndarray
    state: np.ndarray
    latency_ns: float
    mode: str
    phases_completed: int
    energy_trace: np.ndarray | None = None
    sync_skips: int = 0
    exited_early: bool = False


class ScalableDSPU:
    """A decomposed DS-GL system mapped onto the multi-PE hardware.

    Args:
        system: Output of :func:`repro.decompose.decompose`.
        config: Hardware parameters; the grid must match the placement.
        node_time_constant_ns: Time constant assigned to the fastest node
            after conductance normalization.
        seed: Initialization randomness seed.
        backend: Storage of the per-phase dynamics matrices — ``"dense"``,
            ``"sparse"`` (CSR), or ``"auto"``, which picks sparse for
            large low-density decompositions so every switch phase avoids
            holding (and multiplying) an ``(n, n)`` dense matrix.
    """

    def __init__(
        self,
        system: DecomposedSystem,
        config: HardwareConfig | None = None,
        node_time_constant_ns: float = 1.0,
        seed: int = 0,
        backend: str = "auto",
    ):
        if config is None:
            rows, cols = system.placement.grid_shape
            config = HardwareConfig(
                grid_shape=(rows, cols),
                pe_capacity=system.placement.capacity,
            )
        self.system = system
        self.config = config
        self.seed = seed
        model = system.model
        self.model = model
        if backend not in ("auto", "dense", "sparse"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "auto":
            backend = select_backend(
                model.J, min_sparse_size=SPARSE_AUTO_MIN_NODES
            )
        self.backend = backend

        self.pes = [
            ProcessingElement(
                index=p,
                nodes=group,
                capacity=config.pe_capacity,
                lanes=config.lanes,
            )
            for p, group in enumerate(system.placement.groups)
        ]
        self.schedule: CoAnnealingSchedule = build_schedule(
            model.J, system.placement, config
        )

        # Conductance normalization: fastest eigen-rate of -(J + diag(h))
        # maps to 1 / node_time_constant_ns.
        if node_time_constant_ns <= 0:
            raise ValueError("node_time_constant_ns must be positive")
        A_raw = model.J + np.diag(model.h)
        rates = np.abs(np.linalg.eigvalsh((A_raw + A_raw.T) / 2.0))
        fastest = float(rates.max()) if rates.size else 1.0
        self.time_scale = 1.0 / (fastest * node_time_constant_ns)
        self._A = A_raw * self.time_scale  # dsigma/dt = A sigma (free part)

        # Split the dynamics into the always-live part (intra-PE plus the
        # self-reaction) and per-phase inter-PE parts.
        pe_of = system.placement.pe_of_node
        n = model.n
        inter_mask = np.zeros((n, n), dtype=bool)
        rows_nz, cols_nz = np.nonzero(model.J)
        crossing = pe_of[rows_nz] != pe_of[cols_nz]
        inter_mask[rows_nz[crossing], cols_nz[crossing]] = True
        sparse = self.backend == "sparse"

        def _store(dense: np.ndarray):
            return sp.csr_matrix(dense) if sparse else dense

        self._A_local = _store(np.where(inter_mask, 0.0, self._A))
        self._A_inter_phase: list = []
        self._A_inter_boosted: list = []
        for phase in range(self.schedule.num_phases):
            live: list[tuple[int, int, float]] = []
            boosted: list[tuple[int, int, float]] = []
            for a in self.schedule.active_in_phase(phase):
                weight = self._A[a.node_a, a.node_b]
                live.append((a.node_a, a.node_b, weight))
                # Duty-cycle compensation: a coupler time-shared by s
                # slices conducts for 1/s of the time, so its programmed
                # conductance is scaled by s — the time-averaged coupling
                # then equals the trained parameter (Weight Select swaps
                # the stronger value in at switch time).
                s = self.schedule.slices_per_cu[a.cu]
                boosted.append((a.node_a, a.node_b, weight * s))
            self._A_inter_phase.append(_pairs_matrix(live, n, sparse))
            self._A_inter_boosted.append(_pairs_matrix(boosted, n, sparse))
        self._A_inter_total = _store(np.where(inter_mask, self._A, 0.0))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """Which co-annealing mode the mapping requires."""
        return "spatial" if self.schedule.is_spatial_only else "temporal+spatial"

    @property
    def num_phases(self) -> int:
        """Switch-in-turn period of the mapping."""
        return self.schedule.num_phases

    def utilization(self) -> float:
        """Mean PE occupancy relative to capacity."""
        return float(
            np.mean([pe.occupancy / pe.capacity for pe in self.pes])
        )

    # ------------------------------------------------------------------
    # Co-annealing
    # ------------------------------------------------------------------
    def anneal(
        self,
        observed_index: np.ndarray,
        observed_values: np.ndarray,
        duration_ns: float = 5000.0,
        sync_interval_ns: float | None = None,
        rng: np.random.Generator | None = None,
        node_noise_std: float = 0.0,
        coupling_noise_std: float = 0.0,
        force_spatial_only: bool = False,
        record_energy: bool = False,
        faults: FaultScenario | NullFaultScenario = NO_FAULTS,
        workers: int | None = 1,
        early_exit: bool = False,
        settle_tolerance: float = 1e-4,
        settle_patience: int = 2,
    ) -> AnnealingOutcome:
        """Run co-annealing inference.

        During each switch phase the live circuit — every intra-PE
        crossbar plus the active slice of each CU crossbar — is a linear
        analog system integrated exactly over the phase.  Time-multiplexed
        couplings are *duty-cycle compensated*: a coupler shared by ``s``
        slices is programmed ``s`` times stronger, so the time-averaged
        dynamics equal the trained system and the rotation converges to
        the true fixed point with a ripple that shrinks as the
        synchronization (switch) interval shrinks — the Fig. 12 behaviour.
        The reported state is the average over the last full rotation
        (ripple filtering).

        Args:
            observed_index: Clamped (observed) node indices.
            observed_values: Raw-domain observed values.
            duration_ns: Requested annealing time.  Digital control
                quantizes it to whole control intervals, rounding *up*, so
                the realized ``latency_ns`` is the smallest whole number
                of intervals covering the request (500 ns at a 200 ns sync
                interval anneals 3 intervals = 600 ns, never 400 ns).
            sync_interval_ns: Interval between mapping switches (the
                inter-tile synchronization interval of Sec. V.D);
                defaults to the hardware's 200 ns.
            rng: Randomness source for initialization/noise.
            node_noise_std: Gaussian node-voltage noise per control
                interval, as a fraction of rail (Sec. V.G).
            coupling_noise_std: Multiplicative Gaussian coupler noise.
            force_spatial_only: Keep only phase-0 couplings live, without
                compensation (the "DS-GL-Spatial" design point of Table
                II: temporal co-annealing disabled, trading accuracy for
                latency).
            record_energy: Record the trained Hamiltonian's value at each
                control interval in ``energy_trace``.
            faults: A sampled :class:`~repro.faults.model.FaultScenario`
                to inject — stuck nodes anneal as forced rail clamps,
                coupler faults transform every live coupling matrix, and
                missed sync events stall the Switch-in-turn rotation.  The
                default null scenario adds no work and leaves results
                bit-for-bit unchanged.
            workers: Worker processes for the per-phase propagator build
                (the per-PE fan-out; see :meth:`_build_propagators`).
                Deterministic, so any value — including the default
                serial 1 — yields bit-for-bit identical outcomes.
            early_exit: Stop annealing once the rotation orbit has
                settled.  Settling is judged over *full rotations* (every
                ``num_phases`` control intervals): the inf-norm change of
                the state across one rotation must stay at or below
                ``settle_tolerance`` for ``settle_patience`` consecutive
                rotations.  Comparing rotation-to-rotation (not
                interval-to-interval) keeps the time-multiplexing ripple
                from masking or faking convergence.  The readout stays
                ripple-filtered over the last full rotation; with
                ``early_exit=False`` (the default) the schedule, readout,
                and counters are bit-for-bit unchanged.
            settle_tolerance: Normalized-volts threshold on the
                per-rotation state change; must be positive.
            settle_patience: Consecutive settled rotations required
                before exiting; must be >= 1.

        Returns:
            :class:`AnnealingOutcome`.

        Raises:
            DivergenceError: Fault injection is active and the state went
                non-finite mid-run (fault-perturbed dynamics may lose the
                trained system's contractivity).
        """
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if early_exit:
            if settle_tolerance <= 0:
                raise ValueError(
                    f"settle_tolerance must be positive, got {settle_tolerance}"
                )
            if settle_patience < 1:
                raise ValueError(
                    f"settle_patience must be >= 1, got {settle_patience}"
                )
        model = self.model
        n = model.n
        cfg = self.config
        sync = sync_interval_ns if sync_interval_ns is not None else cfg.sync_interval_ns
        if sync <= 0:
            raise ValueError("sync interval must be positive")
        rng = rng or np.random.default_rng(self.seed)

        observed_index = np.asarray(observed_index, dtype=int).reshape(-1)
        observed_values = np.asarray(observed_values, dtype=float).reshape(-1)
        free = np.setdiff1d(np.arange(n), observed_index)
        clamp = self._normalize_subset(observed_index, observed_values)

        # Stuck-at-rail nodes are driven capacitors: exact within the
        # clamp machinery.  The fault overrides an observation on the same
        # node (the device pins the voltage regardless of the drive).
        stuck = faults.stuck_index
        if stuck.size:
            keep = ~np.isin(observed_index, stuck)
            clamp_index = np.concatenate([observed_index[keep], stuck])
            clamp_value = np.concatenate(
                [clamp[keep], faults.stuck_values(cfg.rail_volts)]
            )
            free_dyn = np.setdiff1d(np.arange(n), clamp_index)
        else:
            clamp_index, clamp_value = observed_index, clamp
            free_dyn = free

        sigma = rng.uniform(-cfg.rail_volts, cfg.rail_volts, size=n)
        sigma[clamp_index] = clamp_value

        # Digital control quantizes time to whole intervals, rounding up:
        # the machine never anneals for less than the requested duration.
        interval = min(sync, duration_ns)
        num_intervals = max(1, math.ceil(duration_ns / interval - 1e-9))

        coupler_noise = None
        if coupling_noise_std > 0:
            factor = rng.normal(1.0, coupling_noise_std, size=(n, n))
            coupler_noise = (factor + factor.T) / 2.0

        num_phases = 1 if force_spatial_only else max(1, self.num_phases)
        inter_source = (
            [self._A_inter_phase[0]]
            if force_spatial_only
            else self._A_inter_boosted
        )
        A_local_base = faults.apply_coupling(self._A_local)
        A_live: list = []
        for A_s in inter_source:
            A_s = faults.apply_coupling(A_s)
            if coupler_noise is not None:
                if sp.issparse(A_s):
                    A_s = A_s.multiply(coupler_noise).tocsr()
                else:
                    A_s = A_s * coupler_noise
            A_local = A_local_base
            if coupler_noise is not None:
                # The self-reaction resistor is inside the node, not a
                # coupler; its conductance keeps the nominal value.
                if sp.issparse(A_local):
                    off = A_local.multiply(coupler_noise).tolil()
                    off.setdiag(A_local.diagonal())
                    A_local = off.tocsr()
                else:
                    off = A_local * coupler_noise
                    np.fill_diagonal(off, np.diag(A_local_base))
                    A_local = off
            A_live.append(A_local + A_s)

        mode = (
            "spatial"
            if (force_spatial_only or self.mode == "spatial")
            else "temporal+spatial"
        )
        span = obs.tracer().span(
            "dspu.anneal",
            mode=mode,
            n=n,
            num_phases=num_phases,
            sync_interval_ns=float(interval),
            num_intervals=num_intervals,
            clamped_nodes=int(observed_index.size),
            free_nodes=int(free.size),
        )
        with span:
            if faults.enabled and obs.enabled():
                obs.tracer().event(
                    "faults.injected", where="dspu", **faults.summary()
                )
            with obs.metrics().timer("dspu.build_propagators_ms"):
                propagators = self._build_propagators(
                    A_live, free_dyn, interval, workers=workers
                )
            # The clamped-node forcing of each phase is constant across the
            # whole run, so it is computed once instead of per interval.
            forcing = [
                np.asarray(
                    self._submatrix(A, free_dyn, clamp_index) @ clamp_value
                )
                for A in A_live
            ]

            def propagate(phase: int, state: np.ndarray) -> np.ndarray:
                phi, integral, A_ff_damped = propagators[phase]
                del A_ff_damped
                out = state.copy()
                out[free_dyn] = (
                    phi @ state[free_dyn] + integral @ forcing[phase]
                )
                return out

            skip_mask = faults.sync_skip_mask(num_intervals)
            guard = faults.enabled
            collect = obs.metrics().enabled
            phase_elapsed = [0.0] * num_phases
            phases_completed = 0
            sync_skips = 0
            phase_cursor = 0
            rotation = min(num_phases, num_intervals)
            tail_states: list[np.ndarray] = []
            hamiltonian = self.model.hamiltonian() if record_energy else None
            energy_trace: list[float] = []
            # Early-exit bookkeeping: a rolling window of the last
            # `rotation` states (so the ripple-filtered readout survives a
            # mid-run stop) plus the state one rotation ago.
            settle_reference = sigma.copy() if early_exit else None
            settle_streak = 0
            exited_early = False
            intervals_done = num_intervals
            for k in range(num_intervals):
                phase = phase_cursor % num_phases
                if collect:
                    started = time.perf_counter()
                    sigma = propagate(phase, sigma)
                    phase_elapsed[phase] += time.perf_counter() - started
                else:
                    sigma = propagate(phase, sigma)
                # Every integrated interval executes one switch phase
                # (counting only completed rotations undercounted: 4
                # intervals over 4 phases used to report 0).
                phases_completed += 1
                if skip_mask is not None and skip_mask[k]:
                    # The sync edge was missed: the PEs keep integrating
                    # the same live slice, and the Weight Select rotation
                    # stalls for one interval.
                    sync_skips += 1
                else:
                    phase_cursor += 1
                if node_noise_std > 0:
                    sigma[free] += rng.normal(
                        0.0, node_noise_std * cfg.rail_volts, size=free.size
                    )
                np.clip(sigma, -cfg.rail_volts, cfg.rail_volts, out=sigma)
                sigma[clamp_index] = clamp_value
                if guard:
                    check_finite(
                        sigma, "dspu.anneal", k + 1, (k + 1) * interval
                    )
                if hamiltonian is not None:
                    energy_trace.append(hamiltonian.energy(sigma))
                if early_exit:
                    tail_states.append(sigma.copy())
                    if len(tail_states) > rotation:
                        tail_states.pop(0)
                    if (k + 1) % rotation == 0:
                        moved = float(
                            np.max(np.abs(sigma - settle_reference))
                        )
                        settle_streak = (
                            settle_streak + 1
                            if moved <= settle_tolerance
                            else 0
                        )
                        settle_reference = sigma.copy()
                        if settle_streak >= settle_patience:
                            exited_early = True
                            intervals_done = k + 1
                            break
                elif k >= num_intervals - rotation:
                    tail_states.append(sigma.copy())

            if collect:
                registry = obs.metrics()
                registry.counter("dspu.anneal_runs").inc()
                # Every interval boundary is a digital control event: an
                # inter-PE synchronization plus one clamp re-assert per
                # clamped node and one forcing application per phase.
                registry.counter("dspu.sync_events").inc(
                    intervals_done - sync_skips
                )
                registry.counter("dspu.clamp_asserts").inc(
                    intervals_done * int(clamp_index.size)
                )
                registry.counter("dspu.forcing_applies").inc(intervals_done)
                if sync_skips:
                    registry.counter("dspu.sync_skips").inc(sync_skips)
                if exited_early:
                    registry.counter("dspu.early_exits").inc()
                for phase, elapsed in enumerate(phase_elapsed):
                    registry.histogram(f"dspu.phase{phase}_ms").observe(
                        elapsed * 1000.0
                    )

            # Ripple filtering: read out the mean over the final rotation.
            readout = np.mean(tail_states, axis=0)
            readout[clamp_index] = clamp_value
            prediction = self._denormalize_subset(free, readout)
            span.set("phases_completed", phases_completed)
            if sync_skips:
                span.set("sync_skips", sync_skips)
            if exited_early:
                span.set("early_exit_intervals", intervals_done)
            logger.debug(
                "dspu anneal: mode=%s intervals=%d phases_completed=%d "
                "latency=%.0fns",
                mode, intervals_done, phases_completed,
                intervals_done * interval,
            )
        return AnnealingOutcome(
            prediction=prediction,
            state=readout,
            latency_ns=intervals_done * interval,
            mode=mode,
            phases_completed=phases_completed,
            energy_trace=np.asarray(energy_trace) if record_energy else None,
            sync_skips=sync_skips,
            exited_early=exited_early,
        )

    @staticmethod
    def _submatrix(A, rows: np.ndarray, cols: np.ndarray):
        """``A[rows, cols]`` block for dense or CSR storage."""
        if sp.issparse(A):
            return A[rows][:, cols]
        return A[np.ix_(rows, cols)]

    def _build_propagators(
        self,
        A_live: list,
        free: np.ndarray,
        interval: float,
        growth_cap: float = 30.0,
        workers: int | None = 1,
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Exact per-phase propagators with a rotation-level stability guard.

        Individual duty-boosted phases may be transiently unstable; what
        must contract is the *rotation map* — the product of the phase
        propagators, whose time-average equals the trained (convex)
        dynamics.  Damping is therefore applied in two bias-minimizing
        steps: (i) a per-phase cap that only prevents numerical overflow
        within one interval, and (ii) a *uniform* damping conductance, the
        minimum that makes the rotation product contract.  Uniform damping
        shifts every phase equally, so the bias on the averaged dynamics
        is the smallest that stabilizes the orbit (and is zero whenever
        the rotation is already contractive).

        Each phase's eigen-bound/``expm``/forcing-integral build is
        independent — the per-PE work of the mesh — so with ``workers > 1``
        the phases fan out over a process pool (deterministic math, so the
        result is bit-for-bit identical to a serial build).  The rotation
        product (step ii) needs every phase and stays a barrier.
        """
        if free.size == 0:
            identity = np.zeros((0, 0))
            return [(identity, identity, identity) for _ in A_live]

        from ..parallel.pool import parallel_map
        from ..parallel.shm import shm_available

        # The matrix exponential is inherently dense, so only the reduced
        # free-node block is densified — never the full (n, n) system.
        blocks = []
        for A in A_live:
            block = self._submatrix(A, free, free)
            blocks.append(block.toarray() if sp.issparse(block) else block)

        use_shm = (
            workers is not None
            and workers > 1
            and len(blocks) > 1
            and shm_available()
        )
        if use_shm:
            return self._build_propagators_shm(
                blocks, interval, growth_cap, workers, parallel_map
            )

        # Step 1: per-phase growth cap + exact propagator, one task each.
        propagators = parallel_map(
            _phase_propagator,
            [(B, interval, growth_cap) for B in blocks],
            workers,
        )
        # Step 2: uniform damping until the rotation map contracts.
        delta = self._rotation_damping(propagators, interval)
        if delta is not None:
            propagators = parallel_map(
                _phase_propagator_damped,
                [(B, interval, delta) for _phi, _integral, B in propagators],
                workers,
            )
        return propagators

    @staticmethod
    def _rotation_damping(propagators, interval: float) -> float | None:
        """Uniform damping needed to contract the rotation map, if any."""
        m = propagators[0][0].shape[0]
        rotation = np.eye(m)
        for phi, _integral, _B in propagators:
            rotation = phi @ rotation
        radius = float(np.max(np.abs(np.linalg.eigvals(rotation))))
        if radius < 0.999:
            return None
        total_time = interval * len(propagators)
        delta = np.log(radius / 0.99) / total_time
        logger.debug(
            "rotation map radius %.4f >= 0.999; applying uniform "
            "damping delta=%.3e", radius, delta,
        )
        return delta

    def _build_propagators_shm(
        self,
        blocks: list[np.ndarray],
        interval: float,
        growth_cap: float,
        workers: int,
        parallel_map,
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Shared-memory variant of the per-phase propagator fan-out.

        The phase blocks travel once (one shared stack) instead of once
        per task, and each worker writes its ``(phi, integral, B)`` into a
        shared slab instead of returning three pickled dense matrices.
        Same :func:`_phase_propagator` math, so bits are unchanged.
        """
        from ..parallel.shm import SharedArena

        p = len(blocks)
        m = blocks[0].shape[0]
        with SharedArena(tag="dspu") as arena:
            blocks_shared = arena.share(np.stack(blocks))
            out = arena.empty((p, 3, m, m))
            parallel_map(
                _phase_propagator_shm,
                [
                    (blocks_shared, i, interval, growth_cap, out)
                    for i in range(p)
                ],
                workers,
            )
            propagators = [
                tuple(out.array[i, j].copy() for j in range(3))
                for i in range(p)
            ]
            delta = self._rotation_damping(propagators, interval)
            if delta is not None:
                parallel_map(
                    _phase_propagator_damped_shm,
                    [(i, interval, delta, out) for i in range(p)],
                    workers,
                )
                propagators = [
                    tuple(out.array[i, j].copy() for j in range(3))
                    for i in range(p)
                ]
        return propagators

    # ------------------------------------------------------------------
    # Normalization helpers
    # ------------------------------------------------------------------
    def _normalize_subset(self, index: np.ndarray, raw: np.ndarray) -> np.ndarray:
        model = self.model
        values = np.asarray(raw, dtype=float)
        if model.mean is not None:
            values = values - model.mean[index]
        if model.scale is not None:
            values = values / model.scale[index]
        return values

    def _denormalize_subset(self, index: np.ndarray, state: np.ndarray) -> np.ndarray:
        model = self.model
        values = state[index]
        if model.scale is not None:
            values = values * model.scale[index]
        if model.mean is not None:
            values = values + model.mean[index]
        return values
