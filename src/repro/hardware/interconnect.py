"""Mesh interconnect topology of the Scalable DSPU (Sec. IV.C, Fig. 7).

PEs sit on a 2D grid; Coupling Units (CUs) sit at the intersections of the
mesh.  Each PE exports through four corner portals to its (up to) four
neighboring CUs; each CU couples nodes from its (up to) four neighboring
PEs.  Neighboring CUs are additionally linked by *super connections* — the
orange grid — which carry Wormhole traffic between remote PEs.

We index CUs by half-integer grid corners: the CU at corner ``(r, c)``
touches PEs ``(r-1, c-1)``, ``(r-1, c)``, ``(r, c-1)``, ``(r, c)`` (those
that exist).  Corner CUs of the array have fewer attached PEs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MeshTopology", "CUSite"]


@dataclass(frozen=True)
class CUSite:
    """One coupling unit at a mesh intersection.

    Attributes:
        corner: ``(r, c)`` corner coordinate in ``0..rows`` x ``0..cols``.
        pes: PE indices attached to this CU (1-4 of them).
    """

    corner: tuple[int, int]
    pes: tuple[int, ...]


class MeshTopology:
    """Static topology queries for a PE grid with corner CUs."""

    def __init__(self, grid_shape: tuple[int, int]):
        rows, cols = grid_shape
        if rows < 1 or cols < 1:
            raise ValueError("grid must have positive dimensions")
        self.rows = rows
        self.cols = cols
        self._sites: dict[tuple[int, int], CUSite] = {}
        for r in range(rows + 1):
            for c in range(cols + 1):
                pes = []
                for pr, pc in ((r - 1, c - 1), (r - 1, c), (r, c - 1), (r, c)):
                    if 0 <= pr < rows and 0 <= pc < cols:
                        pes.append(pr * cols + pc)
                if pes:
                    self._sites[(r, c)] = CUSite(corner=(r, c), pes=tuple(pes))

    @property
    def num_pes(self) -> int:
        """PEs in the grid."""
        return self.rows * self.cols

    @property
    def cu_sites(self) -> list[CUSite]:
        """All CU sites of the array."""
        return list(self._sites.values())

    def pe_coordinates(self, pe: int) -> tuple[int, int]:
        """(row, col) of a PE index."""
        if not 0 <= pe < self.num_pes:
            raise ValueError(f"PE {pe} outside grid {self.rows}x{self.cols}")
        return divmod(pe, self.cols)

    def corners_of_pe(self, pe: int) -> list[tuple[int, int]]:
        """The four CU corners surrounding a PE (TL, TR, BL, BR order)."""
        r, c = self.pe_coordinates(pe)
        return [(r, c), (r, c + 1), (r + 1, c), (r + 1, c + 1)]

    def shared_cus(self, pe_a: int, pe_b: int) -> list[tuple[int, int]]:
        """CU corners adjacent to *both* PEs (direct spatial co-annealing).

        Non-empty exactly when the PEs are 4-neighbors or diagonal
        neighbors on the grid — the Mesh and DMesh reach.
        """
        return [
            corner
            for corner in self.corners_of_pe(pe_a)
            if corner in set(self.corners_of_pe(pe_b))
        ]

    def are_mesh_neighbors(self, pe_a: int, pe_b: int) -> bool:
        """4-neighbors on the array."""
        ra, ca = self.pe_coordinates(pe_a)
        rb, cb = self.pe_coordinates(pe_b)
        return abs(ra - rb) + abs(ca - cb) == 1

    def are_dmesh_neighbors(self, pe_a: int, pe_b: int) -> bool:
        """4-neighbors or diagonal neighbors."""
        ra, ca = self.pe_coordinates(pe_a)
        rb, cb = self.pe_coordinates(pe_b)
        return pe_a != pe_b and max(abs(ra - rb), abs(ca - cb)) == 1

    def wormhole_route(self, pe_a: int, pe_b: int) -> list[tuple[int, int]]:
        """CU corner sequence of a Wormhole between two remote PEs.

        The route starts at a CU adjacent to ``pe_a``, walks the
        super-connection grid in Manhattan fashion (row first, then
        column), and ends at a CU adjacent to ``pe_b``.  Its length models
        the super-connection resources the Wormhole occupies.
        """
        if self.are_dmesh_neighbors(pe_a, pe_b) or pe_a == pe_b:
            shared = self.shared_cus(pe_a, pe_b)
            return shared[:1]
        ra, ca = self.pe_coordinates(pe_a)
        rb, cb = self.pe_coordinates(pe_b)
        # Start/end at the corner of each PE facing the other PE.
        start = (ra + (1 if rb > ra else 0), ca + (1 if cb > ca else 0))
        end = (rb + (1 if ra > rb else 0), cb + (1 if ca > cb else 0))
        route = [start]
        r, c = start
        while r != end[0]:
            r += 1 if end[0] > r else -1
            route.append((r, c))
        while c != end[1]:
            c += 1 if end[1] > c else -1
            route.append((r, c))
        return route
