"""The Scalable DSPU hardware model (Sec. IV.C-D) and cost models."""

from .config import HardwareConfig
from .cost import (
    ACCELERATORS,
    BRIM_REFERENCE,
    AcceleratorModel,
    AcceleratorSpec,
    DSPUCostModel,
    HardwareCost,
    dsgl_energy_mj,
)
from .cu import CouplingUnit, CUCapacityError
from .interconnect import CUSite, MeshTopology
from .pe import ProcessingElement
from .programming import ConfigurationCost, ProgrammingModel
from .router import PORTALS, PortalOverflowError, Router
from .scalable_dspu import AnnealingOutcome, ScalableDSPU
from .scheduler import CoAnnealingSchedule, CouplingAssignment, build_schedule

__all__ = [
    "ACCELERATORS",
    "BRIM_REFERENCE",
    "AcceleratorModel",
    "AcceleratorSpec",
    "AnnealingOutcome",
    "CUCapacityError",
    "CUSite",
    "CoAnnealingSchedule",
    "ConfigurationCost",
    "CouplingAssignment",
    "CouplingUnit",
    "DSPUCostModel",
    "HardwareConfig",
    "HardwareCost",
    "MeshTopology",
    "PORTALS",
    "PortalOverflowError",
    "ProcessingElement",
    "ProgrammingModel",
    "Router",
    "ScalableDSPU",
    "build_schedule",
    "dsgl_energy_mj",
]
