"""First-order power/area/latency/energy cost models (Tables I and III).

Two models live here:

* :class:`DSPUCostModel` — per-component analog costs calibrated against
  the paper's Cadence 45-nm results (Table I): BRIM at 2000 spins is
  250 mW / 5 mm^2; the Real-Valued DSPU's circulative resistor rings add
  ~4% power and ~2% area; the Scalable DSPU (DS-GL) reaches 8000 spins at
  550 mW / 6.5 mm^2 — 4x the spins for ~2.1x the power and 1.3x the area,
  because a mesh of small crossbars replaces one enormous one.
* :class:`AcceleratorModel` — the Table III comparison methodology: GNN
  accelerators are charitably assumed to run at *peak* TFLOPS with
  *typical* power, so their latency is ``model FLOPs / peak rate`` and
  energy is ``latency x typical power``.  DS-GL's energy is its annealing
  time times chip power.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HardwareCost",
    "DSPUCostModel",
    "AcceleratorSpec",
    "AcceleratorModel",
    "ACCELERATORS",
    "BRIM_REFERENCE",
]

#: Table I reference row for BRIM.
BRIM_REFERENCE = {
    "effective_spins": 2000,
    "power_mw": 250.0,
    "area_mm2": 5.0,
    "scalable": False,
    "data_type": "binary",
}


@dataclass(frozen=True)
class HardwareCost:
    """Power/area summary of one machine configuration."""

    effective_spins: int
    power_mw: float
    area_mm2: float
    scalable: bool
    data_type: str


class DSPUCostModel:
    """Analog cost model calibrated to the paper's Table I.

    Component budget per the BRIM reference design: the all-to-all coupler
    crossbar dominates both power and area quadratically in the spin count;
    nodes (capacitor + comparator + control) scale linearly.  The
    Real-Valued DSPU adds one circulative resistor ring pair per node
    (linear overhead); the Scalable DSPU replaces the monolithic crossbar
    with per-PE crossbars plus CU crossbars and digital
    schedulers/routers.
    """

    # Calibrated against BRIM-2000 = 250 mW / 5 mm^2 with an 80/20
    # crossbar/node power split and a 94/6 area split (the n^2 coupler
    # crossbar dominates area).
    _COUPLER_POWER_MW = 250.0 * 0.8 / (2000.0**2)
    _NODE_POWER_MW = 250.0 * 0.2 / 2000.0
    _COUPLER_AREA_MM2 = 5.0 * 0.94 / (2000.0**2)
    _NODE_AREA_MM2 = 5.0 * 0.06 / 2000.0
    # Real-value support: resistor ring pair per node (DSPU-2000 lands at
    # 260 mW / 5.1 mm^2 as in Table I).
    _RING_POWER_FACTOR = 0.20  # of node power
    _RING_AREA_FACTOR = 0.333  # of node area
    # Scalable DSPU digital overhead per PE (routers, schedulers, buffers).
    _PE_DIGITAL_POWER_MW = 6.0
    _PE_DIGITAL_AREA_MM2 = 0.01

    def brim(self, spins: int = 2000) -> HardwareCost:
        """A monolithic binary BRIM chip."""
        return HardwareCost(
            effective_spins=spins,
            power_mw=self._monolithic_power(spins, real_valued=False),
            area_mm2=self._monolithic_area(spins, real_valued=False),
            scalable=False,
            data_type="binary",
        )

    def real_valued_dspu(self, spins: int = 2000) -> HardwareCost:
        """A monolithic Real-Valued DSPU (Sec. III hardware)."""
        return HardwareCost(
            effective_spins=spins,
            power_mw=self._monolithic_power(spins, real_valued=True),
            area_mm2=self._monolithic_area(spins, real_valued=True),
            scalable=False,
            data_type="real-value",
        )

    def scalable_dspu(
        self,
        grid_shape: tuple[int, int] = (4, 4),
        pe_capacity: int = 500,
        lanes: int = 30,
    ) -> HardwareCost:
        """A Scalable DSPU grid (Sec. IV hardware).

        Power/area = per-PE Real-Valued DSPU crossbars + CU crossbars
        (4L x 3L couplers each) + per-PE digital control.
        """
        rows, cols = grid_shape
        num_pes = rows * cols
        spins = num_pes * pe_capacity
        pe_power = num_pes * self._monolithic_power(pe_capacity, real_valued=True)
        pe_area = num_pes * self._monolithic_area(pe_capacity, real_valued=True)
        num_cus = (rows + 1) * (cols + 1)
        cu_couplers = 4 * lanes * 3 * lanes
        cu_power = num_cus * cu_couplers * self._COUPLER_POWER_MW
        cu_area = num_cus * cu_couplers * self._COUPLER_AREA_MM2
        digital_power = num_pes * self._PE_DIGITAL_POWER_MW
        digital_area = num_pes * self._PE_DIGITAL_AREA_MM2
        return HardwareCost(
            effective_spins=spins,
            power_mw=pe_power + cu_power + digital_power,
            area_mm2=pe_area + cu_area + digital_area,
            scalable=True,
            data_type="real-value",
        )

    def _monolithic_power(self, spins: int, real_valued: bool) -> float:
        power = (
            self._COUPLER_POWER_MW * spins**2 + self._NODE_POWER_MW * spins
        )
        if real_valued:
            power += self._RING_POWER_FACTOR * self._NODE_POWER_MW * spins
        return power

    def _monolithic_area(self, spins: int, real_valued: bool) -> float:
        area = self._COUPLER_AREA_MM2 * spins**2 + self._NODE_AREA_MM2 * spins
        if real_valued:
            area += self._RING_AREA_FACTOR * self._NODE_AREA_MM2 * spins
        return area


@dataclass(frozen=True)
class AcceleratorSpec:
    """One hardware platform row of Table III."""

    name: str
    platform: str
    peak_tflops: float
    max_power_w: float
    typical_power_w: float


#: The five comparison platforms of Table III.
ACCELERATORS: tuple[AcceleratorSpec, ...] = (
    AcceleratorSpec("AWB-GCN/I-GCN", "Stratix 10 SX", 2.7, 215.0, 137.0),
    AcceleratorSpec("NTGAT", "Xilinx Alveo U200", 1.4, 225.0, 100.0),
    AcceleratorSpec("GraphAGILE", "Xilinx Alveo U250", 2.8, 225.0, 110.0),
    AcceleratorSpec("RACE", "Xilinx Alveo U280", 2.1, 225.0, 100.0),
    AcceleratorSpec("GPU", "NVIDIA A100 SXM", 156.0, 400.0, 250.0),
)


class AcceleratorModel:
    """Latency/energy of GNN inference on an accelerator (Table III rules).

    "We assume these accelerators are of full utilization, achieving peak
    TFLOPs with typical power."
    """

    def __init__(self, spec: AcceleratorSpec):
        self.spec = spec

    def latency_us(self, flops: float) -> float:
        """Inference latency in microseconds at peak throughput."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        seconds = flops / (self.spec.peak_tflops * 1e12)
        return seconds * 1e6

    def energy_mj(self, flops: float) -> float:
        """Energy per inference in millijoules at typical power."""
        seconds = flops / (self.spec.peak_tflops * 1e12)
        return seconds * self.spec.typical_power_w * 1e3


def dsgl_energy_mj(latency_us: float, power_mw: float) -> float:
    """Energy of one DS-GL inference: annealing time x chip power."""
    if latency_us < 0 or power_mw < 0:
        raise ValueError("latency and power must be non-negative")
    return latency_us * 1e-6 * power_mw * 1e-3 * 1e3
