"""PE corner routers and analog exporting portals (Fig. 7/8).

A router owns one exporting portal of ``L`` analog lanes.  The Spatial
Scheduler asks it to allocate lanes for boundary nodes; the router refuses
past its lane budget — that refusal is what triggers Temporal & Spatial
co-annealing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PORTALS", "Router", "PortalOverflowError"]

#: The four exporting portals at the PE corners.
PORTALS: tuple[str, ...] = ("TL", "TR", "BL", "BR")


class PortalOverflowError(RuntimeError):
    """Raised when a lane allocation exceeds the portal's budget."""


@dataclass
class Router:
    """One corner router with an ``L``-lane analog portal.

    Attributes:
        portal: Portal name (``TL``/``TR``/``BL``/``BR``).
        lanes: Lane budget ``L``.
        allocations: node -> lane index currently held.
    """

    portal: str
    lanes: int
    allocations: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.portal not in PORTALS:
            raise ValueError(f"unknown portal {self.portal!r}")
        if self.lanes < 1:
            raise ValueError("lane budget must be positive")

    @property
    def free_lanes(self) -> int:
        """Unallocated lanes."""
        return self.lanes - len(self.allocations)

    def allocate(self, node: int) -> int:
        """Assign a lane to ``node`` (idempotent for already-routed nodes).

        Returns:
            The lane index.

        Raises:
            PortalOverflowError: No free lane remains.
        """
        if node in self.allocations:
            return self.allocations[node]
        if self.free_lanes <= 0:
            raise PortalOverflowError(
                f"portal {self.portal} out of lanes ({self.lanes})"
            )
        used = set(self.allocations.values())
        lane = next(k for k in range(self.lanes) if k not in used)
        self.allocations[node] = lane
        return lane

    def release(self, node: int) -> None:
        """Free the lane held by ``node`` (no-op when absent)."""
        self.allocations.pop(node, None)

    def release_all(self) -> None:
        """Free every lane."""
        self.allocations.clear()
