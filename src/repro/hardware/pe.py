"""Processing Element model (Sec. IV.C, "PE architecture").

Each PE is a small Real-Valued DSPU: ``K`` nodes fully coupled through a
local ``K x K`` crossbar, split into two partitions wired to the
(BL & TR) and (TL & BR) corner routers respectively, with four analog
exporting portals of ``L`` lanes each at the corners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .router import PORTALS, Router

__all__ = ["ProcessingElement"]


@dataclass
class ProcessingElement:
    """One PE of the Scalable DSPU grid.

    Attributes:
        index: PE index (row-major over the grid).
        nodes: Global indices of the nodes placed on this PE.
        capacity: ``K`` — the local crossbar size.
        lanes: ``L`` — lanes per exporting portal.
        routers: The four corner routers, keyed by portal name.
    """

    index: int
    nodes: np.ndarray
    capacity: int
    lanes: int
    routers: dict[str, Router] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=int)
        if self.nodes.size > self.capacity:
            raise ValueError(
                f"PE {self.index} holds {self.nodes.size} nodes, "
                f"capacity is {self.capacity}"
            )
        if np.unique(self.nodes).size != self.nodes.size:
            raise ValueError(f"PE {self.index} has duplicate nodes")
        if not self.routers:
            self.routers = {name: Router(name, self.lanes) for name in PORTALS}

    @property
    def occupancy(self) -> int:
        """Nodes currently placed."""
        return int(self.nodes.size)

    def partitions(self) -> tuple[np.ndarray, np.ndarray]:
        """The two node partitions (first half -> BL&TR, second -> TL&BR).

        Each partition contains ``K/2`` node slots and is served by its two
        corner routers.
        """
        half = (self.nodes.size + 1) // 2
        return self.nodes[:half], self.nodes[half:]

    def routers_of_node(self, node: int) -> tuple[str, str]:
        """The two portals a node can export through, per its partition."""
        first, _second = self.partitions()
        if node not in self.nodes:
            raise ValueError(f"node {node} is not on PE {self.index}")
        if node in first:
            return ("BL", "TR")
        return ("TL", "BR")

    def boundary_nodes(self, J: np.ndarray) -> np.ndarray:
        """Nodes of this PE coupled to at least one node of another PE.

        This is the PE's communication demand; the Temporal Scheduler
        compares it with the portal lane budget.
        """
        if self.nodes.size == 0:
            return self.nodes
        external = np.setdiff1d(np.arange(J.shape[0]), self.nodes)
        if external.size == 0:
            return np.zeros(0, dtype=int)
        talks = np.abs(J[np.ix_(self.nodes, external)]).sum(axis=1) > 0
        return self.nodes[talks]

    def local_coupling(self, J: np.ndarray) -> np.ndarray:
        """The intra-PE block of the global coupling matrix."""
        return J[np.ix_(self.nodes, self.nodes)]

    def reset_routers(self) -> None:
        """Release every lane allocation (new mapping round)."""
        for router in self.routers.values():
            router.release_all()
