"""SOTA spatio-temporal GNN baselines (GWN, MTGNN, DDGCRN), numpy edition."""

from .ddgcrn import DDGCRN
from .gat import GraphAttentionNet
from .gwn import GraphWaveNet
from .mtgnn import MTGNN
from .trainer import (
    GNNTrainConfig,
    GNNTrainer,
    WindowBatches,
    build_windows,
    default_adjacency,
)

__all__ = [
    "DDGCRN",
    "GNNTrainConfig",
    "GNNTrainer",
    "GraphAttentionNet",
    "GraphWaveNet",
    "MTGNN",
    "WindowBatches",
    "build_windows",
    "default_adjacency",
]
