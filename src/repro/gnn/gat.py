"""A spatio-temporal Graph Attention baseline (the NTGAT model family).

Table III includes NTGAT [17], an accelerator for graph *attention*
networks; this compact GAT-style forecaster completes the baseline family:
attention coefficients are computed from node features (masked to the
sensor graph's edges), applied per time step, and combined with a gated
temporal convolution, with the usual last-step readout head.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import ops
from ..nn.tensor import Tensor, as_tensor

__all__ = ["GraphAttentionNet"]


class GraphAttentionNet(nn.Module):
    """Gated temporal convolution + masked graph attention.

    Attention follows the GAT form: ``e_ij = leaky_relu(a_src . W x_i +
    a_dst . W x_j)`` masked to the graph's edges, normalized by softmax
    over the neighborhood, then used to mix transformed neighbor features.

    Args:
        num_nodes: Graph size ``N``.
        adjacency: Fixed adjacency whose non-zeros define the attention
            neighborhoods (self-loops are added).
        in_features: Per-node input channels.
        out_features: Per-node output channels.
        hidden: Channel width.
        blocks: Attention + temporal blocks.
        seed: Weight-initialization seed.
    """

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        in_features: int = 1,
        out_features: int = 1,
        hidden: int = 16,
        blocks: int = 2,
        seed: int = 3,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        adjacency = np.asarray(adjacency, dtype=float)
        if adjacency.shape != (num_nodes, num_nodes):
            raise ValueError("adjacency shape must match num_nodes")
        self.num_nodes = num_nodes
        # Edge mask with self-loops; -inf bias kills non-edges in softmax.
        mask = (adjacency != 0.0) | np.eye(num_nodes, dtype=bool)
        self._attention_bias = np.where(mask, 0.0, -1e9)
        self.input_proj = nn.Linear(in_features, hidden, rng=rng)
        self.transforms = [nn.Linear(hidden, hidden, rng=rng) for _ in range(blocks)]
        self.attn_src = [
            nn.Parameter(nn.init.normal((hidden,), rng, std=0.2))
            for _ in range(blocks)
        ]
        self.attn_dst = [
            nn.Parameter(nn.init.normal((hidden,), rng, std=0.2))
            for _ in range(blocks)
        ]
        self.temporal = [
            nn.GatedTemporalConv(hidden, hidden, kernel_size=2, dilation=b + 1, rng=rng)
            for b in range(blocks)
        ]
        self.head1 = nn.Linear(hidden, hidden, rng=rng, activation="relu")
        self.head2 = nn.Linear(hidden, out_features, rng=rng)
        self.hidden = hidden
        self.blocks = blocks

    def _cast_buffers(self, dtype: np.dtype) -> None:
        self._attention_bias = self._attention_bias.astype(dtype, copy=False)

    def _attend(self, h: Tensor, block: int) -> Tensor:
        """One masked attention layer over the node axis.

        ``h`` is ``(B, T, N, C)``; scores are ``(B, T, N, N)``.
        """
        transformed = self.transforms[block](h)  # (B, T, N, C)
        src = transformed @ self.attn_src[block]  # (B, T, N)
        dst = transformed @ self.attn_dst[block]  # (B, T, N)
        # e_ij = leaky_relu(src_i + dst_j): broadcast outer sum.
        b, t, n = src.shape
        scores = ops.leaky_relu(
            src.reshape(b, t, n, 1) + dst.reshape(b, t, 1, n), slope=0.2
        )
        scores = scores + self._attention_bias
        attention = ops.softmax(scores, axis=-1)
        return attention @ transformed

    def forward(self, x) -> Tensor:
        """Map ``(B, W, N, F_in)`` history to ``(B, N, F_out)`` prediction."""
        x = as_tensor(x)
        h = self.input_proj(x)
        for block in range(self.blocks):
            residual = h
            h = self.temporal[block](h)
            h = ops.relu(self._attend(h, block)) + residual
        out = self.head1(h[:, -1])
        return self.head2(out)

    def flops_per_inference(self, window: int) -> int:
        """Analytic multiply-accumulate count of one forward pass."""
        return self.estimate_flops(
            self.num_nodes, window, self.hidden, self.blocks
        )

    @staticmethod
    def estimate_flops(
        num_nodes: int, window: int, hidden: int, blocks: int = 2
    ) -> int:
        """FLOP count for arbitrary model dimensions (no instantiation)."""
        N, H = num_nodes, hidden
        total = 2 * window * N * H
        for _b in range(blocks):
            total += 2 * window * N * H * H  # transform
            total += 4 * window * N * H  # attention projections
            total += 3 * window * N * N  # scores + softmax
            total += 2 * window * N * N * H  # attention mixing
            total += 4 * window * N * H * H * 2  # gated temporal conv
        total += 2 * N * H * H + 2 * N * H
        return int(total)
