"""Graph WaveNet (GWN) baseline [36], compact numpy reimplementation.

Architecture shape follows the original: an input projection, a stack of
WaveNet blocks — gated dilated temporal convolution followed by a diffusion
graph convolution over the *fixed* transition matrix plus a *self-adaptive*
adjacency learned from node embeddings — with residual and skip
connections, and an output head that reads the final time step.

Scaled to laptop size (small hidden width, two blocks) since its role here
is the accuracy/latency baseline of Tables II-III, not SOTA leaderboard
chasing.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import ops
from ..nn.tensor import Tensor, as_tensor

__all__ = ["GraphWaveNet"]


class GraphWaveNet(nn.Module):
    """Gated TCN + diffusion graph convolution with adaptive adjacency.

    Args:
        num_nodes: Graph size ``N``.
        adjacency: Fixed normalized adjacency (numpy ``(N, N)``).
        in_features: Per-node input channels.
        out_features: Per-node output channels (prediction horizon = 1).
        hidden: Residual channel width.
        blocks: Number of WaveNet blocks (dilation doubles per block).
        embedding_dim: Node-embedding width of the adaptive adjacency.
        seed: Weight-initialization seed.
        graph_backend: ``None`` contracts the fixed adjacency through
            dense autograd matmuls (historical path); ``"auto"`` /
            ``"dense"`` / ``"sparse"`` routes it through a cached
            :class:`~repro.nn.GraphSupport` (CouplingOperator storage).
    """

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        in_features: int = 1,
        out_features: int = 1,
        hidden: int = 16,
        blocks: int = 2,
        embedding_dim: int = 8,
        seed: int = 0,
        graph_backend: str | None = None,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.adjacency = np.asarray(adjacency, dtype=float)
        if self.adjacency.shape != (num_nodes, num_nodes):
            raise ValueError("adjacency shape must match num_nodes")
        self.graph_backend = graph_backend
        self._graph_cache = nn.AdjacencyCache()
        self.input_proj = nn.Linear(in_features, hidden, rng=rng)
        self.adaptive = nn.AdaptiveAdjacency(num_nodes, embedding_dim, rng=rng)
        self.temporal = [
            nn.GatedTemporalConv(hidden, hidden, kernel_size=2, dilation=2**b, rng=rng)
            for b in range(blocks)
        ]
        self.spatial = [
            nn.GraphConv(hidden, hidden, order=2, rng=rng) for _ in range(blocks)
        ]
        self.skip_proj = [nn.Linear(hidden, hidden, rng=rng) for _ in range(blocks)]
        self.head1 = nn.Linear(hidden, hidden, rng=rng, activation="relu")
        self.head2 = nn.Linear(hidden, out_features, rng=rng)
        self.hidden = hidden
        self.blocks = blocks

    def _cast_buffers(self, dtype: np.dtype) -> None:
        self.adjacency = self.adjacency.astype(dtype, copy=False)

    def _fixed_support(self):
        """The fixed adjacency prepared once per (array identity, dtype)."""
        if self.graph_backend is None:
            return self._graph_cache.tensor(self.adjacency, self.adjacency.dtype)
        return self._graph_cache.support(
            self.adjacency, self.graph_backend, self.adjacency.dtype
        )

    def forward(self, x) -> Tensor:
        """Map ``(B, W, N, F_in)`` history to ``(B, N, F_out)`` prediction."""
        x = as_tensor(x)
        h = self.input_proj(x)
        adaptive = self.adaptive()
        fixed = self._fixed_support()
        skip: Tensor | None = None
        for temporal, spatial, proj in zip(self.temporal, self.spatial, self.skip_proj):
            residual = h
            h = temporal(h)
            # Diffusion over the fixed graph plus the learned one; the two
            # GraphConv hop stacks share weights across supports like the
            # compact variants of GWN.
            h = spatial(h, fixed) + spatial(h, adaptive)
            h = h + residual
            s = proj(h[:, -1])  # (B, N, hidden) at the final step
            skip = s if skip is None else skip + s
        assert skip is not None
        out = self.head1(ops.relu(skip))
        return self.head2(out)

    def flops_per_inference(self, window: int) -> int:
        """Analytic multiply-accumulate count of one forward pass.

        Used by the Table III latency model (latency = FLOPs / peak rate).
        """
        return self.estimate_flops(
            self.adjacency.shape[0], window, self.hidden, self.blocks
        )

    @staticmethod
    def estimate_flops(
        num_nodes: int, window: int, hidden: int, blocks: int = 2
    ) -> int:
        """FLOP count for arbitrary model dimensions (no instantiation).

        Lets the Table III harness cost a paper-scale deployment (thousands
        of nodes) without building the weight tensors.
        """
        N, H = num_nodes, hidden
        total = 2 * window * N * H  # input projection
        for _b in range(blocks):
            total += 4 * window * N * H * H * 2  # two gated convs, 2 taps
            total += 2 * 2 * (window * N * N * H + 3 * window * N * H * H)  # graph convs
            total += 2 * N * H * H  # skip projection
        total += 2 * N * H * H + 2 * N * H
        total += 2 * N * N * 8  # adaptive adjacency
        return int(total)
