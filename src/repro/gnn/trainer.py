"""Training/evaluation harness for the GNN baselines.

Builds sliding-window supervision from a :class:`SpatioTemporalDataset`,
trains with Adam + gradient clipping + early stopping on a chronological
validation split, and measures test RMSE and wall-clock inference latency —
the quantities Tables II-IV report for the baselines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.metrics import rmse
from ..datasets.base import SpatioTemporalDataset
from ..datasets.graphs import normalized_adjacency
from ..nn import Adam, Module, Tensor, clip_grad_norm, no_grad, ops

__all__ = ["WindowBatches", "GNNTrainConfig", "GNNTrainer", "build_windows"]


def build_windows(
    series: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding windows: ``X (S, window, N, F)`` history, ``y (S, N, F)`` next.

    Accepts ``(T, N)`` (expanded to one feature) or ``(T, N, F)`` series.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim == 2:
        series = series[:, :, None]
    if series.ndim != 3:
        raise ValueError(f"series must be (T, N) or (T, N, F), got {series.shape}")
    T = series.shape[0]
    if T <= window:
        raise ValueError(f"series of {T} frames too short for window {window}")
    X = np.stack([series[s : s + window] for s in range(T - window)])
    y = series[window:]
    return X, y


@dataclass
class WindowBatches:
    """Mini-batch iterator over windowed supervision pairs."""

    X: np.ndarray
    y: np.ndarray
    batch_size: int
    rng: np.random.Generator

    def __iter__(self):
        order = self.rng.permutation(self.X.shape[0])
        for start in range(0, order.size, self.batch_size):
            index = order[start : start + self.batch_size]
            yield self.X[index], self.y[index]


@dataclass
class GNNTrainConfig:
    """Hyper-parameters of baseline training.

    Attributes:
        window: History length fed to the model.
        epochs: Maximum training epochs.
        batch_size: Mini-batch size.
        lr: Adam learning rate.
        grad_clip: Global gradient-norm bound.
        patience: Early-stopping patience in epochs.
        seed: Shuffling seed.
    """

    window: int = 6
    epochs: int = 30
    batch_size: int = 32
    lr: float = 5e-3
    grad_clip: float = 5.0
    patience: int = 6
    seed: int = 0


@dataclass
class GNNTrainer:
    """Trains one baseline model on one dataset.

    Attributes:
        model: A module mapping ``(B, W, N, F)`` to ``(B, N, F)``.
        config: Training hyper-parameters.
        history: Per-epoch (train_loss, val_rmse) pairs, filled by ``fit``.
    """

    model: Module
    config: GNNTrainConfig = field(default_factory=GNNTrainConfig)
    history: list[tuple[float, float]] = field(default_factory=list)

    def fit(
        self,
        train: SpatioTemporalDataset,
        val: SpatioTemporalDataset | None = None,
    ) -> "GNNTrainer":
        """Train to convergence (early-stopped on validation RMSE)."""
        cfg = self.config
        X_train, y_train = build_windows(train.series, cfg.window)
        if val is not None and val.num_frames > cfg.window:
            X_val, y_val = build_windows(val.series, cfg.window)
        else:
            X_val = y_val = None
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.model.parameters(), lr=cfg.lr)
        best_val = np.inf
        best_state: dict[str, np.ndarray] | None = None
        stall = 0
        for _epoch in range(cfg.epochs):
            self.model.train()
            batches = WindowBatches(X_train, y_train, cfg.batch_size, rng)
            losses = []
            for xb, yb in batches:
                optimizer.zero_grad()
                prediction = self.model(Tensor(xb))
                loss = ops.mse_loss(prediction, yb)
                loss.backward()
                clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                optimizer.step()
                losses.append(loss.item())
            if X_val is not None:
                val_rmse = self._score(X_val, y_val)
            else:
                val_rmse = float(np.sqrt(np.mean(losses)))
            self.history.append((float(np.mean(losses)), val_rmse))
            if val_rmse < best_val - 1e-6:
                best_val = val_rmse
                best_state = self.model.state_dict()
                stall = 0
            else:
                stall += 1
                if stall >= cfg.patience:
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def _score(self, X: np.ndarray, y: np.ndarray) -> float:
        self.model.eval()
        with no_grad():
            prediction = self.model(Tensor(X))
        return rmse(prediction.numpy(), y)

    def evaluate(self, test: SpatioTemporalDataset) -> float:
        """Test RMSE over all windows of the test split."""
        X, y = build_windows(test.series, self.config.window)
        return self._score(X, y)

    def predict(self, history: np.ndarray) -> np.ndarray:
        """One-step prediction from a single ``(W, N, F)`` history."""
        history = np.asarray(history, dtype=float)
        if history.ndim == 2:
            history = history[:, :, None]
        self.model.eval()
        with no_grad():
            prediction = self.model(Tensor(history[None]))
        return prediction.numpy()[0]

    def measure_latency(
        self, test: SpatioTemporalDataset, repeats: int = 10
    ) -> float:
        """Median wall-clock seconds of one single-window inference."""
        X, _ = build_windows(test.series, self.config.window)
        sample = X[:1]
        self.model.eval()
        timings = []
        with no_grad():
            self.model(Tensor(sample))  # warm-up
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                self.model(Tensor(sample))
                timings.append(time.perf_counter() - start)
        return float(np.median(timings))


def default_adjacency(dataset: SpatioTemporalDataset) -> np.ndarray:
    """Normalized adjacency of a dataset's sensor graph (model input)."""
    return normalized_adjacency(dataset.network.adjacency)
