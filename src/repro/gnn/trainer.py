"""Training/evaluation harness for the GNN baselines.

Builds sliding-window supervision from a :class:`SpatioTemporalDataset`,
trains with Adam + gradient clipping + early stopping on a chronological
validation split, and measures test RMSE and wall-clock inference latency —
the quantities Tables II-IV report for the baselines.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.metrics import rmse
from ..datasets.base import SpatioTemporalDataset
from ..datasets.graphs import normalized_adjacency
from ..nn import Adam, Module, Tensor, clip_grad_norm, no_grad, ops

__all__ = ["WindowBatches", "GNNTrainConfig", "GNNTrainer", "build_windows"]

logger = logging.getLogger("repro.gnn")


def build_windows(
    series: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding windows: ``X (S, window, N, F)`` history, ``y (S, N, F)`` next.

    Accepts ``(T, N)`` (expanded to one feature) or ``(T, N, F)`` series.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim == 2:
        series = series[:, :, None]
    if series.ndim != 3:
        raise ValueError(f"series must be (T, N) or (T, N, F), got {series.shape}")
    T = series.shape[0]
    if T <= window:
        raise ValueError(f"series of {T} frames too short for window {window}")
    X = np.stack([series[s : s + window] for s in range(T - window)])
    y = series[window:]
    return X, y


@dataclass
class WindowBatches:
    """Mini-batch iterator over windowed supervision pairs."""

    X: np.ndarray
    y: np.ndarray
    batch_size: int
    rng: np.random.Generator

    def __iter__(self):
        order = self.rng.permutation(self.X.shape[0])
        for start in range(0, order.size, self.batch_size):
            index = order[start : start + self.batch_size]
            yield self.X[index], self.y[index]


@dataclass
class GNNTrainConfig:
    """Hyper-parameters of baseline training.

    Attributes:
        window: History length fed to the model.
        epochs: Maximum training epochs.
        batch_size: Mini-batch size.
        lr: Adam learning rate.
        grad_clip: Global gradient-norm bound.
        patience: Early-stopping patience in epochs.
        seed: Shuffling seed.
    """

    window: int = 6
    epochs: int = 30
    batch_size: int = 32
    lr: float = 5e-3
    grad_clip: float = 5.0
    patience: int = 6
    seed: int = 0


@dataclass
class GNNTrainer:
    """Trains one baseline model on one dataset.

    Attributes:
        model: A module mapping ``(B, W, N, F)`` to ``(B, N, F)``.
        config: Training hyper-parameters.
        history: Per-epoch (train_loss, val_rmse) pairs, filled by ``fit``.
    """

    model: Module
    config: GNNTrainConfig = field(default_factory=GNNTrainConfig)
    history: list[tuple[float, float]] = field(default_factory=list)

    def fit(
        self,
        train: SpatioTemporalDataset,
        val: SpatioTemporalDataset | None = None,
    ) -> "GNNTrainer":
        """Train to convergence (early-stopped on validation RMSE)."""
        cfg = self.config
        X_train, y_train = build_windows(train.series, cfg.window)
        if val is not None and val.num_frames > cfg.window:
            X_val, y_val = build_windows(val.series, cfg.window)
        else:
            X_val = y_val = None
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.model.parameters(), lr=cfg.lr)
        best_val = np.inf
        best_state: dict[str, np.ndarray] | None = None
        stall = 0
        with obs.tracer().span(
            "gnn.fit",
            model=type(self.model).__name__,
            max_epochs=cfg.epochs,
            samples=int(X_train.shape[0]),
        ) as fit_span:
            epochs_run = 0
            for epoch in range(cfg.epochs):
                epoch_start = time.perf_counter()
                self.model.train()
                batches = WindowBatches(X_train, y_train, cfg.batch_size, rng)
                losses = []
                grad_norms = []
                for xb, yb in batches:
                    optimizer.zero_grad()
                    prediction = self.model(Tensor(xb))
                    loss = ops.mse_loss(prediction, yb)
                    loss.backward()
                    grad_norms.append(
                        clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                    )
                    optimizer.step()
                    losses.append(loss.item())
                if X_val is not None:
                    val_rmse = self._score(X_val, y_val)
                else:
                    val_rmse = float(np.sqrt(np.mean(losses)))
                train_loss = float(np.mean(losses))
                self.history.append((train_loss, val_rmse))
                epochs_run = epoch + 1
                epoch_ms = (time.perf_counter() - epoch_start) * 1000.0
                grad_norm = float(np.mean(grad_norms)) if grad_norms else 0.0
                if obs.enabled():
                    registry = obs.metrics()
                    registry.histogram("gnn.epoch_loss").observe(train_loss)
                    registry.histogram("gnn.epoch_ms").observe(epoch_ms)
                    registry.histogram("gnn.grad_norm").observe(grad_norm)
                    registry.counter("gnn.epochs").inc()
                    obs.tracer().event(
                        "gnn.epoch",
                        epoch=epoch,
                        train_loss=train_loss,
                        val_rmse=val_rmse,
                        grad_norm=grad_norm,
                        epoch_ms=epoch_ms,
                    )
                logger.info(
                    "epoch %d: train_loss=%.5f val_rmse=%.5f grad_norm=%.3f "
                    "(%.0f ms)",
                    epoch, train_loss, val_rmse, grad_norm, epoch_ms,
                )
                if val_rmse < best_val - 1e-6:
                    best_val = val_rmse
                    best_state = self.model.state_dict()
                    stall = 0
                else:
                    stall += 1
                    if stall >= cfg.patience:
                        logger.info(
                            "early stop at epoch %d (best val RMSE %.5f)",
                            epoch, best_val,
                        )
                        break
            fit_span.set("epochs_run", epochs_run)
            fit_span.set("best_val_rmse", float(best_val))
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def _score(self, X: np.ndarray, y: np.ndarray) -> float:
        self.model.eval()
        with no_grad():
            prediction = self.model(Tensor(X))
        return rmse(prediction.numpy(), y)

    def evaluate(self, test: SpatioTemporalDataset) -> float:
        """Test RMSE over all windows of the test split."""
        X, y = build_windows(test.series, self.config.window)
        return self._score(X, y)

    def predict(self, history: np.ndarray) -> np.ndarray:
        """One-step prediction from a single ``(W, N, F)`` history."""
        history = np.asarray(history, dtype=float)
        if history.ndim == 2:
            history = history[:, :, None]
        self.model.eval()
        with no_grad():
            prediction = self.model(Tensor(history[None]))
        return prediction.numpy()[0]

    def measure_latency(
        self, test: SpatioTemporalDataset, repeats: int = 10
    ) -> float:
        """Median wall-clock seconds of one single-window inference."""
        X, _ = build_windows(test.series, self.config.window)
        sample = X[:1]
        self.model.eval()
        timings = []
        with no_grad():
            self.model(Tensor(sample))  # warm-up
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                self.model(Tensor(sample))
                timings.append(time.perf_counter() - start)
        return float(np.median(timings))


def default_adjacency(dataset: SpatioTemporalDataset) -> np.ndarray:
    """Normalized adjacency of a dataset's sensor graph (model input)."""
    return normalized_adjacency(dataset.network.adjacency)
