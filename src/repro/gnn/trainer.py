"""Training/evaluation harness for the GNN baselines.

Builds sliding-window supervision from a :class:`SpatioTemporalDataset`,
trains with Adam + gradient clipping + early stopping on a chronological
validation split, and measures test RMSE and wall-clock inference latency —
the quantities Tables II-IV report for the baselines.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.metrics import rmse
from ..datasets.base import SpatioTemporalDataset
from ..datasets.graphs import normalized_adjacency
from ..nn import Adam, Module, Tensor, clip_grad_norm, no_grad, ops

__all__ = ["WindowBatches", "GNNTrainConfig", "GNNTrainer", "build_windows"]

logger = logging.getLogger("repro.gnn")


def build_windows(
    series: np.ndarray, window: int, dtype=None
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding windows: ``X (S, window, N, F)`` history, ``y (S, N, F)`` next.

    Accepts ``(T, N)`` (expanded to one feature) or ``(T, N, F)`` series.
    ``X`` is a zero-copy strided view of the series (every window shares
    the underlying buffer); mini-batch fancy indexing materializes only
    the rows it draws.  ``dtype`` casts the series first (``None`` keeps
    float64).
    """
    series = np.asarray(series, dtype=float if dtype is None else dtype)
    if series.ndim == 2:
        series = series[:, :, None]
    if series.ndim != 3:
        raise ValueError(f"series must be (T, N) or (T, N, F), got {series.shape}")
    T = series.shape[0]
    if T <= window:
        raise ValueError(f"series of {T} frames too short for window {window}")
    view = np.lib.stride_tricks.sliding_window_view(series, window, axis=0)
    X = np.moveaxis(view[: T - window], -1, 1)
    y = series[window:]
    return X, y


def _weighted_mean(values: list[float], weights: list[int]) -> float:
    """Batch-size-weighted mean of per-batch statistics.

    Equal weights take ``np.mean`` so the historical (and bitwise-pinned)
    result is untouched whenever the batch size divides the split.
    """
    if not values:
        return float("nan")
    if len(set(weights)) == 1:
        return float(np.mean(values))
    return float(np.average(values, weights=weights))


@dataclass
class WindowBatches:
    """Mini-batch iterator over windowed supervision pairs."""

    X: np.ndarray
    y: np.ndarray
    batch_size: int
    rng: np.random.Generator

    def __iter__(self):
        order = self.rng.permutation(self.X.shape[0])
        for start in range(0, order.size, self.batch_size):
            index = order[start : start + self.batch_size]
            yield self.X[index], self.y[index]


@dataclass
class GNNTrainConfig:
    """Hyper-parameters of baseline training.

    Attributes:
        window: History length fed to the model.
        epochs: Maximum training epochs.
        batch_size: Mini-batch size.
        lr: Adam learning rate.
        grad_clip: Global gradient-norm bound.
        patience: Early-stopping patience in epochs.
        seed: Shuffling seed.
        dtype: Training dtype (``"float32"`` for the fast path); ``None``
            keeps the historical float64 and never touches the model.
            When set, ``fit``/``evaluate`` cast model and windows to it.
        eval_batch_size: Chunk size for validation/test scoring; ``None``
            pushes the whole split through in one batch (historical
            behaviour, ``O(split)`` peak memory).
    """

    window: int = 6
    epochs: int = 30
    batch_size: int = 32
    lr: float = 5e-3
    grad_clip: float = 5.0
    patience: int = 6
    seed: int = 0
    dtype: str | None = None
    eval_batch_size: int | None = None


@dataclass
class GNNTrainer:
    """Trains one baseline model on one dataset.

    Attributes:
        model: A module mapping ``(B, W, N, F)`` to ``(B, N, F)``.
        config: Training hyper-parameters.
        history: Per-epoch (train_loss, val_rmse) pairs, filled by ``fit``.
    """

    model: Module
    config: GNNTrainConfig = field(default_factory=GNNTrainConfig)
    history: list[tuple[float, float]] = field(default_factory=list)

    def fit(
        self,
        train: SpatioTemporalDataset,
        val: SpatioTemporalDataset | None = None,
    ) -> "GNNTrainer":
        """Train to convergence (early-stopped on validation RMSE)."""
        cfg = self.config
        dtype = self._dtype()
        self._align_model_dtype()
        X_train, y_train = build_windows(train.series, cfg.window, dtype)
        if val is not None and val.num_frames > cfg.window:
            X_val, y_val = build_windows(val.series, cfg.window, dtype)
        else:
            X_val = y_val = None
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.model.parameters(), lr=cfg.lr)
        best_val = np.inf
        best_state: dict[str, np.ndarray] | None = None
        stall = 0
        with obs.tracer().span(
            "gnn.fit",
            model=type(self.model).__name__,
            max_epochs=cfg.epochs,
            samples=int(X_train.shape[0]),
        ) as fit_span:
            epochs_run = 0
            for epoch in range(cfg.epochs):
                epoch_start = time.perf_counter()
                self.model.train()
                batches = WindowBatches(X_train, y_train, cfg.batch_size, rng)
                losses = []
                sizes = []
                grad_norms = []
                for xb, yb in batches:
                    optimizer.zero_grad()
                    prediction = self.model(Tensor(xb))
                    loss = ops.mse_loss(prediction, yb)
                    loss.backward()
                    grad_norms.append(
                        clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                    )
                    optimizer.step()
                    losses.append(loss.item())
                    sizes.append(int(xb.shape[0]))
                train_mse = _weighted_mean(losses, sizes)
                if X_val is not None:
                    val_rmse = self._score(X_val, y_val)
                else:
                    # Per-batch MSEs weighted by batch size: with a
                    # non-divisible split the last partial batch must not
                    # count as much as a full one.
                    val_rmse = float(np.sqrt(train_mse))
                train_loss = train_mse
                self.history.append((train_loss, val_rmse))
                epochs_run = epoch + 1
                epoch_ms = (time.perf_counter() - epoch_start) * 1000.0
                grad_norm = float(np.mean(grad_norms)) if grad_norms else 0.0
                if obs.enabled():
                    registry = obs.metrics()
                    registry.histogram("gnn.epoch_loss").observe(train_loss)
                    registry.histogram("gnn.epoch_ms").observe(epoch_ms)
                    registry.histogram("gnn.grad_norm").observe(grad_norm)
                    registry.counter("gnn.epochs").inc()
                    obs.tracer().event(
                        "gnn.epoch",
                        epoch=epoch,
                        train_loss=train_loss,
                        val_rmse=val_rmse,
                        grad_norm=grad_norm,
                        epoch_ms=epoch_ms,
                    )
                logger.info(
                    "epoch %d: train_loss=%.5f val_rmse=%.5f grad_norm=%.3f "
                    "(%.0f ms)",
                    epoch, train_loss, val_rmse, grad_norm, epoch_ms,
                )
                if val_rmse < best_val - 1e-6:
                    best_val = val_rmse
                    best_state = self.model.state_dict()
                    stall = 0
                else:
                    stall += 1
                    if stall >= cfg.patience:
                        logger.info(
                            "early stop at epoch %d (best val RMSE %.5f)",
                            epoch, best_val,
                        )
                        break
            fit_span.set("epochs_run", epochs_run)
            fit_span.set("best_val_rmse", float(best_val))
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def _dtype(self) -> np.dtype:
        cfg = self.config
        return np.dtype(float if cfg.dtype is None else cfg.dtype)

    def _align_model_dtype(self) -> None:
        """Cast the model to the configured dtype (explicit opt-in only)."""
        if self.config.dtype is None:
            return
        dtype = self._dtype()
        if any(p.data.dtype != dtype for p in self.model.parameters()):
            self.model.astype(dtype)

    def _score(self, X: np.ndarray, y: np.ndarray) -> float:
        self.model.eval()
        chunk = self.config.eval_batch_size
        samples = X.shape[0]
        with no_grad():
            if chunk is None or chunk >= samples:
                prediction = self.model(Tensor(X)).numpy()
            else:
                if chunk < 1:
                    raise ValueError("eval_batch_size must be positive")
                prediction = np.concatenate(
                    [
                        self.model(Tensor(X[start : start + chunk])).numpy()
                        for start in range(0, samples, chunk)
                    ],
                    axis=0,
                )
        return rmse(prediction, y)

    def evaluate(self, test: SpatioTemporalDataset) -> float:
        """Test RMSE over all windows of the test split."""
        self._align_model_dtype()
        X, y = build_windows(test.series, self.config.window, self._dtype())
        return self._score(X, y)

    def predict(self, history: np.ndarray) -> np.ndarray:
        """One-step prediction from a single ``(W, N, F)`` history."""
        self._align_model_dtype()
        history = np.asarray(history, dtype=self._dtype())
        if history.ndim == 2:
            history = history[:, :, None]
        self.model.eval()
        with no_grad():
            prediction = self.model(Tensor(history[None]))
        return prediction.numpy()[0]

    def measure_latency(
        self, test: SpatioTemporalDataset, repeats: int = 10
    ) -> float:
        """Median wall-clock seconds of one single-window inference."""
        self._align_model_dtype()
        X, _ = build_windows(test.series, self.config.window, self._dtype())
        sample = X[:1]
        self.model.eval()
        timings = []
        with no_grad():
            self.model(Tensor(sample))  # warm-up
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                self.model(Tensor(sample))
                timings.append(time.perf_counter() - start)
        return float(np.median(timings))


def default_adjacency(dataset: SpatioTemporalDataset) -> np.ndarray:
    """Normalized adjacency of a dataset's sensor graph (model input)."""
    return normalized_adjacency(dataset.network.adjacency)
