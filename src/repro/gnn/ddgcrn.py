"""DDGCRN baseline [34], compact numpy reimplementation.

The Decomposition Dynamic Graph Convolutional Recurrent Network separates
the signal into a regular component and a residual component, each
processed by a graph-convolutional GRU whose gates are graph convolutions
over a *dynamic* adjacency generated from node embeddings modulated by the
current input.  This compact version keeps the two-branch decomposition and
the GCGRU recurrence.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import ops
from ..nn.tensor import Tensor, as_tensor

__all__ = ["DDGCRN"]


class _GraphGRUTransform(nn.Module):
    """Gate transform of the GCGRU: graph convolution over [x, h]."""

    def __init__(self, in_channels: int, out_channels: int, rng: np.random.Generator):
        super().__init__()
        self.conv = nn.GraphConv(in_channels, out_channels, order=2, rng=rng)

    def forward(self, xh: Tensor, adjacency) -> Tensor:
        return self.conv(xh, adjacency)


class DDGCRN(nn.Module):
    """Two-branch decomposition GCGRU forecaster.

    Args:
        num_nodes: Graph size ``N``.
        adjacency: Fixed normalized adjacency blended into the dynamic one.
        in_features: Per-node input channels.
        out_features: Per-node output channels.
        hidden: GRU state width.
        embedding_dim: Node-embedding width of the dynamic graph generator.
        seed: Weight-initialization seed.
    """

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        in_features: int = 1,
        out_features: int = 1,
        hidden: int = 16,
        embedding_dim: int = 8,
        seed: int = 2,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.adjacency = np.asarray(adjacency, dtype=float)
        self.num_nodes = num_nodes
        self.hidden = hidden
        self.in_features = in_features
        make = lambda: _GraphGRUTransform(in_features + hidden, hidden, rng)
        self.regular_cell = nn.GRUCell(make)
        make_res = lambda: _GraphGRUTransform(in_features + hidden, hidden, rng)
        self.residual_cell = nn.GRUCell(make_res)
        self.dynamic_graph = nn.AdaptiveAdjacency(num_nodes, embedding_dim, rng=rng)
        self.regular_head = nn.Linear(hidden, out_features, rng=rng)
        self.residual_head = nn.Linear(hidden, out_features, rng=rng)
        # The "regular" component is a learned per-node periodic template;
        # subtracting it leaves the residual branch the bursty remainder.
        self.template = nn.Parameter(np.zeros((num_nodes, in_features)))

    def _cast_buffers(self, dtype: np.dtype) -> None:
        self.adjacency = self.adjacency.astype(dtype, copy=False)

    def forward(self, x) -> Tensor:
        """Map ``(B, W, N, F_in)`` history to ``(B, N, F_out)`` prediction."""
        x = as_tensor(x)
        batch = x.shape[0]
        window = x.shape[1]
        dynamic = 0.5 * (self.dynamic_graph() + self.adjacency)
        state_shape = (batch, self.num_nodes, self.hidden)
        regular_state = Tensor(np.zeros(state_shape, dtype=x.data.dtype))
        residual_state = Tensor(np.zeros(state_shape, dtype=x.data.dtype))
        for t in range(window):
            frame = x[:, t]
            # Decomposition: the learned per-node template is the regular
            # component; the detrended remainder feeds the residual branch.
            regular_input = frame * 0.0 + self.template  # broadcast to batch
            detrended = frame - self.template
            regular_state = self.regular_cell(regular_input, regular_state, dynamic)
            residual_state = self.residual_cell(detrended, residual_state, dynamic)
        return self.regular_head(regular_state) + self.residual_head(residual_state)

    def flops_per_inference(self, window: int) -> int:
        """Analytic multiply-accumulate count of one forward pass."""
        return self.estimate_flops(
            self.num_nodes, window, self.hidden, in_features=self.in_features
        )

    @staticmethod
    def estimate_flops(
        num_nodes: int, window: int, hidden: int, in_features: int = 1
    ) -> int:
        """FLOP count for arbitrary model dimensions (no instantiation)."""
        N, H, F = num_nodes, hidden, in_features
        per_gate = 2 * N * N * (F + H) + 3 * N * (F + H) * H
        total = window * 2 * 3 * per_gate  # two cells x three gates per step
        total += 2 * 2 * N * H
        total += 2 * N * N * 8
        return int(total)
