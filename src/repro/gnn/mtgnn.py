"""MTGNN baseline [35], compact numpy reimplementation.

Follows the paper's shape: a *graph learning layer* builds a sparse
directed adjacency from node embeddings; each block applies a temporal
inception module (parallel dilated convolutions with different kernel
sizes, concatenated) followed by *mix-hop propagation* over the learned
graph in both edge directions, with residual connections; the output head
reads the final step.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import ops
from ..nn.tensor import Tensor, as_tensor

__all__ = ["MTGNN"]


class MTGNN(nn.Module):
    """Multivariate time-series GNN with learned graph structure.

    Args:
        num_nodes: Graph size ``N``.
        adjacency: Fixed normalized adjacency blended with the learned one.
        in_features: Per-node input channels.
        out_features: Per-node output channels.
        hidden: Channel width.
        blocks: Number of inception + mix-hop blocks.
        embedding_dim: Node-embedding width of the graph learning layer.
        seed: Weight-initialization seed.
    """

    def __init__(
        self,
        num_nodes: int,
        adjacency: np.ndarray,
        in_features: int = 1,
        out_features: int = 1,
        hidden: int = 16,
        blocks: int = 2,
        embedding_dim: int = 8,
        seed: int = 1,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.adjacency = np.asarray(adjacency, dtype=float)
        self.input_proj = nn.Linear(in_features, hidden, rng=rng)
        self.graph_learner = nn.AdaptiveAdjacency(num_nodes, embedding_dim, rng=rng)
        kernels = (2, 3)
        if hidden % len(kernels):
            raise ValueError("hidden must be divisible by the inception branches")
        branch = hidden // len(kernels)
        self.inception = [
            [
                nn.TemporalConv(hidden, branch, kernel_size=k, dilation=b + 1, rng=rng)
                for k in kernels
            ]
            for b in range(blocks)
        ]
        self.mixhop_fwd = [
            nn.GraphConv(hidden, hidden, order=2, rng=rng) for _ in range(blocks)
        ]
        self.mixhop_bwd = [
            nn.GraphConv(hidden, hidden, order=2, rng=rng) for _ in range(blocks)
        ]
        self.norms = [nn.LayerNorm(hidden) for _ in range(blocks)]
        self.head1 = nn.Linear(hidden, hidden, rng=rng, activation="relu")
        self.head2 = nn.Linear(hidden, out_features, rng=rng)
        self.hidden = hidden
        self.blocks = blocks

    def _cast_buffers(self, dtype: np.dtype) -> None:
        self.adjacency = self.adjacency.astype(dtype, copy=False)

    def forward(self, x) -> Tensor:
        """Map ``(B, W, N, F_in)`` history to ``(B, N, F_out)`` prediction."""
        x = as_tensor(x)
        h = self.input_proj(x)
        learned = self.graph_learner()
        # Blend learned structure with the physical sensor graph.
        forward_support = 0.5 * (learned + self.adjacency)
        backward_support = forward_support.T
        for branches, fwd, bwd, norm in zip(
            self.inception, self.mixhop_fwd, self.mixhop_bwd, self.norms
        ):
            residual = h
            h = ops.relu(ops.concat([conv(h) for conv in branches], axis=-1))
            h = fwd(h, forward_support) + bwd(h, backward_support)
            h = norm(h + residual)
        out = self.head1(h[:, -1])
        return self.head2(out)

    def flops_per_inference(self, window: int) -> int:
        """Analytic multiply-accumulate count of one forward pass."""
        return self.estimate_flops(
            self.adjacency.shape[0], window, self.hidden, self.blocks
        )

    @staticmethod
    def estimate_flops(
        num_nodes: int, window: int, hidden: int, blocks: int = 2
    ) -> int:
        """FLOP count for arbitrary model dimensions (no instantiation)."""
        N, H = num_nodes, hidden
        total = 2 * window * N * H
        for _b in range(blocks):
            total += 2 * window * N * H * (H // 2) * (2 + 3)  # inception taps
            total += 2 * 2 * (2 * window * N * N * H + 3 * window * N * H * H)
            total += 6 * window * N * H  # layer norm
        total += 2 * N * H * H + 2 * N * H
        total += 2 * N * N * 8
        return int(total)
