"""Gradient-based optimizers for the autograd parameters."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in parameters:
        if p.grad is not None:
            total += float(np.sum(p.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        factor = max_norm / (norm + 1e-12)
        for p in parameters:
            if p.grad is not None:
                p.grad *= factor
    return norm


class Optimizer:
    """Base optimizer: owns a parameter list and clears gradients."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, velocity in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction and decoupled-free weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            p.data = p.data - self.lr * (m / correction1) / (
                np.sqrt(v / correction2) + self.eps
            )
