"""Neural layers used by the spatio-temporal GNN baselines.

Shape convention throughout the GNN stack: node feature maps are
``(batch, time, nodes, channels)``.  Temporal convolutions run along the
time axis with causal (left) padding; graph convolutions contract over the
node axis with a fixed or learned adjacency.
"""

from __future__ import annotations

import numpy as np

from . import init, ops
from .graph import GraphSupport, graph_propagate
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = [
    "Dropout",
    "Embedding",
    "Linear",
    "LayerNorm",
    "Sequential",
    "TemporalConv",
    "GatedTemporalConv",
    "GraphConv",
    "AdaptiveAdjacency",
    "GRUCell",
]


class Linear(Module):
    """Affine map over the trailing (channel) axis.

    ``activation`` (``None``/``"relu"``/``"tanh"``/``"sigmoid"``) fuses
    the nonlinearity into the same graph node via
    :func:`~repro.nn.ops.linear_act`.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        activation: str | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        return ops.linear_act(x, self.weight, self.bias, self.activation)


class LayerNorm(Module):
    """Normalization over the trailing channel axis with learned scale/shift."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(features))
        self.beta = Parameter(np.zeros(features))

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered * ((variance + self.eps) ** -0.5)
        return normalized * self.gamma + self.beta


class TemporalConv(Module):
    """Dilated causal convolution along the time axis.

    Implements ``out[:, t] = sum_k x[:, t - k * dilation] @ W_k + b`` with
    zero left-padding, the building block of WaveNet-style temporal
    modules in GWN and MTGNN.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        rng: np.random.Generator | None = None,
        activation: str | None = None,
    ):
        super().__init__()
        if kernel_size < 1 or dilation < 1:
            raise ValueError("kernel_size and dilation must be positive")
        rng = rng or np.random.default_rng(0)
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.taps = [
            Parameter(init.xavier_uniform((in_channels, out_channels), rng))
            for _ in range(kernel_size)
        ]
        self.bias = Parameter(init.zeros((out_channels,)))
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        return ops.temporal_conv(
            x, self.taps, self.bias, self.dilation, self.activation
        )


class GatedTemporalConv(Module):
    """Gated TCN unit: ``tanh(conv(x)) * sigmoid(conv(x))`` (GWN Eq. style)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.filter_conv = TemporalConv(
            in_channels, out_channels, kernel_size, dilation, rng,
            activation="tanh",
        )
        self.gate_conv = TemporalConv(
            in_channels, out_channels, kernel_size, dilation, rng,
            activation="sigmoid",
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.filter_conv(x) * self.gate_conv(x)


class GraphConv(Module):
    """K-hop graph convolution (mix-hop propagation).

    ``out = sum_{k=0..order} (A^k x) @ W_k`` where ``A`` is a (fixed or
    learned) normalized adjacency supplied at call time.  Matches the
    diffusion-convolution shape shared by GWN and MTGNN.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        order: int = 2,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if order < 1:
            raise ValueError("order must be at least 1")
        rng = rng or np.random.default_rng(0)
        self.order = order
        self.hops = [
            Parameter(init.xavier_uniform((in_channels, out_channels), rng))
            for _ in range(order + 1)
        ]
        self.bias = Parameter(init.zeros((out_channels,)))

    def forward(self, x: Tensor, adjacency) -> Tensor:
        """Mix-hop convolution against ``adjacency``.

        ``adjacency`` is a :class:`~repro.nn.graph.GraphSupport` (static
        graph, cached dense/CSR operator — the fast path), or a
        ``Tensor``/array contracted through dense autograd matmuls (the
        path learned adjacencies must take, since gradients flow into
        them).
        """
        x = as_tensor(x)
        if isinstance(adjacency, GraphSupport):
            out = x @ self.hops[0]
            propagated = x
            for k in range(1, self.order + 1):
                propagated = graph_propagate(propagated, adjacency)
                out = out + propagated @ self.hops[k]
            return out + self.bias
        adjacency = as_tensor(adjacency)
        out = x @ self.hops[0]
        propagated = x
        for k in range(1, self.order + 1):
            propagated = adjacency @ propagated
            out = out + propagated @ self.hops[k]
        return out + self.bias


class AdaptiveAdjacency(Module):
    """Self-learned adjacency from node embeddings (GWN / MTGNN).

    ``A = softmax(relu(E1 @ E2^T))`` — asymmetric by design so the learned
    graph can encode directed influence.
    """

    def __init__(
        self,
        num_nodes: int,
        embedding_dim: int = 8,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.source = Parameter(init.normal((num_nodes, embedding_dim), rng, std=0.3))
        self.target = Parameter(init.normal((num_nodes, embedding_dim), rng, std=0.3))
        self._eval_cache: tuple | None = None

    def forward(self) -> Tensor:
        # In eval mode under no_grad the learned graph is a pure function
        # of the (frozen) embeddings, so it is computed once and reused
        # until an optimizer step reassigns a parameter's ``data``.
        cached = self._eval_cache
        if (
            not self.training
            and cached is not None
            and cached[0] is self.source.data
            and cached[1] is self.target.data
        ):
            return cached[2]
        scores = ops.relu(self.source @ self.target.T)
        result = ops.softmax(scores, axis=-1)
        if not self.training and not result.requires_grad:
            self._eval_cache = (self.source.data, self.target.data, result)
        else:
            self._eval_cache = None
        return result


class GRUCell(Module):
    """A GRU cell whose input/state transforms are pluggable modules.

    With plain :class:`Linear` transforms this is a standard GRU; DDGCRN
    plugs :class:`GraphConv`-based transforms in to obtain a graph-conv
    recurrent cell.
    """

    def __init__(self, make_transform) -> None:
        super().__init__()
        self.update_gate = make_transform()
        self.reset_gate = make_transform()
        self.candidate = make_transform()

    def forward(self, x: Tensor, state: Tensor, *extra) -> Tensor:
        xs = ops.concat([as_tensor(x), as_tensor(state)], axis=-1)
        z = ops.sigmoid(self.update_gate(xs, *extra))
        r = ops.sigmoid(self.reset_gate(xs, *extra))
        xr = ops.concat([as_tensor(x), r * state], axis=-1)
        candidate = ops.tanh(self.candidate(xr, *extra))
        return z * state + (1.0 - z) * candidate


class Dropout(Module):
    """Inverted dropout as a module (active only in training mode)."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0 <= p < 1:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Composes modules (and bare callables) front to back."""

    def __init__(self, *stages):
        super().__init__()
        if not stages:
            raise ValueError("Sequential needs at least one stage")
        self.stages = list(stages)

    def forward(self, x):
        for stage in self.stages:
            x = stage(x)
        return x

    def __len__(self) -> int:
        return len(self.stages)

    def __getitem__(self, index: int):
        return self.stages[index]


class Embedding(Module):
    """Index-lookup embedding table with sparse gradient accumulation."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_embeddings < 1 or embedding_dim < 1:
            raise ValueError("embedding table dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.1))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=int)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.weight.shape[0]
        ):
            raise ValueError("embedding index out of range")
        return self.weight[indices]
