"""Module base class: parameter registration and train/eval switching."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters require grad regardless of the no_grad state at
        # construction time.
        self.requires_grad = True


class Module:
    """Base class for neural components.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; :meth:`parameters` walks them recursively.  ``training``
    toggles dropout-style behaviour through :meth:`train` / :meth:`eval`.
    """

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, depth-first, deduplicated."""
        found: list[Parameter] = []
        seen: set[int] = set()
        self._collect(found, seen)
        return found

    def _collect(self, found: list[Parameter], seen: set[int]) -> None:
        for value in self.__dict__.values():
            self._collect_value(value, found, seen)

    def _collect_value(self, value, found: list[Parameter], seen: set[int]) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect_value(item, found, seen)

    def modules(self) -> list["Module"]:
        """This module and all registered submodules."""
        out: list[Module] = [self]
        for value in self.__dict__.values():
            out.extend(self._submodules_of(value))
        return out

    def _submodules_of(self, value) -> list["Module"]:
        if isinstance(value, Module):
            return value.modules()
        if isinstance(value, (list, tuple)):
            out: list[Module] = []
            for item in value:
                out.extend(self._submodules_of(item))
            return out
        return []

    def train(self) -> "Module":
        """Enable training behaviour (dropout active)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Enable inference behaviour (dropout off)."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.data.size for p in self.parameters()))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> array mapping (insertion order of discovery)."""
        return {
            f"param_{index}": parameter.data.copy()
            for index, parameter in enumerate(self.parameters())
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameter values saved by :meth:`state_dict`."""
        parameters = self.parameters()
        if len(state) != len(parameters):
            raise ValueError(
                f"state has {len(state)} entries, model has {len(parameters)}"
            )
        for index, parameter in enumerate(parameters):
            value = np.asarray(state[f"param_{index}"])
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"parameter {index} shape mismatch: "
                    f"{value.shape} vs {parameter.data.shape}"
                )
            parameter.data = value.astype(parameter.data.dtype)

    def astype(self, dtype) -> "Module":
        """Cast every parameter (and module buffers) to ``dtype`` in place.

        The float32 entry point of the fast path: build a model at the
        default dtype, then ``model.astype(np.float32)``.  Submodules
        that hold non-parameter arrays (attention masks, cached
        adjacency supports) override :meth:`_cast_buffers`.
        """
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise TypeError(f"model dtype must be floating, got {dtype}")
        for parameter in self.parameters():
            parameter.data = parameter.data.astype(dtype, copy=False)
            parameter.grad = None
        for module in self.modules():
            module._cast_buffers(dtype)
        return self

    def _cast_buffers(self, dtype: np.dtype) -> None:
        """Hook for casting non-parameter arrays; default: nothing."""

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
