"""CouplingOperator-backed graph propagation for the GNN fast path.

The seed :class:`~repro.nn.layers.GraphConv` re-wrapped its adjacency with
``as_tensor`` on every call and contracted the node axis through dense
``Tensor`` matmuls.  For *static* adjacencies (the fixed normalized graph
of GWN/MTGNN/DDGCRN) both halves are wasted work: the wrap can be built
once, and the propagation can run through
:class:`repro.core.operators.CouplingOperator` — the annealing engine's
dense/CSR auto-backend — which turns an ``(n, n)`` dense GEMM per hop into
an ``nnz``-proportional CSR product on sparse graphs.

Three pieces:

* :class:`GraphSupport` — an adjacency prepared once (backend-selected
  operator at a fixed dtype).
* :func:`graph_propagate` — the autograd node ``y = A x`` over the node
  axis; backward is one :meth:`~repro.core.operators.CouplingOperator.
  propagate` call with ``adjoint=True`` (``A.T g``).
* :class:`AdjacencyCache` — identity-keyed per-model cache of prepared
  tensors/supports.

Static contract: a prepared support snapshots the adjacency values.
Models invalidate by *reassigning* their adjacency attribute (identity
key misses and the support is rebuilt); in-place writes to the original
array are not observed by a cached support.  The zero-copy tensor wrap
(legacy dense path) shares storage and therefore does observe them,
matching seed behaviour exactly.
"""

from __future__ import annotations

import numpy as np

from ..core.operators import CouplingOperator
from .tensor import Tensor, as_tensor

__all__ = ["GraphSupport", "AdjacencyCache", "graph_propagate"]


class GraphSupport:
    """A static adjacency prepared once for repeated node-axis products.

    Args:
        adjacency: ``(n, n)`` dense array (or scipy sparse matrix) —
            asymmetric and diagonal-bearing adjacencies welcome.
        backend: ``"dense"``, ``"sparse"``, or ``"auto"`` (density-based,
            see :func:`repro.core.operators.select_backend`).
        dtype: Storage dtype; ``None`` keeps the adjacency's floating
            dtype (float64 for anything else).
    """

    def __init__(self, adjacency, backend: str = "auto", dtype=None):
        if dtype is None:
            source_dtype = getattr(adjacency, "dtype", None)
            if source_dtype is not None and np.dtype(source_dtype).kind == "f":
                dtype = np.dtype(source_dtype)
            else:
                dtype = np.dtype(np.float64)
        self.operator = CouplingOperator(
            adjacency, backend=backend, symmetric=False, dtype=dtype
        )

    @property
    def backend(self) -> str:
        """``"dense"`` or ``"sparse"`` — the selected storage."""
        return self.operator.backend

    @property
    def dtype(self) -> np.dtype:
        return self.operator.dtype

    @property
    def n(self) -> int:
        return self.operator.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSupport(n={self.n}, backend={self.backend!r}, "
            f"dtype={self.dtype})"
        )


def graph_propagate(x, support: GraphSupport) -> Tensor:
    """``A @ x`` over the node axis of ``(..., n, c)``, one graph node.

    The cached-operator counterpart of ``adjacency @ x`` in
    :class:`~repro.nn.layers.GraphConv`: forward and backward are each a
    single :meth:`CouplingOperator.propagate` call (CSR or broadcast
    GEMM), and the adjacency is a constant — no gradient flows to it.
    """
    x = as_tensor(x)
    out_data = support.operator.propagate(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(support.operator.propagate(grad, adjoint=True))

    return Tensor._make(out_data, (x,), backward)


class AdjacencyCache:
    """Identity-keyed cache of per-model adjacency preparations.

    Keys are ``(kind, id(array), dtype, backend)`` with a reference to
    the array held alongside each entry, so an id can never be recycled
    while its entry lives.  Reassigning the model's adjacency attribute
    therefore misses and rebuilds; see the module docstring for the
    static contract on in-place writes.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple] = {}

    def tensor(self, adjacency, dtype=None) -> Tensor:
        """A constant :class:`Tensor` wrap, zero-copy when dtypes match."""
        dtype = np.dtype(float if dtype is None else dtype)
        key = ("tensor", id(adjacency), dtype)
        entry = self._entries.get(key)
        if entry is None or entry[0] is not adjacency:
            wrapped = as_tensor(np.asarray(adjacency, dtype=dtype))
            entry = (adjacency, wrapped)
            self._entries[key] = entry
        return entry[1]

    def support(self, adjacency, backend: str = "auto", dtype=None) -> GraphSupport:
        """A prepared :class:`GraphSupport` for a static adjacency."""
        key = ("support", id(adjacency), backend, None if dtype is None else np.dtype(dtype))
        entry = self._entries.get(key)
        if entry is None or entry[0] is not adjacency:
            entry = (adjacency, GraphSupport(adjacency, backend=backend, dtype=dtype))
            self._entries[key] = entry
        return entry[1]

    def clear(self) -> None:
        self._entries.clear()
