"""CouplingOperator-backed graph propagation for the GNN fast path.

The seed :class:`~repro.nn.layers.GraphConv` re-wrapped its adjacency with
``as_tensor`` on every call and contracted the node axis through dense
``Tensor`` matmuls.  For *static* adjacencies (the fixed normalized graph
of GWN/MTGNN/DDGCRN) both halves are wasted work: the wrap can be built
once, and the propagation can run through
:class:`repro.core.operators.CouplingOperator` — the annealing engine's
dense/CSR auto-backend — which turns an ``(n, n)`` dense GEMM per hop into
an ``nnz``-proportional CSR product on sparse graphs.

Three pieces:

* :class:`GraphSupport` — an adjacency prepared once (backend-selected
  operator at a fixed dtype).
* :func:`graph_propagate` — the autograd node ``y = A x`` over the node
  axis; backward is one :meth:`~repro.core.operators.CouplingOperator.
  propagate` call with ``adjoint=True`` (``A.T g``).
* :class:`AdjacencyCache` — content-fingerprinted per-model cache of
  prepared tensors/supports.

Invalidation contract: supports are keyed by a *content* fingerprint of
the adjacency (:func:`repro.core.fingerprint.array_fingerprint` with the
O(n) checksum enabled, so any value change is observed) — mutating the
adjacency in place, reassigning it, or streaming a
:class:`~repro.stream.deltas.GraphDelta` through
:meth:`AdjacencyCache.apply_delta` all resolve to the correct prepared
support; stale entries for the old content are evicted (counted in
``nn.adjacency_stale``).  The delta path is the fast one: instead of
re-running backend selection and CSR construction it updates the cached
operator structurally via
:meth:`~repro.core.operators.CouplingOperator.apply_delta`.  The
zero-copy tensor wrap (legacy dense path) shares storage with the
adjacency and therefore observes in-place writes directly, matching seed
behaviour exactly.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..core.fingerprint import array_fingerprint
from ..core.operators import CouplingOperator
from .tensor import Tensor, as_tensor

__all__ = ["GraphSupport", "AdjacencyCache", "graph_propagate"]


class GraphSupport:
    """A static adjacency prepared once for repeated node-axis products.

    Args:
        adjacency: ``(n, n)`` dense array (or scipy sparse matrix) —
            asymmetric and diagonal-bearing adjacencies welcome.
        backend: ``"dense"``, ``"sparse"``, or ``"auto"`` (density-based,
            see :func:`repro.core.operators.select_backend`).
        dtype: Storage dtype; ``None`` keeps the adjacency's floating
            dtype (float64 for anything else).
    """

    def __init__(self, adjacency, backend: str = "auto", dtype=None):
        if dtype is None:
            source_dtype = getattr(adjacency, "dtype", None)
            if source_dtype is not None and np.dtype(source_dtype).kind == "f":
                dtype = np.dtype(source_dtype)
            else:
                dtype = np.dtype(np.float64)
        self.operator = CouplingOperator(
            adjacency, backend=backend, symmetric=False, dtype=dtype
        )

    @classmethod
    def _from_operator(cls, operator: CouplingOperator) -> "GraphSupport":
        support = object.__new__(cls)
        support.operator = operator
        return support

    def apply_delta(self, delta) -> "GraphSupport":
        """A new support with a directed-edge delta applied.

        Adjacencies are asymmetric with a meaningful diagonal, so edits
        are taken as-is (no symmetric expansion); structure is reused per
        :meth:`CouplingOperator.apply_delta`.  Returns ``self`` when the
        delta is a no-op against the current values.
        """
        updated = self.operator.apply_delta(delta)
        if updated is self.operator:
            return self
        return GraphSupport._from_operator(updated)

    def fingerprint(self, checksum: bool = True) -> str:
        """Content fingerprint of the prepared adjacency."""
        return self.operator.fingerprint(checksum=checksum)

    @property
    def backend(self) -> str:
        """``"dense"`` or ``"sparse"`` — the selected storage."""
        return self.operator.backend

    @property
    def dtype(self) -> np.dtype:
        return self.operator.dtype

    @property
    def n(self) -> int:
        return self.operator.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSupport(n={self.n}, backend={self.backend!r}, "
            f"dtype={self.dtype})"
        )


def graph_propagate(x, support: GraphSupport) -> Tensor:
    """``A @ x`` over the node axis of ``(..., n, c)``, one graph node.

    The cached-operator counterpart of ``adjacency @ x`` in
    :class:`~repro.nn.layers.GraphConv`: forward and backward are each a
    single :meth:`CouplingOperator.propagate` call (CSR or broadcast
    GEMM), and the adjacency is a constant — no gradient flows to it.
    """
    x = as_tensor(x)
    out_data = support.operator.propagate(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(support.operator.propagate(grad, adjoint=True))

    return Tensor._make(out_data, (x,), backward)


class AdjacencyCache:
    """Content-fingerprinted cache of per-model adjacency preparations.

    Supports are keyed by ``(kind, backend, dtype, fingerprint)`` where
    the fingerprint is :func:`~repro.core.fingerprint.array_fingerprint`
    with ``checksum=True`` — one O(n) pass over the adjacency per
    lookup, which any value change (in-place writes included) is
    guaranteed to move.  A per-identity index maps each source array to
    its current content entry, so a mutation evicts the stale
    preparation instead of leaking it (evictions are counted in
    :attr:`stale_invalidations` and the ``nn.adjacency_stale`` counter).
    A reference to the source array is held alongside each entry, so an
    ``id`` can never be recycled while its entry lives.

    :meth:`apply_delta` is the incremental fast path: it edits the
    adjacency *and* the cached operator structurally in one step,
    skipping the rebuild a fingerprint miss would otherwise pay.

    The legacy :meth:`tensor` wrap stays identity-keyed on purpose: it
    shares storage with the adjacency, so in-place writes are observed
    through the shared buffer and the entry can never go stale.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple] = {}
        self._id_index: dict[tuple, tuple] = {}
        self.stale_invalidations = 0

    def tensor(self, adjacency, dtype=None) -> Tensor:
        """A constant :class:`Tensor` wrap, zero-copy when dtypes match."""
        dtype = np.dtype(float if dtype is None else dtype)
        key = ("tensor", id(adjacency), dtype)
        entry = self._entries.get(key)
        if entry is None or entry[0] is not adjacency:
            wrapped = as_tensor(np.asarray(adjacency, dtype=dtype))
            entry = (adjacency, wrapped)
            self._entries[key] = entry
        return entry[1]

    @staticmethod
    def _support_params(backend, dtype) -> tuple:
        return (backend, None if dtype is None else np.dtype(dtype))

    def _evict_stale(self, id_key: tuple, current_key: tuple) -> None:
        previous = self._id_index.get(id_key)
        if previous is not None and previous != current_key:
            if self._entries.pop(previous, None) is not None:
                self.stale_invalidations += 1
                obs.metrics().counter("nn.adjacency_stale").inc()
        self._id_index[id_key] = current_key

    def support(self, adjacency, backend: str = "auto", dtype=None) -> GraphSupport:
        """A prepared :class:`GraphSupport` for the adjacency's *content*.

        In-place mutation changes the fingerprint, so the next lookup
        rebuilds against the live values and drops the stale entry —
        the footgun the identity-keyed cache used to document away.
        """
        params = self._support_params(backend, dtype)
        key = ("support", *params, array_fingerprint(adjacency, checksum=True))
        id_key = ("support", id(adjacency), *params)
        entry = self._entries.get(key)
        if entry is None:
            entry = (
                adjacency,
                GraphSupport(adjacency, backend=backend, dtype=dtype),
            )
            self._entries[key] = entry
        self._evict_stale(id_key, key)
        return entry[1]

    def apply_delta(
        self, adjacency, delta, backend: str = "auto", dtype=None
    ) -> GraphSupport:
        """Edit the adjacency and its cached support in one step.

        Applies the (directed) delta to ``adjacency`` in place and to the
        cached :class:`GraphSupport` structurally via
        :meth:`GraphSupport.apply_delta` — skipping the full
        backend-selection/CSR rebuild a cold :meth:`support` lookup pays.
        With no warm entry it falls back to edit-then-build.

        Returns:
            The support for the edited adjacency (also cached under its
            new fingerprint).
        """
        params = self._support_params(backend, dtype)
        old_key = (
            "support",
            *params,
            array_fingerprint(adjacency, checksum=True),
        )
        id_key = ("support", id(adjacency), *params)
        entry = self._entries.get(old_key)
        delta.apply_to_dense(np.asarray(adjacency), symmetric=False)
        if entry is not None and entry[0] is adjacency:
            support = entry[1].apply_delta(delta)
        else:
            support = GraphSupport(adjacency, backend=backend, dtype=dtype)
        new_key = (
            "support",
            *params,
            array_fingerprint(adjacency, checksum=True),
        )
        self._entries[new_key] = (adjacency, support)
        self._evict_stale(id_key, new_key)
        return support

    def clear(self) -> None:
        self._entries.clear()
        self._id_index.clear()
