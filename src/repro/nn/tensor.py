"""A reverse-mode automatic-differentiation tensor on numpy.

The paper's GNN baselines (GWN, MTGNN, DDGCRN) were trained with PyTorch on
A100s; this environment has neither, so :mod:`repro.nn` provides the
substrate from scratch: a :class:`Tensor` recording a dynamic computation
graph, gradient propagation via topological sort, and the operator set the
spatio-temporal GNN architectures need (broadcast arithmetic, matmul,
reductions, activations, indexing, concatenation).

Design notes
------------
Gradients accumulate into ``.grad`` (numpy arrays); ``backward()`` may only
be called on scalar tensors, like typical loss values.  Broadcasting is
fully supported: backward passes un-broadcast by summing over expanded
axes.  The graph is retained only through Python references, so dropping
the loss tensor frees it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Whether new operations record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus the autograd machinery.

    Attributes:
        data: The underlying ``numpy.ndarray`` (float64).
        requires_grad: Whether gradients flow into this tensor.
        grad: Accumulated gradient, same shape as ``data``.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=float)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph helpers
    # ------------------------------------------------------------------
    @classmethod
    def _make(cls, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=float).reshape(self.data.shape)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The raw array (a view; do not mutate mid-graph)."""
        return self.data

    def item(self) -> float:
        """Scalar value of a single-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    @staticmethod
    def _raise_item() -> float:
        raise ValueError("item() requires a single-element tensor")

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    # y[..., n] = sum_k a[..., n, k] b[k]
                    ga = np.multiply.outer(grad, b) if a.ndim > 1 else grad * b
                elif a.ndim == 1:
                    # y[..., m] = sum_k a[k] b[..., k, m];
                    # full-shape grad, reduced to (k,) by _unbroadcast.
                    ga = (b @ grad[..., :, None])[..., 0]
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(np.asarray(ga), a.shape))
            if other.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    gb = a * grad
                elif a.ndim == 1:
                    # y[..., m] = sum_k a[k] b[..., k, m]
                    gb = np.multiply.outer(a, grad) if b.ndim == 2 else (
                        a[:, None] * grad[..., None, :]
                    )
                elif b.ndim == 1:
                    # y[..., n] = sum_k a[..., n, k] b[k];
                    # full-shape grad, reduced to (k,) by _unbroadcast.
                    gb = grad[..., None] * a
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(_unbroadcast(np.asarray(gb), b.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = np.transpose(self.data, axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % len(shape) for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / count

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        mask_ref = self.data == self.data.max(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            counts = mask_ref.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            self._accumulate(np.where(mask_ref, g / counts, 0.0))

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce scalars/arrays to a constant :class:`Tensor`."""
    return value if isinstance(value, Tensor) else Tensor(value)
