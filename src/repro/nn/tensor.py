"""A reverse-mode automatic-differentiation tensor on numpy.

The paper's GNN baselines (GWN, MTGNN, DDGCRN) were trained with PyTorch on
A100s; this environment has neither, so :mod:`repro.nn` provides the
substrate from scratch: a :class:`Tensor` recording a dynamic computation
graph, gradient propagation via topological sort, and the operator set the
spatio-temporal GNN architectures need (broadcast arithmetic, matmul,
reductions, activations, indexing, concatenation).

Design notes
------------
Gradients accumulate into ``.grad`` (numpy arrays); ``backward()`` may only
be called on scalar tensors, like typical loss values.  Broadcasting is
fully supported: backward passes un-broadcast by summing over expanded
axes.  The graph is retained only through Python references, so dropping
the loss tensor frees it.

Dtype support
-------------
Tensors carry the dtype of their storage.  Floating inputs keep their
dtype; integer/bool/list inputs are cast to the process default
(:func:`set_default_dtype`, ``float64`` unless changed).  Operations
preserve their operands' dtype end to end — constants and python scalars
appearing in arithmetic follow the tensor operand instead of silently
up-casting to float64, which is what lets the GNN baseline stack train in
float32 at half the memory bandwidth.

Allocation discipline
---------------------
The first gradient contribution reaching a tensor is *assigned* (a copy at
worst, ownership of a freshly computed temporary at best — see
:meth:`Tensor._accumulate_owned`) instead of the classic ``zeros_like``
followed by ``+=``, halving the number of passes over gradient memory on
single-consumer nodes, which dominate real models.  The module counts
gradient writes and the subset that had to copy so the benchmark harness
can report backward allocation behaviour (:func:`grad_write_stats`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "grad_write_stats",
    "reset_grad_write_stats",
]

_GRAD_ENABLED = True
_DEFAULT_DTYPE = np.dtype(np.float64)

#: Backward-pass instrumentation: total first-write gradient assignments
#: and how many of those had to allocate a defensive copy (the remainder
#: took ownership of a freshly computed temporary at zero cost).
_GRAD_WRITES = 0
_GRAD_COPIES = 0


def set_default_dtype(dtype) -> None:
    """Set the dtype non-floating tensor inputs are cast to.

    Floating inputs always keep their own dtype (python floats and float
    lists resolve to float64 through numpy); this default governs only
    integer/bool inputs.  Must be a floating dtype.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if not np.issubdtype(resolved, np.floating):
        raise ValueError(f"default dtype must be floating, got {resolved}")
    _DEFAULT_DTYPE = resolved


def get_default_dtype() -> np.dtype:
    """The dtype used for non-floating tensor inputs."""
    return _DEFAULT_DTYPE


def grad_write_stats() -> tuple[int, int]:
    """``(writes, copies)`` counted since the last reset.

    ``writes`` is the number of first gradient assignments performed in
    backward passes; ``copies`` the subset that allocated (the rest took
    ownership of temporaries).  ``+=`` accumulations into an existing
    gradient are in-place and never counted.
    """
    return _GRAD_WRITES, _GRAD_COPIES


def reset_grad_write_stats() -> None:
    """Zero the backward allocation counters."""
    global _GRAD_WRITES, _GRAD_COPIES
    _GRAD_WRITES = 0
    _GRAD_COPIES = 0


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Whether new operations record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus the autograd machinery.

    Attributes:
        data: The underlying ``numpy.ndarray`` (any floating dtype).
        requires_grad: Whether gradients flow into this tensor.
        grad: Accumulated gradient, same shape/dtype as ``data``.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if dtype is not None:
            array = np.asarray(data, dtype=dtype)
        else:
            array = np.asarray(data)
            if not np.issubdtype(array.dtype, np.floating):
                array = array.astype(_DEFAULT_DTYPE)
        self.data = array
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph helpers
    # ------------------------------------------------------------------
    @classmethod
    def _make(cls, data, parents: tuple["Tensor", ...], backward) -> "Tensor":
        # Fast construction for op outputs: no dtype coercion (ops already
        # produce correctly typed arrays) and no __init__ dispatch — this
        # runs once per graph node, so it is itself a hot path.
        out = cls.__new__(cls)
        out.data = data if type(data) is np.ndarray else np.asarray(data)
        out.grad = None
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        else:
            out.requires_grad = False
            out._parents = ()
            out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add a gradient contribution that may alias another tensor's grad.

        The first write copies defensively (one pass over the memory — the
        seed's ``zeros_like`` + ``+=`` needed two); later writes add in
        place.
        """
        if self.grad is None:
            global _GRAD_WRITES, _GRAD_COPIES
            _GRAD_WRITES += 1
            _GRAD_COPIES += 1
            self.grad = np.array(grad, copy=True)
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Add a gradient contribution from a freshly allocated temporary.

        The caller guarantees ``grad`` is not aliased by any other tensor's
        gradient, so the first write takes ownership without copying.
        """
        if self.grad is None:
            global _GRAD_WRITES
            _GRAD_WRITES += 1
            self.grad = grad
        else:
            self.grad += grad

    def _accumulate_maybe_aliased(self, grad: np.ndarray, source: np.ndarray) -> None:
        """Accumulate ``grad``, copying only if it still aliases ``source``.

        The common pattern ``_unbroadcast(g, shape)`` returns either ``g``
        itself (shapes matched — aliased, must copy on first write) or a
        freshly summed array (safe to own).
        """
        if grad is source:
            self._accumulate(grad)
        else:
            self._accumulate_owned(grad)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype).reshape(self.data.shape)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The raw array (a view; do not mutate mid-graph)."""
        return self.data

    def item(self) -> float:
        """Scalar value of a single-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    @staticmethod
    def _raise_item() -> float:
        raise ValueError("item() requires a single-element tensor")

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{flag})"

    # ------------------------------------------------------------------
    # Dtype
    # ------------------------------------------------------------------
    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast; gradient is cast back on the way up."""
        dtype = np.dtype(dtype)
        original = self.data.dtype
        if dtype == original:
            # Still a distinct graph node is unnecessary: share storage.
            return self if not self.requires_grad else Tensor._make(
                self.data, (self,), lambda grad: self._accumulate(grad)
            )
        out_data = self.data.astype(dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad.astype(original))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_maybe_aliased(
                    _unbroadcast(grad, self.data.shape), grad
                )
            if other.requires_grad:
                other._accumulate_maybe_aliased(
                    _unbroadcast(grad, other.data.shape), grad
                )

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other, dtype=self.data.dtype))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(
                    _unbroadcast(grad * other.data, self.data.shape)
                )
            if other.requires_grad:
                other._accumulate_owned(
                    _unbroadcast(grad * self.data, other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(
                    _unbroadcast(grad / other.data, self.data.shape)
                )
            if other.requires_grad:
                other._accumulate_owned(
                    _unbroadcast(-grad * self.data / other.data**2, other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    # y[..., n] = sum_k a[..., n, k] b[k]
                    ga = np.multiply.outer(grad, b) if a.ndim > 1 else grad * b
                elif a.ndim == 1:
                    # y[..., m] = sum_k a[k] b[..., k, m];
                    # full-shape grad, reduced to (k,) by _unbroadcast.
                    ga = (b @ grad[..., :, None])[..., 0]
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                self._accumulate_owned(_unbroadcast(np.asarray(ga), a.shape))
            if other.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    gb = a * grad
                elif a.ndim == 1:
                    # y[..., m] = sum_k a[k] b[..., k, m]
                    gb = np.multiply.outer(a, grad) if b.ndim == 2 else (
                        a[:, None] * grad[..., None, :]
                    )
                elif b.ndim == 1:
                    # y[..., n] = sum_k a[..., n, k] b[k];
                    # full-shape grad, reduced to (k,) by _unbroadcast.
                    gb = grad[..., None] * a
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                other._accumulate_owned(_unbroadcast(np.asarray(gb), b.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                # reshape may return a view of the child's grad: aliased.
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = np.transpose(self.data, axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                # transpose returns a view of the child's grad: aliased.
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate_owned(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % len(shape) for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate_owned(np.broadcast_to(g, shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / count

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        mask_ref = self.data == self.data.max(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if np.isscalar(axis) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            counts = mask_ref.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            # Integer tie-counts would promote float32 grads to float64.
            routed = np.where(mask_ref, g / counts, 0.0)
            self._accumulate_owned(routed.astype(self.data.dtype, copy=False))

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value, dtype=None) -> Tensor:
    """Coerce scalars/arrays to a constant :class:`Tensor`.

    Existing tensors pass through untouched (``dtype`` is ignored for
    them — mixed tensor/tensor arithmetic follows numpy promotion); raw
    values are wrapped at ``dtype`` so python scalars and constant arrays
    follow the tensor operand they combine with instead of promoting
    everything to float64.
    """
    return value if isinstance(value, Tensor) else Tensor(value, dtype=dtype)
