"""From-scratch numpy autograd substrate for the GNN baselines."""

from . import init, ops
from .layers import (
    AdaptiveAdjacency,
    Dropout,
    Embedding,
    GatedTemporalConv,
    GraphConv,
    GRUCell,
    LayerNorm,
    Linear,
    Sequential,
    TemporalConv,
)
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "AdaptiveAdjacency",
    "Dropout",
    "Embedding",
    "GRUCell",
    "GatedTemporalConv",
    "GraphConv",
    "LayerNorm",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "Sequential",
    "TemporalConv",
    "Tensor",
    "as_tensor",
    "clip_grad_norm",
    "init",
    "is_grad_enabled",
    "no_grad",
    "ops",
]
