"""From-scratch numpy autograd substrate for the GNN baselines."""

from . import init, ops
from .graph import AdjacencyCache, GraphSupport, graph_propagate
from .layers import (
    AdaptiveAdjacency,
    Dropout,
    Embedding,
    GatedTemporalConv,
    GraphConv,
    GRUCell,
    LayerNorm,
    Linear,
    Sequential,
    TemporalConv,
)
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .tensor import (
    Tensor,
    as_tensor,
    get_default_dtype,
    grad_write_stats,
    is_grad_enabled,
    no_grad,
    reset_grad_write_stats,
    set_default_dtype,
)

__all__ = [
    "Adam",
    "AdaptiveAdjacency",
    "AdjacencyCache",
    "Dropout",
    "Embedding",
    "GRUCell",
    "GatedTemporalConv",
    "GraphConv",
    "GraphSupport",
    "LayerNorm",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "Sequential",
    "TemporalConv",
    "Tensor",
    "as_tensor",
    "clip_grad_norm",
    "get_default_dtype",
    "grad_write_stats",
    "graph_propagate",
    "init",
    "is_grad_enabled",
    "no_grad",
    "reset_grad_write_stats",
    "set_default_dtype",
]
