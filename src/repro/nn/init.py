"""Weight initializers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "zeros", "normal"]


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform: variance balanced across fan-in/fan-out."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform for ReLU fan-in."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape)


def normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01
) -> np.ndarray:
    """Small Gaussian initialization (embeddings / adaptive adjacency)."""
    return rng.normal(0.0, std, size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
