"""Elementwise and structural operations on autograd tensors.

Free functions complementing the :class:`~repro.nn.tensor.Tensor` methods:
activations, softmax, concatenation/stacking, padding, and the MSE/MAE loss
functions used to train the GNN baselines.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "softmax",
    "concat",
    "stack",
    "pad_time",
    "dropout",
    "mse_loss",
    "mae_loss",
]


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data)

    return Tensor._make(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    x = as_tensor(x)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad / x.data)

    return Tensor._make(np.log(x.data), (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid (numerically stable)."""
    x = as_tensor(x)
    out_data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, -500, None))),
        np.exp(np.clip(x.data, None, 500))
        / (1.0 + np.exp(np.clip(x.data, None, 500))),
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Elementwise rectifier."""
    x = as_tensor(x)
    mask = x.data > 0

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, slope: float = 0.01) -> Tensor:
    """Leaky rectifier with configurable negative slope."""
    x = as_tensor(x)
    factor = np.where(x.data > 0, 1.0, slope)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * factor)

    return Tensor._make(x.data * factor, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (numerically stabilized)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = np.sum(grad * out_data, axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward)


def pad_time(x: Tensor, left: int, axis: int = 1) -> Tensor:
    """Zero-pad ``left`` steps at the start of the time axis.

    Causal padding for the dilated temporal convolutions of GWN/MTGNN.
    """
    if left < 0:
        raise ValueError("pad length must be non-negative")
    if left == 0:
        return as_tensor(x)
    x = as_tensor(x)
    width = [(0, 0)] * x.ndim
    width[axis] = (left, 0)
    out_data = np.pad(x.data, width)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            index = [slice(None)] * grad.ndim
            index[axis] = slice(left, None)
            x._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity in eval mode."""
    if not 0 <= p < 1:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0:
        return as_tensor(x)
    x = as_tensor(x)
    mask = (rng.random(x.data.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error (smooth-free; subgradient at zero is 0)."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    sign = np.sign(diff.data)

    def backward(grad: np.ndarray) -> None:
        if diff.requires_grad:
            diff._accumulate(grad * sign)

    absolute = Tensor._make(np.abs(diff.data), (diff,), backward)
    return absolute.mean()
