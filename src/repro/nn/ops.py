"""Elementwise and structural operations on autograd tensors.

Free functions complementing the :class:`~repro.nn.tensor.Tensor` methods:
activations, softmax, concatenation/stacking, padding, the MSE/MAE loss
functions used to train the GNN baselines, and the *fused* operators of
the baseline fast path.

Fused operators
---------------
:func:`linear_act` (affine map + activation), :func:`temporal_conv` (all
taps of a dilated causal convolution + bias + activation), and the fused
:func:`mse_loss` each record a single graph node where the composed
primitives recorded four to nine.  Their forward/backward expressions are
evaluated in exactly the order the primitive composition produced, so the
float64 training numerics are bit-for-bit unchanged (held by the trainer
golden-file test) — the win is graph-node count, Python dispatch, and
gradient-buffer allocations, not a different algorithm.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _unbroadcast, as_tensor

__all__ = [
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "softmax",
    "concat",
    "stack",
    "pad_time",
    "dropout",
    "linear_act",
    "temporal_conv",
    "mse_loss",
    "mae_loss",
]


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad * out_data)

    return Tensor._make(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    x = as_tensor(x)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad / x.data)

    return Tensor._make(np.log(x.data), (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward)


def _sigmoid_data(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid on a raw array."""
    return np.where(
        z >= 0,
        1.0 / (1.0 + np.exp(-np.clip(z, -500, None))),
        np.exp(np.clip(z, None, 500)) / (1.0 + np.exp(np.clip(z, None, 500))),
    )


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid (numerically stable)."""
    x = as_tensor(x)
    out_data = _sigmoid_data(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Elementwise rectifier."""
    x = as_tensor(x)
    mask = x.data > 0

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, slope: float = 0.01) -> Tensor:
    """Leaky rectifier with configurable negative slope."""
    x = as_tensor(x)
    factor = np.where(x.data > 0, 1.0, slope).astype(x.data.dtype, copy=False)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad * factor)

    return Tensor._make(x.data * factor, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (numerically stabilized)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = np.sum(grad * out_data, axis=axis, keepdims=True)
            x._accumulate_owned(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                # The slice is a view of the child's gradient: aliased.
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(piece.reshape(t.data.shape))

    return Tensor._make(out_data, tuple(tensors), backward)


def pad_time(x: Tensor, left: int, axis: int = 1) -> Tensor:
    """Zero-pad ``left`` steps at the start of the time axis.

    Causal padding for the dilated temporal convolutions of GWN/MTGNN.
    """
    if left < 0:
        raise ValueError("pad length must be non-negative")
    if left == 0:
        return as_tensor(x)
    x = as_tensor(x)
    width = [(0, 0)] * x.ndim
    width[axis] = (left, 0)
    out_data = np.pad(x.data, width)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            index = [slice(None)] * grad.ndim
            index[axis] = slice(left, None)
            x._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity in eval mode."""
    if not 0 <= p < 1:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0:
        return as_tensor(x)
    x = as_tensor(x)
    mask = ((rng.random(x.data.shape) >= p) / (1.0 - p)).astype(
        x.data.dtype, copy=False
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


# ----------------------------------------------------------------------
# Fused operators (baseline fast path)
# ----------------------------------------------------------------------

_ACTIVATIONS = (None, "relu", "tanh", "sigmoid")


def _apply_activation(z: np.ndarray, activation: str | None):
    """``(out, state)`` of an activation on raw data.

    ``state`` is whatever the matching backward needs (the relu mask, or
    the output itself for tanh/sigmoid).
    """
    if activation is None:
        return z, None
    if activation == "relu":
        mask = z > 0
        return z * mask, mask
    if activation == "tanh":
        out = np.tanh(z)
        return out, out
    if activation == "sigmoid":
        out = _sigmoid_data(z)
        return out, out
    raise ValueError(f"unknown activation {activation!r}; pick from {_ACTIVATIONS}")


def _activation_grad(grad: np.ndarray, state, activation: str | None) -> np.ndarray:
    """Gradient through an activation; aliases ``grad`` when identity."""
    if activation is None:
        return grad
    if activation == "relu":
        return grad * state
    if activation == "tanh":
        return grad * (1.0 - state**2)
    # sigmoid
    return grad * state * (1.0 - state)


def linear_act(
    x,
    weight: Tensor,
    bias: Tensor | None = None,
    activation: str | None = None,
) -> Tensor:
    """Fused ``activation(x @ weight + bias)`` as one graph node.

    ``weight`` must be 2-D ``(in, out)`` and ``bias`` 1-D — the
    :class:`~repro.nn.layers.Linear` contract.  Replaces a matmul node, an
    add node, and an activation node (and their per-node gradient
    buffers) with a single backward closure.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    if weight.data.ndim != 2:
        raise ValueError(f"weight must be 2-D, got shape {weight.data.shape}")
    z = x.data @ weight.data
    if bias is not None:
        bias = as_tensor(bias)
        z += bias.data
    out_data, state = _apply_activation(z, activation)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        gz = _activation_grad(grad, state, activation)
        owned = gz is not grad
        if x.requires_grad:
            if x.data.ndim == 1:
                gx = weight.data @ gz
            else:
                gx = gz @ weight.data.T
            x._accumulate_owned(gx)
        if weight.requires_grad:
            if x.data.ndim == 1:
                gw = np.multiply.outer(x.data, gz)
            else:
                gw = _unbroadcast(
                    np.swapaxes(x.data, -1, -2) @ gz, weight.data.shape
                )
            weight._accumulate_owned(np.asarray(gw))
        if bias is not None and bias.requires_grad:
            gb = _unbroadcast(gz, bias.data.shape)
            if gb is gz and not owned:
                bias._accumulate(gb)
            else:
                bias._accumulate_owned(gb)

    return Tensor._make(out_data, parents, backward)


def temporal_conv(
    x,
    taps: list[Tensor],
    bias: Tensor | None = None,
    dilation: int = 1,
    activation: str | None = None,
) -> Tensor:
    """Fused dilated causal convolution along axis 1, one graph node.

    Computes ``act(sum_k x[:, t - k*dilation] @ taps[k] + bias)`` with
    zero left-padding — the :class:`~repro.nn.layers.TemporalConv`
    contract — without materializing per-tap slice nodes.  The backward
    pass scatter-adds every tap's input gradient into a *single* padded
    buffer instead of one ``zeros_like`` per tap.
    """
    if dilation < 1 or not taps:
        raise ValueError("temporal_conv needs >= 1 tap and dilation >= 1")
    x = as_tensor(x)
    taps = [as_tensor(t) for t in taps]
    if x.data.ndim < 2:
        raise ValueError("temporal_conv input must have a time axis 1")
    pad = (len(taps) - 1) * dilation
    if pad:
        width = [(0, 0)] * x.data.ndim
        width[1] = (pad, 0)
        padded = np.pad(x.data, width)
    else:
        padded = x.data
    T = x.data.shape[1]
    z = padded[:, pad : pad + T] @ taps[0].data
    for k in range(1, len(taps)):
        offset = pad - k * dilation
        z += padded[:, offset : offset + T] @ taps[k].data
    if bias is not None:
        bias = as_tensor(bias)
        z += bias.data
    out_data, state = _apply_activation(z, activation)

    parents = tuple(taps) + ((x,) if bias is None else (x, bias))

    def backward(grad: np.ndarray) -> None:
        gz = _activation_grad(grad, state, activation)
        owned = gz is not grad
        if x.requires_grad:
            gpad = np.zeros_like(padded)
            for k, tap in enumerate(taps):
                offset = pad - k * dilation
                gpad[:, offset : offset + T] += gz @ tap.data.T
            x._accumulate_owned(gpad[:, pad:] if pad else gpad)
        for k, tap in enumerate(taps):
            if tap.requires_grad:
                offset = pad - k * dilation
                piece = padded[:, offset : offset + T]
                gw = _unbroadcast(
                    np.swapaxes(piece, -1, -2) @ gz, tap.data.shape
                )
                tap._accumulate_owned(np.asarray(gw))
        if bias is not None and bias.requires_grad:
            gb = _unbroadcast(gz, bias.data.shape)
            if gb is gz and not owned:
                bias._accumulate(gb)
            else:
                bias._accumulate_owned(gb)

    return Tensor._make(out_data, parents, backward)


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error, fused into a single graph node.

    Bit-for-bit equal to the primitive composition
    ``((prediction - target) ** 2).mean()`` in forward value and in the
    gradient reaching ``prediction``, with one node instead of four.
    """
    prediction = as_tensor(prediction)
    target = as_tensor(target, dtype=prediction.data.dtype)
    diff = prediction.data - target.data
    count = diff.size
    out_data = np.asarray((diff * diff).sum() / count)

    def backward(grad: np.ndarray) -> None:
        # (grad / n) * diff, doubled exactly — matches the unfused
        # product-rule accumulation ((g/n)*d + (g/n)*d) bit for bit.
        gd = (grad / count) * diff
        gd *= 2.0
        if prediction.requires_grad:
            prediction._accumulate_owned(
                _unbroadcast(gd, prediction.data.shape)
            )
        if target.requires_grad:
            target._accumulate_owned(-_unbroadcast(gd, target.data.shape))

    return Tensor._make(out_data, (prediction, target), backward)


def mae_loss(prediction: Tensor, target) -> Tensor:
    """Mean absolute error (smooth-free; subgradient at zero is 0)."""
    prediction = as_tensor(prediction)
    target = as_tensor(target, dtype=prediction.data.dtype)
    diff = prediction - target
    sign = np.sign(diff.data)

    def backward(grad: np.ndarray) -> None:
        if diff.requires_grad:
            diff._accumulate_owned(grad * sign)

    absolute = Tensor._make(np.abs(diff.data), (diff,), backward)
    return absolute.mean()
