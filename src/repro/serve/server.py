"""Dynamic-batching asyncio inference server over the annealing engine.

The DS-GL pitch is throughput — the DSPU answers queries as fast as the
physics settles — so the natural deployment shape is a service: many
independent single-sample requests arriving concurrently, coalesced into
the batched engine paths (:meth:`NaturalAnnealingEngine.infer_batch` /
:meth:`~NaturalAnnealingEngine.infer_equilibrium_batch`) where every
integration step or LU back-substitution is shared across the batch.

:class:`InferenceServer` is that service in stdlib ``asyncio``:

* **Dynamic batching** — the first queued request opens a *batch window*
  (:attr:`ServeConfig.batch_window_ms`); requests arriving inside the
  window coalesce into one batch, capped at
  :attr:`ServeConfig.max_batch_size`.  A window of ``0`` degenerates to
  take-what-is-queued, and ``max_batch_size=1`` degenerates to serial
  serving — the baseline the SLO benchmark compares against.
* **Fingerprint grouping** — a batch must share one reduced linear
  system, so requests coalesce only when they agree on the *problem
  key*: the engine's :meth:`~NaturalAnnealingEngine.problem_key`
  (model-version counter + content hash) plus the observed-index set.
  Mixed clamp sets interleave as separate batches; the engine's
  LRU-bounded factorization cache keeps each group's LU warm across
  batches.  A streaming delta applied mid-traffic
  (:meth:`InferenceServer.apply_delta`) bumps the model version, so
  requests admitted before and after the delta land in distinct groups
  and never mix stale and fresh factorizations.
* **Admission control + backpressure** — the queue is bounded at
  :attr:`ServeConfig.max_queue`; requests beyond it are *shed*
  immediately with the distinct :data:`STATUS_SHED` status instead of
  growing an unbounded backlog (counted in ``serve.shed``).
* **Graceful shutdown** — :meth:`InferenceServer.shutdown` drains (or,
  with ``drain=False``, cancels) queued work; every request that will
  never execute resolves with :data:`STATUS_SHUTDOWN` rather than a
  hang, and a ``KeyboardInterrupt``/``SystemExit`` that lands mid-batch
  fails the in-flight and queued requests the same way.  Pool-backed
  execution (circuit mode with ``workers``) rides the PR-6 shared-memory
  transport, whose arenas unlink on success *and* error, so shutdown
  leaves no ``/dev/shm`` residue (pinned by ``tests/serve``).

Execution runs inline in the batcher task rather than on a thread pool:
the obs :class:`~repro.obs.trace.Tracer` keeps one span stack, and the
engine's caches are not thread-safe.  Single-sample latency is dominated
by batched solve time anyway, and the open-loop traffic generator
measures latency from *scheduled* arrival times, so a blocked event loop
shows up as queueing delay instead of being silently absorbed
(coordinated-omission-safe; see :mod:`repro.serve.traffic`).

Observability: ``serve.requests`` / ``serve.samples`` / ``serve.shed`` /
``serve.batches`` / ``serve.failed`` counters, the ``serve.queue_depth``
gauge, ``serve.batch_size`` and ``serve.request_latency_ms`` histograms,
the ``serve.batch_ms`` timer, one ``serve.batch`` span per executed
batch and one after-the-fact ``serve.request`` span per request,
parented onto its batch span (:meth:`~repro.obs.trace.Tracer.
record_span`).
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.inference import (
    DEFAULT_CACHE_CAPACITY,
    NaturalAnnealingEngine,
)

__all__ = [
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_SHUTDOWN",
    "STATUS_FAILED",
    "ServeConfig",
    "ServeResult",
    "InferenceServer",
]

logger = logging.getLogger("repro.serve")

#: Request served; ``prediction`` holds the free-node values.
STATUS_OK = "ok"
#: Request rejected at admission: the bounded queue was full.
STATUS_SHED = "shed"
#: Request accepted but never executed: the server shut down first (or
#: the batch it rode was interrupted mid-flight).
STATUS_SHUTDOWN = "shutdown"
#: The batch this request rode raised; ``error`` carries the message.
STATUS_FAILED = "failed"

_MODES = ("equilibrium", "circuit")


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`InferenceServer`.

    Attributes:
        batch_window_ms: How long the batcher holds the first queued
            request open for coalescing before executing.  ``0`` takes
            whatever is queued immediately (lowest latency floor, least
            batching).
        max_batch_size: Hard cap on coalesced batch size; ``1`` is the
            serial-serving baseline.
        max_queue: Admission bound — requests arriving while this many
            are queued are shed with :data:`STATUS_SHED`.
        mode: ``"equilibrium"`` (algebraic fixed point — the production
            fast path) or ``"circuit"`` (full annealing integration).
        duration_ns: Circuit-mode annealing time per batch.
        workers: Circuit-mode pool fan-out forwarded to
            :meth:`NaturalAnnealingEngine.infer_batch` (``None`` keeps
            the single-process path).
        shards: Circuit-mode shard count (with ``workers``).
        drain_on_shutdown: Whether :meth:`InferenceServer.shutdown`
            executes queued batches before exiting (``True``) or fails
            them with :data:`STATUS_SHUTDOWN` (``False``).
    """

    batch_window_ms: float = 2.0
    max_batch_size: int = 64
    max_queue: int = 256
    mode: str = "equilibrium"
    duration_ns: float = 50.0
    workers: int | None = None
    shards: int | None = None
    drain_on_shutdown: bool = True

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )


@dataclass
class ServeResult:
    """Terminal outcome of one submitted request.

    Attributes:
        status: One of :data:`STATUS_OK` / :data:`STATUS_SHED` /
            :data:`STATUS_SHUTDOWN` / :data:`STATUS_FAILED`.
        prediction: Denormalized free-node values (``None`` unless ok).
        batch_size: Size of the coalesced batch this request rode.
        queued_ms: Wall time from admission to batch execution start.
        service_ms: Batch execution wall time.
        latency_ms: ``queued_ms + service_ms`` — admission to completion.
        error: Failure message when ``status == "failed"``.
    """

    status: str
    prediction: np.ndarray | None = None
    batch_size: int = 0
    queued_ms: float = 0.0
    service_ms: float = 0.0
    latency_ms: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class _Pending:
    """One admitted request waiting in the batcher queue."""

    group: tuple
    observed_index: np.ndarray
    observed_values: np.ndarray
    future: asyncio.Future
    admitted_at: float = field(default_factory=time.perf_counter)


class InferenceServer:
    """Coalesces single inference requests into dynamic engine batches.

    Use as an async context manager (starts the batcher task on entry,
    drains and stops it on exit)::

        engine = NaturalAnnealingEngine(model=model, backend="sparse")
        async with InferenceServer(engine, ServeConfig()) as server:
            result = await server.submit(observed_index, observed_values)

    or drive the lifecycle explicitly with :meth:`start` /
    :meth:`shutdown`.
    """

    def __init__(
        self,
        engine: NaturalAnnealingEngine,
        config: ServeConfig | None = None,
    ):
        self.engine = engine
        self.config = config or ServeConfig()
        self._queue: deque[_Pending] = deque()
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closing = False
        self._drain = self.config.drain_on_shutdown
        #: Admission / execution tallies, mirrored into obs counters.
        self.stats = {
            "submitted": 0,
            "completed": 0,
            "shed": 0,
            "shutdown": 0,
            "failed": 0,
            "batches": 0,
            "empty_ticks": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        """Start the batcher task on the running event loop."""
        if self._task is not None:
            raise RuntimeError("server already started")
        self._closing = False
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-serve-batcher"
        )
        return self

    async def __aenter__(self) -> "InferenceServer":
        return self.start()

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    async def shutdown(self, drain: bool | None = None) -> None:
        """Stop the batcher, resolving every queued request.

        Args:
            drain: Execute queued batches before stopping (defaults to
                :attr:`ServeConfig.drain_on_shutdown`).  With ``False``
                every queued request resolves immediately with
                :data:`STATUS_SHUTDOWN`.
        """
        if drain is not None:
            self._drain = drain
        self._closing = True
        self._wake.set()
        if self._task is not None:
            try:
                await self._task
            except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                raise
            except asyncio.CancelledError:
                pass
            finally:
                self._task = None
        # Whatever the batcher left behind (drain=False, interrupt, or
        # requests admitted after the loop exited) resolves cleanly.
        self._fail_queued(STATUS_SHUTDOWN)

    def request_shutdown(self) -> None:
        """Signal-handler-safe shutdown trigger (sync, non-blocking)."""
        self._closing = True
        self._wake.set()

    @property
    def closing(self) -> bool:
        return self._closing

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def warm(self, observed_index: np.ndarray) -> None:
        """Pre-build the caches one clamp set will hit.

        Factors the reduced system for ``observed_index`` (equilibrium
        mode) or builds the coupling operator (circuit mode) before
        traffic arrives, so the first request of a group pays a warm
        back-substitution instead of a cold factorization.
        """
        observed_index = self._as_index(observed_index)
        if self.config.mode == "equilibrium":
            self.engine.infer_equilibrium_batch(
                observed_index, np.zeros((1, observed_index.size))
            )
        else:
            self.engine.operator  # noqa: B018 - builds and caches

    def submit(
        self,
        observed_index: np.ndarray,
        observed_values: np.ndarray,
    ) -> "asyncio.Future[ServeResult]":
        """Admit one request; resolves to its :class:`ServeResult`.

        Shed and shutdown rejections resolve immediately (already done
        by the time this returns); admitted requests resolve when their
        batch executes.  Never raises for load or lifecycle reasons —
        the status field is the contract.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.stats["submitted"] += 1
        obs.metrics().counter("serve.requests").inc()
        if self._closing:
            self.stats["shutdown"] += 1
            future.set_result(ServeResult(status=STATUS_SHUTDOWN))
            return future
        if len(self._queue) >= self.config.max_queue:
            self.stats["shed"] += 1
            obs.metrics().counter("serve.shed").inc()
            future.set_result(ServeResult(status=STATUS_SHED))
            return future
        observed_index = self._as_index(observed_index)
        observed_values = np.asarray(
            observed_values, dtype=float
        ).reshape(-1)
        if observed_values.size != observed_index.size:
            raise ValueError(
                "observed_values length must match observed_index "
                f"({observed_values.size} != {observed_index.size})"
            )
        group = (
            self.engine.problem_key(),
            observed_index.size,
            observed_index.tobytes(),
        )
        self._queue.append(
            _Pending(group, observed_index, observed_values, future)
        )
        obs.metrics().gauge("serve.queue_depth").set(len(self._queue))
        self._wake.set()
        return future

    @staticmethod
    def _as_index(observed_index: np.ndarray) -> np.ndarray:
        return np.asarray(observed_index, dtype=int).reshape(-1)

    def apply_delta(self, delta) -> None:
        """Fold a streaming :class:`~repro.stream.deltas.GraphDelta` in.

        Delegates to :meth:`NaturalAnnealingEngine.apply_delta` (cached
        factorizations update incrementally where possible) and bumps
        the engine's model version, so requests admitted afterwards form
        a new batch group — queued pre-delta requests keep their old
        group key and are never coalesced with post-delta arrivals.
        Execution is inline on the event loop, so a delta applied
        between awaits never races a batch in flight.
        """
        self.engine.apply_delta(delta)
        obs.metrics().counter("serve.deltas").inc()

    # ------------------------------------------------------------------
    # Batcher
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        try:
            while True:
                if not self._queue:
                    if self._closing:
                        break
                    self._wake.clear()
                    await self._wake.wait()
                    continue
                if self._closing and not self._drain:
                    break
                if self.config.batch_window_ms > 0 and not self._closing:
                    # Hold the window open so concurrent arrivals
                    # coalesce; during drain we flush without waiting.
                    await asyncio.sleep(self.config.batch_window_ms / 1000.0)
                batch = self._take_batch()
                if not batch:
                    # Window expired with nothing executable (all shed
                    # or drained meanwhile) — a harmless empty tick.
                    self.stats["empty_ticks"] += 1
                    continue
                self._execute(batch)
        except (KeyboardInterrupt, SystemExit, asyncio.CancelledError):
            logger.warning(
                "serve batcher interrupted; failing %d queued request(s) "
                "with shutdown status", len(self._queue),
            )
            self._closing = True
            raise
        finally:
            self._fail_queued(STATUS_SHUTDOWN)

    def _take_batch(self) -> list[_Pending]:
        """Dequeue up to ``max_batch_size`` requests sharing one group.

        The head request defines the problem fingerprint; later queued
        requests with the same fingerprint coalesce with it (preserving
        arrival order), others stay queued for the next tick.
        """
        if not self._queue:
            return []
        head_group = self._queue[0].group
        batch: list[_Pending] = []
        leftovers: deque[_Pending] = deque()
        while self._queue:
            pending = self._queue.popleft()
            if (
                pending.group == head_group
                and len(batch) < self.config.max_batch_size
            ):
                batch.append(pending)
            else:
                leftovers.append(pending)
        self._queue = leftovers
        obs.metrics().gauge("serve.queue_depth").set(len(self._queue))
        if leftovers:
            # More work is already queued — skip straight to the next
            # tick instead of sleeping another window.
            self._wake.set()
        return batch

    def _execute(self, batch: list[_Pending]) -> None:
        """Run one coalesced batch inline and resolve its futures."""
        config = self.config
        index = batch[0].observed_index
        values = np.stack([pending.observed_values for pending in batch])
        started = time.perf_counter()
        try:
            with obs.tracer().span(
                "serve.batch",
                batch=len(batch),
                mode=config.mode,
                num_observed=int(index.size),
            ) as batch_span:
                with obs.metrics().timer("serve.batch_ms"):
                    if config.mode == "equilibrium":
                        predictions = self.engine.infer_equilibrium_batch(
                            index, values
                        )
                    else:
                        predictions = self.engine.infer_batch(
                            index,
                            values,
                            duration=config.duration_ns,
                            workers=config.workers,
                            shards=config.shards,
                        ).predictions
        except (KeyboardInterrupt, SystemExit, asyncio.CancelledError):
            # Interrupted mid-flight: the batch never completed, so its
            # requests end with the clean shutdown status, not a hang.
            self._resolve_all(batch, ServeResult(status=STATUS_SHUTDOWN))
            self.stats["shutdown"] += len(batch)
            raise
        except Exception as error:
            logger.exception("serve batch of %d failed", len(batch))
            self.stats["failed"] += len(batch)
            obs.metrics().counter("serve.failed").inc(len(batch))
            self._resolve_all(
                batch,
                ServeResult(status=STATUS_FAILED, error=str(error)),
            )
            return
        finished = time.perf_counter()
        service_ms = (finished - started) * 1000.0
        self.stats["batches"] += 1
        self.stats["completed"] += len(batch)
        metrics = obs.metrics()
        metrics.counter("serve.batches").inc()
        metrics.counter("serve.samples").inc(len(batch))
        metrics.histogram("serve.batch_size").observe(len(batch))
        tracer = obs.tracer()
        trace_now = tracer.now_ms() if tracer.enabled else 0.0
        for position, pending in enumerate(batch):
            queued_ms = (started - pending.admitted_at) * 1000.0
            latency_ms = (finished - pending.admitted_at) * 1000.0
            metrics.histogram("serve.request_latency_ms").observe(latency_ms)
            if tracer.enabled:
                # Requests overlap each other and their batch, so they
                # are recorded after the fact, parented onto the batch
                # span, with start rebased onto the tracer clock.
                tracer.record_span(
                    "serve.request",
                    start_ms=trace_now
                    - (finished - pending.admitted_at) * 1000.0,
                    duration_ms=latency_ms,
                    parent_id=batch_span.span_id,
                    batch=len(batch),
                    queued_ms=queued_ms,
                )
            if not pending.future.done():
                pending.future.set_result(
                    ServeResult(
                        status=STATUS_OK,
                        prediction=predictions[position],
                        batch_size=len(batch),
                        queued_ms=queued_ms,
                        service_ms=service_ms,
                        latency_ms=latency_ms,
                    )
                )

    # ------------------------------------------------------------------
    def _resolve_all(
        self, batch: list[_Pending], result: ServeResult
    ) -> None:
        for pending in batch:
            if not pending.future.done():
                pending.future.set_result(result)

    def _fail_queued(self, status: str) -> None:
        while self._queue:
            pending = self._queue.popleft()
            if not pending.future.done():
                self.stats["shutdown"] += 1
                pending.future.set_result(ServeResult(status=status))
        obs.metrics().gauge("serve.queue_depth").set(0)
