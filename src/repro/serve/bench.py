"""End-to-end SLO benchmarks for the inference server.

Produces ``BENCH_serve.json`` (same envelope as ``BENCH_core.json`` so
``repro obs diff`` gates it):

* ``serve_open_loop`` rows — one per batch-window setting — replay a
  seeded bursty open-loop workload and record p50/p99/p99.9 request
  latency plus completed throughput, giving the
  throughput-vs-batch-window curve.  Each row's ``optimized_stats``
  holds per-repeat *makespan* samples (the whole replay, wall time), the
  distribution the regression gate compares.
* ``serve_closed_loop`` — the same workload driven by a fixed client
  population, for the open-vs-closed contrast documented in
  EXPERIMENTS.md.
* ``serve_batched_vs_serial`` — the headline comparison: a burst of
  identical-fingerprint requests served by the dynamic batcher versus a
  ``max_batch_size=1`` serial server.  Predictions must match
  bit-for-bit (the engine's sparse reduced solve is column-independent,
  so coalescing cannot change results), and batching must win on
  throughput.
* ``serve_overload_shed`` — drives a tiny admission queue far past
  saturation and records the shed fraction: backpressure must engage
  (sheds observed) while admitted requests still complete.

Everything is seeded; the only nondeterminism left is wall time.
"""

from __future__ import annotations

import asyncio
import platform
import time

import numpy as np

from .. import obs
from ..core.inference import NaturalAnnealingEngine
from ..core.model import DSGLModel
from ..perf import _timing_stats, random_sparse_system
from .server import InferenceServer, ServeConfig
from .traffic import (
    Workload,
    closed_loop,
    open_loop,
    summarize_latencies,
    synthetic_workload,
)

__all__ = ["run_serve_benchmarks", "format_serve_bench"]

#: Batch windows (ms) swept by the open-loop SLO curve.
SMOKE_WINDOWS = (0.0, 1.0, 4.0)
FULL_WINDOWS = (0.0, 2.0, 8.0)


def _serve_model(n: int, density: float, seed: int) -> DSGLModel:
    """A convex random model with normalization stats (serving-shaped)."""
    J, h = random_sparse_system(n, density, seed=seed)
    rng = np.random.default_rng(seed + 1)
    return DSGLModel(
        J=J,
        h=h,
        mean=rng.normal(size=n),
        scale=np.abs(rng.normal(size=n)) + 0.5,
    )


def _engine(model: DSGLModel) -> NaturalAnnealingEngine:
    # Sparse backend: the SuperLU reduced solve is column-independent,
    # which is what makes coalesced batches bit-identical to serial.
    return NaturalAnnealingEngine(model=model, backend="sparse")


def _warm(engine: NaturalAnnealingEngine, workload: Workload) -> None:
    for group in workload.groups:
        engine.infer_equilibrium_batch(group, np.zeros((1, group.size)))


def _replay(
    engine: NaturalAnnealingEngine,
    config: ServeConfig,
    workload: Workload,
    loop_mode: str,
) -> dict:
    """One traffic replay on a fresh server; adds ``makespan_ms``."""

    async def main() -> dict:
        async with InferenceServer(engine, config) as server:
            started = time.perf_counter()
            if loop_mode == "open":
                summary = await open_loop(server, workload)
            else:
                summary = await closed_loop(server, workload)
            summary["makespan_ms"] = (
                time.perf_counter() - started
            ) * 1000.0
        return summary

    return asyncio.run(main())


def _traffic_row(
    name: str,
    engine: NaturalAnnealingEngine,
    config: ServeConfig,
    workload: Workload,
    loop_mode: str,
    repeats: int,
) -> dict:
    """Repeat one load point; quantiles from the last replay, makespan
    distribution across replays."""
    _warm(engine, workload)
    makespans: list[float] = []
    summary: dict = {}
    for _ in range(repeats):
        summary = _replay(engine, config, workload, loop_mode)
        makespans.append(summary["makespan_ms"])
    quantiles = summarize_latencies(summary["latencies_ms"])
    return {
        "name": name,
        "n": engine.model.n,
        "mode": loop_mode,
        "batch_window_ms": config.batch_window_ms,
        "max_batch_size": config.max_batch_size,
        "rate_rps": workload.rate_rps,
        "requests": len(workload),
        "completed": summary["completed"],
        "statuses": summary["statuses"],
        "shed": summary["statuses"].get("shed", 0),
        "mean_batch_size": summary["mean_batch_size"],
        "throughput_rps": summary["throughput_rps"],
        "p50_ms": quantiles["p50_ms"],
        "p99_ms": quantiles["p99_ms"],
        "p999_ms": quantiles["p999_ms"],
        "max_latency_ms": quantiles["max_ms"],
        "optimized_stats": _timing_stats(makespans),
    }


def _burst_once(
    engine: NaturalAnnealingEngine,
    config: ServeConfig,
    observed_index: np.ndarray,
    values: np.ndarray,
) -> tuple[float, np.ndarray]:
    """Serve one simultaneous burst; returns (elapsed_ms, predictions)."""

    async def main() -> tuple[float, np.ndarray]:
        async with InferenceServer(engine, config) as server:
            started = time.perf_counter()
            futures = [
                server.submit(observed_index, values[i])
                for i in range(values.shape[0])
            ]
            results = await asyncio.gather(*futures)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
        bad = [r.status for r in results if not r.ok]
        if bad:
            raise RuntimeError(f"burst requests not served: {bad}")
        return elapsed_ms, np.stack([r.prediction for r in results])

    return asyncio.run(main())


def bench_serve_burst(
    n: int,
    density: float,
    burst: int,
    repeats: int,
    seed: int = 0,
) -> dict:
    """Dynamic batching vs serial (``max_batch_size=1``) on one burst."""
    model = _serve_model(n, density, seed)
    rng = np.random.default_rng(seed + 2)
    observed_index = np.sort(
        rng.choice(n, size=max(1, n // 2), replace=False)
    )
    values = rng.normal(size=(burst, observed_index.size))
    serial_cfg = ServeConfig(
        batch_window_ms=0.0,
        max_batch_size=1,
        max_queue=max(256, burst),
    )
    batched_cfg = ServeConfig(
        batch_window_ms=0.5,
        max_batch_size=burst,
        max_queue=max(256, burst),
    )
    serial_engine = _engine(model)
    batched_engine = _engine(model)
    # Warm both caches so the comparison times steady-state serving.
    serial_engine.infer_equilibrium_batch(
        observed_index, np.zeros((1, observed_index.size))
    )
    batched_engine.infer_equilibrium_batch(
        observed_index, np.zeros((1, observed_index.size))
    )

    serial_ms: list[float] = []
    batched_ms: list[float] = []
    serial_preds = batched_preds = None
    for _ in range(repeats):
        elapsed, serial_preds = _burst_once(
            serial_engine, serial_cfg, observed_index, values
        )
        serial_ms.append(elapsed)
        elapsed, batched_preds = _burst_once(
            batched_engine, batched_cfg, observed_index, values
        )
        batched_ms.append(elapsed)
    baseline = _timing_stats(serial_ms)
    optimized = _timing_stats(batched_ms)
    max_abs_diff = float(np.max(np.abs(serial_preds - batched_preds)))
    return {
        "name": "serve_batched_vs_serial",
        "n": n,
        "density": density,
        "batch": burst,
        "mode": "equilibrium",
        "baseline_ms": baseline["best_ms"],
        "optimized_ms": optimized["best_ms"],
        "speedup": baseline["best_ms"] / max(optimized["best_ms"], 1e-9),
        "baseline_stats": baseline,
        "optimized_stats": optimized,
        "throughput_serial_rps": burst / (baseline["best_ms"] / 1000.0),
        "throughput_batched_rps": burst / (optimized["best_ms"] / 1000.0),
        "max_abs_diff": max_abs_diff,
        "bitwise_identical": bool(
            np.array_equal(serial_preds, batched_preds)
        ),
    }


def bench_serve_overload(
    n: int, density: float, seed: int = 0
) -> dict:
    """Saturate a tiny admission queue; backpressure must shed."""
    model = _serve_model(n, density, seed)
    engine = _engine(model)
    workload = synthetic_workload(
        model,
        num_requests=120,
        rate_rps=50_000.0,
        burstiness=1.0,
        num_groups=1,
        seed=seed + 3,
    )
    config = ServeConfig(
        batch_window_ms=2.0, max_batch_size=8, max_queue=4
    )
    _warm(engine, workload)
    summary = _replay(engine, config, workload, "open")
    shed = summary["statuses"].get("shed", 0)
    return {
        "name": "serve_overload_shed",
        "n": n,
        "requests": len(workload),
        "max_queue": config.max_queue,
        "statuses": summary["statuses"],
        "shed": shed,
        "shed_fraction": shed / len(workload),
        "completed": summary["completed"],
        "throughput_rps": summary["throughput_rps"],
    }


def run_serve_benchmarks(
    smoke: bool = False, repeats: int = 3, seed: int = 0
) -> dict:
    """Run the serving SLO suite; returns the ``BENCH_serve.json`` payload.

    Args:
        smoke: Tiny sizes and request counts for CI smoke runs.  Smoke
            p99.9 numbers are statistically meaningless (few hundred
            requests) — the committed baseline uses the full sizes.
        repeats: Replay repetitions per load point (makespan samples).
        seed: Workload / model seed.
    """
    if smoke:
        n, density = 64, 0.1
        num_requests, rate_rps = 80, 2000.0
        windows = SMOKE_WINDOWS
        burst = 16
    else:
        n, density = 256, 0.05
        num_requests, rate_rps = 400, 1000.0
        windows = FULL_WINDOWS
        burst = 64
    with obs.metrics_enabled() as registry:
        model = _serve_model(n, density, seed)
        workload = synthetic_workload(
            model,
            num_requests=num_requests,
            rate_rps=rate_rps,
            burstiness=4.0,
            num_groups=4,
            seed=seed,
        )
        results = []
        for window in windows:
            engine = _engine(model)
            config = ServeConfig(
                batch_window_ms=window,
                max_batch_size=max(burst, 32),
                max_queue=max(4 * num_requests, 256),
            )
            results.append(
                _traffic_row(
                    "serve_open_loop",
                    engine, config, workload, "open", repeats,
                )
            )
        mid_window = windows[len(windows) // 2]
        results.append(
            _traffic_row(
                "serve_closed_loop",
                _engine(model),
                ServeConfig(
                    batch_window_ms=mid_window,
                    max_batch_size=max(burst, 32),
                    max_queue=max(4 * num_requests, 256),
                ),
                workload,
                "closed",
                repeats,
            )
        )
        results.append(
            bench_serve_burst(n, density, burst, repeats, seed=seed)
        )
        results.append(bench_serve_overload(n, density, seed=seed))
        snapshot = registry.snapshot()
    return {
        "benchmark": "serve_slo",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "smoke": smoke,
        "repeats": repeats,
        "results": results,
        "metrics": snapshot,
    }


def format_serve_bench(payload: dict) -> str:
    """Human-readable table of a serving benchmark payload."""
    lines = [
        f"{'row':<26s} {'loop':>6s} {'win ms':>7s} {'reqs':>6s} "
        f"{'p50 ms':>8s} {'p99 ms':>8s} {'p99.9':>8s} {'rps':>9s} "
        f"{'batch':>6s} {'shed':>5s}"
    ]
    for row in payload["results"]:
        if "p50_ms" in row:
            lines.append(
                f"{row['name']:<26s} {row['mode']:>6s} "
                f"{row['batch_window_ms']:>7.1f} {row['requests']:>6d} "
                f"{row['p50_ms']:>8.2f} {row['p99_ms']:>8.2f} "
                f"{row['p999_ms']:>8.2f} {row['throughput_rps']:>9.1f} "
                f"{row['mean_batch_size']:>6.1f} {row['shed']:>5d}"
            )
    for row in payload["results"]:
        if row.get("name") == "serve_batched_vs_serial":
            lines.append(
                f"batched vs serial (burst {row['batch']}): "
                f"{row['speedup']:.1f}x throughput "
                f"({row['throughput_serial_rps']:.0f} -> "
                f"{row['throughput_batched_rps']:.0f} rps), "
                f"max|diff| {row['max_abs_diff']:.1e}, "
                f"bitwise_identical={row['bitwise_identical']}"
            )
        if row.get("name") == "serve_overload_shed":
            lines.append(
                f"overload (queue {row['max_queue']}): "
                f"{row['shed']}/{row['requests']} shed "
                f"({100.0 * row['shed_fraction']:.1f}%), "
                f"{row['completed']} completed"
            )
    return "\n".join(lines)
