"""Seeded synthetic traffic for the inference server.

Two load-generation disciplines, both fully deterministic under a seed:

* :func:`closed_loop` — a fixed set of ``concurrency`` virtual clients,
  each submitting its next request the moment the previous one resolves.
  Latency is measured submit-to-complete.  Closed loops self-throttle:
  when the server slows down, the clients slow down with it, so the
  offered load adapts and tail latency is flattered — a client stuck
  behind a slow batch simply *doesn't issue* the requests that would
  have queued behind it.
* :func:`open_loop` — requests fire on a precomputed arrival schedule
  regardless of how the server is doing, and latency is measured from
  the *scheduled* arrival time, not from when the generator got around
  to submitting.  This is the coordinated-omission-safe discipline: a
  stall inflates the measured latency of every request scheduled during
  it, which is exactly what a real user population experiences.  p99.9
  claims are only honest under this mode (see EXPERIMENTS.md).

Arrivals are *bursty*: a two-state modulated Poisson process alternates
between a burst state (arrival rate multiplied by ``burstiness``) and a
quiet state (divided by it), with geometrically-distributed run lengths
— the "millions of users" shape where load comes in waves rather than a
smooth stream.  ``burstiness=1`` degenerates to plain Poisson arrivals.

A :class:`Workload` also rotates through ``num_groups`` distinct
observed-index sets, exercising the server's fingerprint grouping and
the engine's LRU factorization cache the way mixed production traffic
would.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.model import DSGLModel
from .server import STATUS_OK, InferenceServer

__all__ = [
    "TrafficRequest",
    "Workload",
    "synthetic_workload",
    "open_loop",
    "closed_loop",
    "summarize_latencies",
]


@dataclass(frozen=True)
class TrafficRequest:
    """One scheduled request: when it arrives and what it clamps."""

    at_ms: float
    observed_index: np.ndarray
    observed_values: np.ndarray


@dataclass
class Workload:
    """A seeded, replayable request schedule.

    Attributes:
        requests: Arrival-ordered requests (``at_ms`` non-decreasing).
        rate_rps: Mean offered arrival rate the schedule was drawn at.
        seed: Generator seed (same seed, same workload, bit-for-bit).
        groups: The distinct observed-index sets the workload rotates
            through (what the server's fingerprint grouping sees).
    """

    requests: list[TrafficRequest]
    rate_rps: float
    seed: int
    groups: list[np.ndarray] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration_ms(self) -> float:
        """Span of the arrival schedule (0 for an empty workload)."""
        return self.requests[-1].at_ms if self.requests else 0.0


def synthetic_workload(
    model: DSGLModel,
    num_requests: int,
    *,
    rate_rps: float = 500.0,
    burstiness: float = 4.0,
    num_observed: int | None = None,
    num_groups: int = 4,
    mean_run: int = 16,
    seed: int = 0,
) -> Workload:
    """Draw a bursty, group-rotating request schedule for ``model``.

    Args:
        model: The served model; indices are drawn over its ``n`` nodes.
        num_requests: Number of requests in the schedule.
        rate_rps: Mean arrival rate (requests per second of wall time).
        burstiness: Burst/quiet rate multiplier of the two-state
            modulated Poisson arrivals (``1`` = plain Poisson).
        num_observed: Observed (clamped) nodes per request; defaults to
            half the model.
        num_groups: Distinct observed-index sets rotated through.
        mean_run: Mean arrivals per burst/quiet state before switching.
        seed: Seed for arrivals, group choice, and clamp values.

    Returns:
        A :class:`Workload` whose requests are in arrival order.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if burstiness < 1:
        raise ValueError(f"burstiness must be >= 1, got {burstiness}")
    if not 1 <= num_groups:
        raise ValueError(f"num_groups must be >= 1, got {num_groups}")
    rng = np.random.default_rng(seed)
    n = model.n
    if num_observed is None:
        num_observed = max(1, n // 2)
    if not 1 <= num_observed < n:
        raise ValueError(
            f"num_observed must be in [1, {n - 1}], got {num_observed}"
        )
    groups = [
        np.sort(rng.choice(n, size=num_observed, replace=False))
        for _ in range(num_groups)
    ]
    # Two-state modulated Poisson arrivals: exponential gaps whose rate
    # switches between rate*burstiness and rate/burstiness, state runs
    # geometrically distributed around mean_run.  The raw modulated
    # process has mean gap (1/b + b)/2 per nominal gap, so the gaps are
    # rescaled afterwards: the *mean* offered rate is exactly rate_rps
    # while the burst structure (overdispersion) is preserved.
    gaps_ms = np.empty(num_requests)
    bursty = True
    switch = 1.0 / max(1, mean_run)
    for i in range(num_requests):
        rate = rate_rps * burstiness if bursty else rate_rps / burstiness
        gaps_ms[i] = rng.exponential(1000.0 / rate)
        if rng.random() < switch:
            bursty = not bursty
    gaps_ms *= (1000.0 / rate_rps) / gaps_ms.mean()
    arrivals = np.cumsum(gaps_ms)
    arrivals -= arrivals[0]  # first request fires at t=0
    group_choice = rng.integers(0, num_groups, size=num_requests)
    requests = [
        TrafficRequest(
            at_ms=float(arrivals[i]),
            observed_index=groups[group_choice[i]],
            observed_values=rng.normal(size=num_observed),
        )
        for i in range(num_requests)
    ]
    return Workload(
        requests=requests, rate_rps=rate_rps, seed=seed, groups=groups
    )


async def open_loop(
    server: InferenceServer, workload: Workload
) -> dict:
    """Replay ``workload`` on its arrival schedule; measure honestly.

    Each request is submitted at (or as soon as possible after) its
    scheduled arrival, and its latency is charged from the *scheduled*
    time: if the event loop or the server stalls, every request that
    should have arrived during the stall absorbs the delay instead of
    the schedule silently stretching (coordinated omission).

    Returns:
        Summary dict — per-status counts, completed-request latencies
        (``latencies_ms``, :data:`STATUS_OK` only), batch sizes,
        ``throughput_rps`` (completed over makespan), and
        ``offered_rps`` (requests over schedule span).
    """
    epoch = time.perf_counter()
    results: list[tuple[asyncio.Future, float]] = []

    for request in workload.requests:
        scheduled = epoch + request.at_ms / 1000.0
        delay = scheduled - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        # Submit lag (the generator waking late because the loop was
        # busy executing a batch) is charged to the request: its clock
        # started at the scheduled arrival, not at submission.
        submit_lag_ms = max(
            0.0, (time.perf_counter() - scheduled) * 1000.0
        )
        future = server.submit(
            request.observed_index, request.observed_values
        )
        results.append((future, submit_lag_ms))
    if results:
        await asyncio.gather(*(future for future, _ in results))

    statuses: dict[str, int] = {}
    latencies_ms: list[float] = []
    batch_sizes: list[int] = []
    for future, submit_lag_ms in results:
        result = future.result()
        statuses[result.status] = statuses.get(result.status, 0) + 1
        if result.status == STATUS_OK:
            latencies_ms.append(submit_lag_ms + result.latency_ms)
            batch_sizes.append(result.batch_size)
    makespan_s = max(time.perf_counter() - epoch, 1e-9)
    completed = statuses.get(STATUS_OK, 0)
    return {
        "loop": "open",
        "requests": len(workload),
        "statuses": statuses,
        "completed": completed,
        "latencies_ms": latencies_ms,
        "batch_sizes": batch_sizes,
        "mean_batch_size": (
            float(np.mean(batch_sizes)) if batch_sizes else 0.0
        ),
        "throughput_rps": completed / makespan_s,
        "offered_rps": (
            len(workload) / max(workload.duration_ms / 1000.0, 1e-9)
        ),
    }


async def closed_loop(
    server: InferenceServer,
    workload: Workload,
    *,
    concurrency: int = 8,
) -> dict:
    """Drive ``workload`` with a fixed population of virtual clients.

    ``concurrency`` clients pull requests off the (shared) schedule in
    order, each submitting its next the moment the previous resolves —
    arrival times are ignored.  Latency is submit-to-complete; the
    offered load self-throttles to whatever the server sustains, which
    is why this mode understates tail latency (see module docstring).

    Returns:
        Summary dict shaped like :func:`open_loop` (``loop: "closed"``).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    iterator = iter(workload.requests)
    statuses: dict[str, int] = {}
    latencies_ms: list[float] = []
    batch_sizes: list[int] = []
    started = time.perf_counter()

    async def client() -> None:
        for request in iterator:
            submit_at = time.perf_counter()
            result = await server.submit(
                request.observed_index, request.observed_values
            )
            elapsed_ms = (time.perf_counter() - submit_at) * 1000.0
            statuses[result.status] = statuses.get(result.status, 0) + 1
            if result.status == STATUS_OK:
                latencies_ms.append(elapsed_ms)
                batch_sizes.append(result.batch_size)

    await asyncio.gather(*(client() for _ in range(concurrency)))
    makespan_s = max(time.perf_counter() - started, 1e-9)
    completed = statuses.get(STATUS_OK, 0)
    return {
        "loop": "closed",
        "requests": len(workload),
        "concurrency": concurrency,
        "statuses": statuses,
        "completed": completed,
        "latencies_ms": latencies_ms,
        "batch_sizes": batch_sizes,
        "mean_batch_size": (
            float(np.mean(batch_sizes)) if batch_sizes else 0.0
        ),
        "throughput_rps": completed / makespan_s,
        "offered_rps": float("inf"),
    }


def summarize_latencies(latencies_ms: list[float]) -> dict:
    """SLO quantiles of a latency sample (type-7, matching obs/perf).

    p99.9 is reported unconditionally — on small samples it degenerates
    toward the max, which is exactly why EXPERIMENTS.md insists on
    open-loop runs with enough requests before quoting it.
    """
    if not latencies_ms:
        return {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "p999_ms": 0.0,
            "max_ms": 0.0,
        }
    ordered = np.sort(np.asarray(latencies_ms, dtype=float))
    return {
        "count": int(ordered.size),
        "mean_ms": float(ordered.mean()),
        "p50_ms": float(np.quantile(ordered, 0.50)),
        "p99_ms": float(np.quantile(ordered, 0.99)),
        "p999_ms": float(np.quantile(ordered, 0.999)),
        "max_ms": float(ordered[-1]),
    }
