"""``repro.serve`` — inference-as-a-service over the annealing engine.

A stdlib-``asyncio`` serving layer: single-sample requests coalesce into
dynamic batches over the batched engine paths, with fingerprint-keyed
cache warmth, bounded-queue admission control, and graceful shutdown
(:mod:`repro.serve.server`); seeded open/closed-loop bursty traffic
generation (:mod:`repro.serve.traffic`); and the SLO benchmark suite
behind ``repro serve bench`` / ``BENCH_serve.json``
(:mod:`repro.serve.bench`).
"""

from .bench import format_serve_bench, run_serve_benchmarks
from .server import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
    STATUS_SHUTDOWN,
    InferenceServer,
    ServeConfig,
    ServeResult,
)
from .traffic import (
    TrafficRequest,
    Workload,
    closed_loop,
    open_loop,
    summarize_latencies,
    synthetic_workload,
)

__all__ = [
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_SHUTDOWN",
    "InferenceServer",
    "ServeConfig",
    "ServeResult",
    "TrafficRequest",
    "Workload",
    "closed_loop",
    "format_serve_bench",
    "open_loop",
    "run_serve_benchmarks",
    "summarize_latencies",
    "synthetic_workload",
]
