"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the registered datasets with their shapes.
``train``
    Train a dense DS-GL system on one dataset, report the test RMSE of
    natural-annealing inference, and optionally save the model.
``decompose``
    Train + decompose for a PE grid and print the decomposition report.
``table {1,2,3,4}`` / ``figure {4,10,11,12,13}``
    Regenerate one paper artifact and print it.
``bench``
    Time the annealing hot paths (sparse vs dense, batched vs looped)
    and write ``BENCH_core.json`` (with per-repeat timing samples and a
    metrics snapshot embedded).
``faults sweep``
    Sweep co-annealing accuracy against a uniform device-fault rate
    (stuck nodes, open couplers, conductance drift, missed syncs) and
    optionally dump the table as JSON.
``obs summarize PATH``
    Aggregate a recorded trace JSONL into a span/metric table.
``obs timeline PATH``
    Reconstruct the causal timeline of a trace — stitched worker spans,
    critical path, per-shard wall time, pool idle and halo-exchange wait.
``obs export PATH``
    Convert a trace's embedded metrics snapshot into OpenMetrics text
    (Prometheus textfile-collector format) or a JSON snapshot document.
``obs flame PATH``
    Summarize a collapsed-stack profile (from ``--profile``) in the
    terminal: hottest frames and stacks.
``obs diff BASELINE CANDIDATE``
    Compare two ``BENCH_*.json`` snapshots with a per-repeat noise band;
    exit code 3 when a statistically meaningful regression is flagged.
``serve run``
    Start the dynamic-batching inference server on a seeded synthetic
    model, drive a bursty open-loop workload through it, and print the
    SLO summary (p50/p99/p99.9, throughput, shed counts).
``serve bench``
    Run the serving SLO benchmark suite (throughput-vs-batch-window
    curve, batched-vs-serial burst, overload shedding) and write
    ``BENCH_serve.json``.

Every command accepts the observability options ``--trace PATH`` (record
a JSONL trace of spans/events plus a final metrics snapshot),
``--metrics`` (print the metrics snapshot on completion), ``--profile
PATH`` (continuous sampling profiler, collapsed-stack output; see
``--profile-interval``/``--profile-timer``), and ``-v``/``-q`` (console
log verbosity through the stdlib ``repro.*`` loggers).

Commands that shard annealing work (``train``, ``table``, ``figure``,
``bench``, ``faults sweep``) also accept ``--workers N`` to fan it out
over N worker processes via :mod:`repro.parallel` — results are
bit-for-bit identical for any worker count (seed-deterministic
sharding), so ``--workers`` is purely a wall-clock knob.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import obs
from .datasets import ALL_DATASETS, load_dataset
from .experiments import (
    FAULT_RATE_GRID,
    ExperimentContext,
    evaluate_equilibrium,
    fault_sweep_data,
    fig4_data,
    fig10_data,
    fig11_data,
    fig12_data,
    fig13_data,
    format_density_sweep,
    format_fault_sweep,
    format_latency_sweep,
    format_noise_sweep,
    format_sync_sweep,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    table1_data,
    table2_data,
    table3_data,
    table4_data,
)

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return number


def _observability_options() -> argparse.ArgumentParser:
    """Shared ``--trace``/``--metrics``/``-v``/``-q`` options.

    Defined on a parent parser attached to every subcommand so the flags
    may appear before or after the positional arguments.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a JSONL trace of spans/events (plus a final metrics "
        "snapshot) to PATH; summarize with `repro obs summarize PATH`",
    )
    group.add_argument(
        "--metrics",
        action="store_true",
        help="print the collected metrics snapshot when the command ends",
    )
    group.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="sample the run with the continuous profiler and write a "
        "collapsed-stack profile (flamegraph input) to PATH; inspect "
        "with `repro obs flame PATH`",
    )
    group.add_argument(
        "--profile-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="profiler sampling interval "
        f"(default {obs.DEFAULT_INTERVAL}s = {1 / obs.DEFAULT_INTERVAL:.0f} Hz)",
    )
    group.add_argument(
        "--profile-timer",
        default="wall",
        choices=("wall", "cpu"),
        help="sample on wall-clock time (includes waits) or CPU time",
    )
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v INFO, -vv DEBUG)",
    )
    group.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="only log errors",
    )
    return common


def _parallel_options() -> argparse.ArgumentParser:
    """Shared ``--workers`` option for commands that shard work."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="fan annealing work out over N worker processes "
        "(seed-deterministic: any N gives bit-for-bit identical results)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DS-GL reproduction: nature-powered graph learning.",
    )
    common = _observability_options()
    parallel = _parallel_options()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "datasets", help="list registered datasets", parents=[common]
    )

    train = sub.add_parser(
        "train",
        help="train and evaluate a dense system",
        parents=[common, parallel],
    )
    train.add_argument("dataset", choices=ALL_DATASETS)
    train.add_argument("--size", default="small", choices=("small", "paper"))
    train.add_argument("--window", type=int, default=3)
    train.add_argument("--ridge", type=float, default=5e-2)
    train.add_argument("--save", default=None, help="path for the .npz model")
    train.add_argument(
        "--anneal-windows",
        type=int,
        default=4,
        help="test windows to anneal through the circuit simulator as a "
        "finite-time check (0 disables)",
    )

    decompose_cmd = sub.add_parser(
        "decompose",
        help="train, decompose, and report structure",
        parents=[common],
    )
    decompose_cmd.add_argument("dataset", choices=ALL_DATASETS)
    decompose_cmd.add_argument("--size", default="small", choices=("small", "paper"))
    decompose_cmd.add_argument("--density", type=float, default=0.15)
    decompose_cmd.add_argument(
        "--pattern", default="dmesh", choices=("chain", "mesh", "dmesh")
    )
    decompose_cmd.add_argument("--grid", type=int, nargs=2, default=(3, 3))

    table = sub.add_parser(
        "table", help="regenerate a paper table", parents=[common, parallel]
    )
    table.add_argument("number", type=int, choices=(1, 2, 3, 4))
    table.add_argument("--size", default="small", choices=("small", "paper"))

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure", parents=[common, parallel]
    )
    figure.add_argument("number", type=int, choices=(4, 10, 11, 12, 13))
    figure.add_argument("--size", default="small", choices=("small", "paper"))

    bench = sub.add_parser(
        "bench",
        help="time the hot paths, write BENCH_core.json / BENCH_nn.json",
        parents=[common, parallel],
    )
    bench.add_argument(
        "--suite",
        default="core",
        choices=("core", "nn"),
        help="core = annealing hot paths, nn = GNN baseline fast path",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="tiny problem sizes (CI smoke run, finishes in seconds)",
    )
    bench.add_argument("--batch", type=_positive_int, default=64)
    bench.add_argument("--repeats", type=_positive_int, default=3)

    faults_cmd = sub.add_parser(
        "faults", help="fault-injection utilities"
    )
    faults_sub = faults_cmd.add_subparsers(dest="faults_command", required=True)
    sweep = faults_sub.add_parser(
        "sweep",
        help="accuracy vs device-fault rate on the Scalable DSPU",
        parents=[common, parallel],
    )
    sweep.add_argument(
        "--dataset",
        action="append",
        choices=ALL_DATASETS,
        default=None,
        help="dataset(s) to sweep (repeatable; default: traffic)",
    )
    sweep.add_argument("--size", default="small", choices=("small", "paper"))
    sweep.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=None,
        metavar="R",
        help=f"uniform fault rates to sweep (default: {FAULT_RATE_GRID})",
    )
    sweep.add_argument("--density", type=float, default=0.15)
    sweep.add_argument(
        "--pattern", default="dmesh", choices=("chain", "mesh", "dmesh")
    )
    sweep.add_argument("--duration-ns", type=float, default=20000.0)
    sweep.add_argument("--max-windows", type=_positive_int, default=10)
    sweep.add_argument(
        "--trials",
        type=_positive_int,
        default=1,
        help="sampled fault scenarios averaged per rate",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--no-sync-skips",
        action="store_true",
        help="leave synchronization edges fault-free",
    )
    sweep.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid (two rates, short anneals) for CI smoke runs",
    )
    sweep.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the sweep data as JSON to PATH",
    )

    serve_cmd = sub.add_parser(
        "serve", help="dynamic-batching inference serving"
    )
    serve_sub = serve_cmd.add_subparsers(dest="serve_command", required=True)
    serve_run = serve_sub.add_parser(
        "run",
        help="serve a seeded open-loop workload and print the SLO summary",
        parents=[common],
    )
    serve_run.add_argument("--n", type=_positive_int, default=128)
    serve_run.add_argument("--density", type=float, default=0.05)
    serve_run.add_argument(
        "--requests",
        type=_positive_int,
        default=200,
        help="number of requests in the seeded workload",
    )
    serve_run.add_argument(
        "--rate",
        type=float,
        default=1000.0,
        metavar="RPS",
        help="mean offered arrival rate (requests per second)",
    )
    serve_run.add_argument(
        "--burstiness",
        type=float,
        default=4.0,
        help="burst/quiet rate multiplier of the arrival process (1 = "
        "plain Poisson)",
    )
    serve_run.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="how long the batcher holds the first request for coalescing",
    )
    serve_run.add_argument(
        "--max-batch-size",
        type=_positive_int,
        default=64,
        help="coalesced batch cap (1 = serial serving)",
    )
    serve_run.add_argument(
        "--max-queue",
        type=_positive_int,
        default=256,
        help="admission bound; requests beyond it are shed",
    )
    serve_run.add_argument(
        "--closed-loop",
        action="store_true",
        help="drive with a fixed client population instead of the "
        "open-loop arrival schedule (understates tail latency)",
    )
    serve_run.add_argument(
        "--concurrency",
        type=_positive_int,
        default=8,
        help="virtual clients in --closed-loop mode",
    )
    serve_run.add_argument("--seed", type=int, default=0)
    serve_run.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the run summary as JSON to PATH",
    )

    serve_bench = serve_sub.add_parser(
        "bench",
        help="run the serving SLO suite, write BENCH_serve.json",
        parents=[common],
    )
    serve_bench.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_serve.json)",
    )
    serve_bench.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload (CI smoke run, finishes in seconds)",
    )
    serve_bench.add_argument("--repeats", type=_positive_int, default=3)
    serve_bench.add_argument("--seed", type=int, default=0)

    stream_cmd = sub.add_parser(
        "stream", help="streaming graph deltas with incremental updates"
    )
    stream_sub = stream_cmd.add_subparsers(
        dest="stream_command", required=True
    )
    stream_run = stream_sub.add_parser(
        "run",
        help="replay a seeded delta stream and print the per-window summary",
        parents=[common],
    )
    stream_run.add_argument("--n", type=_positive_int, default=128)
    stream_run.add_argument("--density", type=float, default=0.05)
    stream_run.add_argument(
        "--windows",
        type=_positive_int,
        default=8,
        help="observation windows to replay",
    )
    stream_run.add_argument(
        "--batch",
        type=_positive_int,
        default=16,
        help="observations (samples) per window",
    )
    stream_run.add_argument(
        "--observed-fraction",
        type=float,
        default=0.25,
        help="fraction of nodes clamped per window",
    )
    stream_run.add_argument(
        "--edges",
        type=int,
        default=4,
        help="edge edits sampled per window delta",
    )
    stream_run.add_argument(
        "--h-edits",
        type=int,
        default=0,
        help="self-reaction edits sampled per window delta",
    )
    stream_run.add_argument(
        "--rotate-every",
        type=int,
        default=0,
        help="re-draw the observed set every N windows (0 keeps one set)",
    )
    stream_run.add_argument("--seed", type=int, default=0)
    stream_run.add_argument(
        "--backend",
        choices=("dense", "sparse", "auto"),
        default="sparse",
        help="engine coupling-operator backend",
    )
    stream_run.add_argument(
        "--mode",
        choices=("engine", "serve"),
        default="engine",
        help="replay directly against the engine, or through the "
        "dynamic-batching server (delta applied mid-traffic)",
    )
    stream_run.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the replay summary as JSON to PATH",
    )

    tune = sub.add_parser(
        "tune",
        help="search annealing-path configs for an equal-accuracy "
        "Pareto front (or replay a tuned config with --config)",
        parents=[common, parallel],
    )
    tune.add_argument(
        "--config",
        default=None,
        metavar="PATH",
        help="replay the winning config of a recorded tune artifact "
        "instead of searching; exits 1 if the replayed accuracy "
        "misses the recorded target",
    )
    tune.add_argument(
        "--problem",
        default="circuit",
        choices=("circuit", "dspu"),
        help="circuit = batched CircuitSimulator annealing vs the exact "
        "equilibrium; dspu = ScalableDSPU sync-interval tuning",
    )
    tune.add_argument("--n", type=_positive_int, default=512)
    tune.add_argument("--density", type=float, default=0.05)
    tune.add_argument("--batch", type=_positive_int, default=8)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument(
        "--target-error",
        type=float,
        default=1e-4,
        help="accuracy ceiling (MAE vs the exact reference) a winning "
        "config must meet",
    )
    tune.add_argument("--repeats", type=_positive_int, default=3)
    tune.add_argument(
        "--durations",
        type=float,
        nargs="+",
        default=None,
        metavar="NS",
        help="annealing budgets to search (default depends on --problem)",
    )
    tune.add_argument(
        "--dts", type=float, nargs="+", default=[0.1], metavar="DT",
        help="fixed/initial step sizes to search",
    )
    tune.add_argument(
        "--rtols",
        type=float,
        nargs="+",
        default=[1e-3],
        metavar="RTOL",
        help="adaptive relative tolerances to search ([] disables)",
    )
    tune.add_argument(
        "--settle-tolerances",
        type=float,
        nargs="+",
        default=[1e-7],
        metavar="TOL",
        help="early-exit freeze thresholds to search ([] disables)",
    )
    tune.add_argument(
        "--schedules",
        nargs="+",
        default=[],
        metavar="NAME",
        help="annealing-kick schedule shapes to search "
        "(linear/geometric/cosine/constant)",
    )
    tune.add_argument(
        "--sync-intervals",
        type=float,
        nargs="+",
        default=None,
        metavar="NS",
        help="kick intervals (circuit) / sync intervals (dspu) to search",
    )
    tune.add_argument(
        "--restarts",
        type=_positive_int,
        nargs="+",
        default=[],
        metavar="K",
        help="best-of-K restart counts to search (circuit only)",
    )
    tune.add_argument(
        "--shard-counts",
        type=_positive_int,
        nargs="+",
        default=[],
        metavar="S",
        help="parallel shard counts to search (circuit only)",
    )
    tune.add_argument(
        "--out",
        default="TUNE_pareto.json",
        metavar="PATH",
        help="Pareto artifact output path (search mode)",
    )
    tune.add_argument(
        "--smoke",
        action="store_true",
        help="tiny problem and grid (CI smoke run, finishes in seconds)",
    )

    obs_cmd = sub.add_parser(
        "obs", help="observability utilities", parents=[common]
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="aggregate a trace JSONL into a span/metric table"
    )
    summarize.add_argument("path", help="trace JSONL recorded with --trace")

    timeline = obs_sub.add_parser(
        "timeline",
        help="reconstruct the causal timeline of a (multi-process) trace",
    )
    timeline.add_argument("path", help="trace JSONL recorded with --trace")
    timeline.add_argument(
        "--width",
        type=_positive_int,
        default=60,
        help="gantt lane width in characters",
    )

    export = obs_sub.add_parser(
        "export",
        help="export a trace's metrics snapshot for external scraping",
    )
    export.add_argument("path", help="trace JSONL recorded with --trace")
    export.add_argument(
        "--format",
        dest="export_format",
        default="openmetrics",
        choices=("openmetrics", "json"),
        help="OpenMetrics text (Prometheus textfile collector) or a "
        "schema-tagged JSON snapshot",
    )
    export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write to PATH instead of stdout",
    )

    flame = obs_sub.add_parser(
        "flame",
        help="summarize a collapsed-stack profile (from --profile)",
    )
    flame.add_argument("path", help="collapsed-stack profile file")
    flame.add_argument(
        "--top",
        type=_positive_int,
        default=15,
        help="rows per table (hottest frames / hottest stacks)",
    )

    diff = obs_sub.add_parser(
        "diff",
        help="compare two BENCH_*.json snapshots (exit 3 on regression)",
    )
    diff.add_argument("baseline", help="baseline BENCH_*.json")
    diff.add_argument("candidate", help="candidate BENCH_*.json")
    diff.add_argument(
        "--min-band",
        type=float,
        default=None,
        metavar="FRACTION",
        help="noise-band floor as a fraction (default 0.10); the band "
        "widens automatically with the per-repeat sample spread",
    )
    diff.add_argument(
        "--all",
        dest="show_all",
        action="store_true",
        help="list every compared timing, not just flagged ones",
    )
    return parser


def _cmd_datasets() -> int:
    for name in ALL_DATASETS:
        ds = load_dataset(name, size="small")
        shape = "x".join(str(k) for k in ds.series.shape)
        print(f"{name:<12s} {shape:<14s} {ds.description[:60]}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core import (
        IntegrationConfig,
        NaturalAnnealingEngine,
        TemporalWindowing,
        TrainingConfig,
        fit_precision,
        rmse,
    )

    dataset = load_dataset(args.dataset, size=args.size)
    train, _val, test = dataset.split()
    series = train.flat_series()
    windowing = TemporalWindowing(series.shape[1], args.window)
    model = fit_precision(
        windowing.windows(series),
        TrainingConfig(ridge=args.ridge),
        metadata={"dataset": args.dataset},
    )
    test_series = test.flat_series()
    score = evaluate_equilibrium(model, windowing, test_series)
    print(
        f"{args.dataset}: {model.n} variables, margin "
        f"{model.convexity_margin():.3f}, test RMSE {score:.4f}"
    )
    num_windows = max(0, args.anneal_windows)
    if num_windows:
        # Finite-time circuit check: anneal a few test windows through the
        # full simulator so annealing-time observables (step counts,
        # settled fraction, energy descent) exist alongside the
        # equilibrium RMSE — and land in the trace when --trace is on.
        frames = windowing.prediction_frames(test_series)[:num_windows]
        histories = np.stack(
            [windowing.history_of(test_series, t) for t in frames]
        )
        engine = NaturalAnnealingEngine(
            model,
            config=IntegrationConfig(record_every=5, energy_probe_every=25),
        )
        result = engine.infer_batch(
            windowing.observed_index, histories, workers=args.workers
        )
        targets = np.stack([test_series[t] for t in frames])
        circuit_rmse = rmse(result.predictions, targets)
        settled = result.trajectory.settled_fraction()
        print(
            f"circuit check: {len(frames)} windows annealed for "
            f"{result.annealing_time_ns:.0f} ns, settled fraction "
            f"{settled:.2f}, RMSE {circuit_rmse:.4f}"
        )
    if args.save:
        model.save(args.save)
        print(f"model saved to {args.save}")
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    from .core import TemporalWindowing, TrainingConfig, fit_precision
    from .decompose import DecompositionConfig, analyze, decompose

    dataset = load_dataset(args.dataset, size=args.size)
    train, _val, test = dataset.split()
    series = train.flat_series()
    windowing = TemporalWindowing(series.shape[1], 3)
    samples = windowing.windows(series)
    model = fit_precision(samples, TrainingConfig(ridge=5e-2))
    system = decompose(
        model,
        samples,
        DecompositionConfig(
            density=args.density,
            pattern=args.pattern,
            grid_shape=tuple(args.grid),
            anchor_index=tuple(windowing.target_index.tolist()),
        ),
    )
    print(analyze(system).summary())
    dense_rmse = evaluate_equilibrium(model, windowing, test.flat_series())
    sparse_rmse = evaluate_equilibrium(
        system.model, windowing, test.flat_series()
    )
    print(f"dense RMSE {dense_rmse:.4f} -> decomposed RMSE {sparse_rmse:.4f}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        print(format_table1(table1_data()))
        return 0
    context = ExperimentContext(size=args.size, workers=args.workers)
    if args.number == 2:
        print(format_table2(table2_data(context)))
    elif args.number == 3:
        print(format_table3(table3_data(context)))
    else:
        print(format_table4(table4_data(context)))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.number == 4:
        data = fig4_data()
        print("DSPU final:", np.round(data["dspu_final"], 3))
        print("BRIM final:", np.round(data["brim_final"], 3))
        return 0
    context = ExperimentContext(size=args.size, workers=args.workers)
    if args.number == 10:
        print(format_density_sweep(fig10_data(context)))
    elif args.number == 11:
        print(format_latency_sweep(fig11_data(context)))
    elif args.number == 12:
        print(format_sync_sweep(fig12_data(context)))
    else:
        print(format_noise_sweep(fig13_data(context)))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import format_bench, run_core_benchmarks, write_bench_json

    if args.suite == "nn":
        from .perf_nn import run_nn_benchmarks

        payload = run_nn_benchmarks(
            smoke=args.smoke, batch=args.batch, repeats=args.repeats
        )
    else:
        payload = run_core_benchmarks(
            smoke=args.smoke, batch=args.batch, repeats=args.repeats,
            workers=args.workers,
        )
    print(format_bench(payload))
    out = args.out if args.out is not None else f"BENCH_{args.suite}.json"
    path = write_bench_json(payload, out)
    print(f"wrote {path}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.faults_command != "sweep":
        return 1
    if args.smoke:
        rates = args.rates or (0.0, 0.02)
        duration_ns = min(args.duration_ns, 5000.0)
        max_windows = min(args.max_windows, 3)
    else:
        rates = args.rates or FAULT_RATE_GRID
        duration_ns = args.duration_ns
        max_windows = args.max_windows
    context = ExperimentContext(size=args.size)
    data = fault_sweep_data(
        context,
        datasets=tuple(args.dataset or ("traffic",)),
        fault_rates=tuple(rates),
        density=args.density,
        pattern=args.pattern,
        duration_ns=duration_ns,
        max_windows=max_windows,
        trials=args.trials,
        include_sync_skips=not args.no_sync_skips,
        seed=args.seed,
        workers=args.workers,
    )
    print(format_fault_sweep(data))
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .perf import write_bench_json
    from .serve import (
        InferenceServer,
        ServeConfig,
        closed_loop,
        format_serve_bench,
        open_loop,
        run_serve_benchmarks,
        summarize_latencies,
        synthetic_workload,
    )

    if args.serve_command == "bench":
        payload = run_serve_benchmarks(
            smoke=args.smoke, repeats=args.repeats, seed=args.seed
        )
        print(format_serve_bench(payload))
        out = args.out if args.out is not None else "BENCH_serve.json"
        path = write_bench_json(payload, out)
        print(f"wrote {path}")
        return 0

    # serve run: a seeded synthetic model under one workload replay.
    from .core import NaturalAnnealingEngine
    from .serve.bench import _serve_model

    model = _serve_model(args.n, args.density, args.seed)
    engine = NaturalAnnealingEngine(model=model, backend="sparse")
    config = ServeConfig(
        batch_window_ms=args.batch_window_ms,
        max_batch_size=args.max_batch_size,
        max_queue=args.max_queue,
    )
    workload = synthetic_workload(
        model,
        num_requests=args.requests,
        rate_rps=args.rate,
        burstiness=args.burstiness,
        seed=args.seed,
    )

    async def drive() -> dict:
        async with InferenceServer(engine, config) as server:
            for group in workload.groups:
                server.warm(group)
            if args.closed_loop:
                return await closed_loop(
                    server, workload, concurrency=args.concurrency
                )
            return await open_loop(server, workload)

    summary = asyncio.run(drive())
    quantiles = summarize_latencies(summary["latencies_ms"])
    print(
        f"{summary['loop']}-loop: {summary['completed']}/"
        f"{summary['requests']} served, "
        f"{summary['statuses'].get('shed', 0)} shed, "
        f"throughput {summary['throughput_rps']:.1f} rps, "
        f"mean batch {summary['mean_batch_size']:.1f}"
    )
    print(
        f"latency p50 {quantiles['p50_ms']:.2f} ms, "
        f"p99 {quantiles['p99_ms']:.2f} ms, "
        f"p99.9 {quantiles['p999_ms']:.2f} ms, "
        f"max {quantiles['max_ms']:.2f} ms"
    )
    if args.json:
        document = {
            key: value
            for key, value in summary.items()
            if key != "latencies_ms" and key != "batch_sizes"
        }
        document["latency_quantiles"] = quantiles
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json
    from dataclasses import asdict

    from .stream import StreamConfig, format_stream_summary, run_stream

    try:
        config = StreamConfig(
            n=args.n,
            density=args.density,
            windows=args.windows,
            batch=args.batch,
            observed_fraction=args.observed_fraction,
            edges_per_window=args.edges,
            h_edits_per_window=args.h_edits,
            rotate_observed_every=args.rotate_every,
            seed=args.seed,
            backend=args.backend,
            mode=args.mode,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    result = run_stream(config)
    print(format_stream_summary(result))
    if args.json:
        document = {
            "config": asdict(config),
            "windows": [asdict(w) for w in result.windows],
            "mean_mae": result.mean_mae,
            "incremental_updates": result.incremental_updates,
            "refactorizations": result.refactorizations,
            "residual_refactorizations": result.residual_refactorizations,
            "total_s": result.total_s,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _load_trace_records(path: str) -> list[dict]:
    """Read a trace for an ``obs`` subcommand, with clean failures.

    Raises ``ValueError`` with an actionable message (no traceback shown
    to the user) when the file is missing, not valid JSONL (truncated
    mid-write), or holds no records at all.
    """
    try:
        records = obs.read_trace(path)
    except FileNotFoundError:
        raise ValueError(f"{path}: no such trace file") from None
    except OSError as error:
        raise ValueError(f"{path}: cannot read trace ({error})") from None
    if not records:
        raise ValueError(
            f"{path}: trace is empty — was the run started with --trace, "
            "and did it finish?"
        )
    return records


def _cmd_tune(args: argparse.Namespace) -> int:
    from .tune import (
        CircuitProblem,
        DspuProblem,
        TuneCandidate,
        build_grid,
        load_artifact,
        replay,
        save_artifact,
        search,
    )

    if args.config is not None:
        artifact = load_artifact(args.config)
        row = replay(artifact, repeats=args.repeats)
        status = "MET" if row["met_target"] else "MISSED"
        print(
            f"replayed {row['label']}: error={row['error']:.3e} "
            f"(target {row['target_error']:.3e}, {status}), "
            f"latency={row['latency_ms']:.2f} ms"
        )
        return 0 if row["met_target"] else 1

    if args.problem == "circuit":
        if args.smoke:
            problem = CircuitProblem(
                n=min(args.n, 128), density=args.density,
                batch=min(args.batch, 4), seed=args.seed,
            )
            durations = args.durations or [20.0, 40.0]
        else:
            problem = CircuitProblem(
                n=args.n, density=args.density, batch=args.batch,
                seed=args.seed,
            )
            durations = args.durations or [25.0, 50.0, 100.0]
        candidates = build_grid(
            durations=durations,
            dts=args.dts,
            rtols=args.rtols,
            settle_tolerances=args.settle_tolerances,
            schedules=args.schedules,
            sync_intervals=args.sync_intervals or [10.0],
            restarts=args.restarts,
            shards=args.shard_counts,
            workers=getattr(args, "workers", None),
        )
    else:
        problem = DspuProblem(
            n=min(args.n, 32) if args.smoke else args.n,
            density=max(args.density, 0.1),
            seed=args.seed,
        )
        durations = args.durations or (
            [2000.0, 5000.0] if args.smoke else [2000.0, 5000.0, 10000.0]
        )
        sync_intervals = args.sync_intervals or [100.0, 200.0, 400.0]
        candidates = [
            TuneCandidate(
                duration=duration,
                sync_interval=sync,
                early_exit=early,
                settle_tolerance=(
                    args.settle_tolerances[0]
                    if args.settle_tolerances
                    else 1e-5
                ),
            )
            for duration in durations
            for sync in sync_intervals
            for early in (False, True)
        ]

    artifact = search(
        problem, candidates, target_error=args.target_error,
        repeats=args.repeats,
    )
    save_artifact(args.out, artifact)
    print(
        f"searched {len(artifact['rows'])} configs on "
        f"{artifact['problem']['kind']} (n={artifact['problem']['n']}); "
        f"Pareto front ({len(artifact['front'])} points):"
    )
    for row in artifact["front"]:
        marker = " <- best" if row is artifact["best"] else ""
        print(
            f"  {row['latency_ms']:9.2f} ms  error={row['error']:.3e}  "
            f"{row['label']}{marker}"
        )
    status = "met" if artifact["met_target"] else "NOT met"
    print(
        f"target error {artifact['target_error']:.3e} {status}; "
        f"artifact written to {args.out}"
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    try:
        if args.obs_command == "summarize":
            records = _load_trace_records(args.path)
            print(obs.format_summary(obs.summarize_records(records)))
            return 0
        if args.obs_command == "timeline":
            from .obs.timeline import analyze_records, format_timeline

            records = _load_trace_records(args.path)
            print(format_timeline(analyze_records(records), width=args.width))
            return 0
        if args.obs_command == "export":
            from .obs.export import (
                latest_metrics,
                snapshot_document,
                to_openmetrics,
            )

            records = _load_trace_records(args.path)
            snapshot = latest_metrics(records)
            if snapshot is None:
                raise ValueError(
                    f"{args.path}: trace holds no embedded metrics snapshot "
                    "(record the run with --trace so the final snapshot is "
                    "embedded on teardown)"
                )
            if args.export_format == "json":
                rendered = snapshot_document(
                    snapshot, meta={"source": str(args.path)}
                )
            else:
                rendered = to_openmetrics(snapshot)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(rendered)
                print(f"wrote {args.out}")
            else:
                print(rendered, end="")
            return 0
        if args.obs_command == "flame":
            from .obs.profile import format_profile, read_profile

            try:
                samples = read_profile(args.path)
            except FileNotFoundError:
                raise ValueError(
                    f"{args.path}: no such profile file"
                ) from None
            print(format_profile(samples, top=args.top))
            return 0
        if args.obs_command == "diff":
            from .obs.regress import (
                DEFAULT_MIN_BAND,
                compare_bench,
                format_diff,
                load_bench,
            )

            try:
                baseline = load_bench(args.baseline)
                candidate = load_bench(args.candidate)
            except FileNotFoundError as error:
                raise ValueError(
                    f"{error.filename}: no such bench snapshot"
                ) from None
            report = compare_bench(
                baseline,
                candidate,
                min_band=(
                    DEFAULT_MIN_BAND
                    if args.min_band is None
                    else args.min_band
                ),
            )
            print(format_diff(report, verbose=args.show_all))
            return 3 if report["regressions"] else 0
    except (ValueError, obs.TraceReadError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "decompose":
        return _cmd_decompose(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "obs":
        return _cmd_obs(args)
    return 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    verbosity = -1 if getattr(args, "quiet", False) else getattr(args, "verbose", 0)
    obs.configure_logging(verbosity)
    trace_path = getattr(args, "trace", None)
    want_metrics = bool(getattr(args, "metrics", False))
    profile_path = getattr(args, "profile", None)
    configured = (
        trace_path is not None or want_metrics or profile_path is not None
    )
    if configured:
        # --trace implies metrics collection so the final snapshot (cache
        # hit rates, run timings) can be embedded into the trace file.
        profile_interval = getattr(args, "profile_interval", None)
        obs.configure(
            collect_metrics=True,
            trace_path=trace_path,
            profile_path=profile_path,
            profile_interval=(
                obs.DEFAULT_INTERVAL
                if profile_interval is None
                else profile_interval
            ),
            profile_timer=getattr(args, "profile_timer", "wall"),
        )
    try:
        return _dispatch(args)
    finally:
        if configured:
            if want_metrics:
                rendered = obs.format_metrics(obs.metrics().snapshot())
                if rendered:
                    print(rendered)
            obs.disable()
            if trace_path is not None:
                print(f"trace written to {trace_path}")
            if profile_path is not None:
                print(f"profile written to {profile_path}")


if __name__ == "__main__":
    sys.exit(main())
