"""Community extraction via the Louvain algorithm (Sec. IV.B step 1).

The Louvain method [5] greedily maximizes modularity in two repeated
phases: (i) local moves of single nodes between communities while the
modularity gain is positive, and (ii) aggregation of the graph by
community.  Implemented from scratch on the |J| weight matrix (coupling
strength is the interaction weight, sign is irrelevant to community
structure); :func:`louvain_networkx` wraps the networkx reference
implementation for cross-checking in tests.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = ["louvain_communities", "louvain_networkx", "modularity", "community_sizes"]


def modularity(weights: np.ndarray, labels: np.ndarray) -> float:
    """Newman modularity of a labeling on a weighted undirected graph.

    ``Q = (1/2m) sum_ij (w_ij - k_i k_j / 2m) delta(c_i, c_j)``.
    """
    W = np.asarray(weights, dtype=float)
    labels = np.asarray(labels)
    degrees = W.sum(axis=1)
    two_m = degrees.sum()
    if two_m <= 0:
        return 0.0
    same = labels[:, None] == labels[None, :]
    return float(np.sum((W - np.outer(degrees, degrees) / two_m) * same) / two_m)


def louvain_communities(
    J: np.ndarray,
    resolution: float = 1.0,
    max_passes: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """Community labels for the coupling graph ``|J|``.

    Args:
        J: Coupling matrix (sign ignored; magnitudes are edge weights).
        resolution: Modularity resolution (higher => smaller communities).
        max_passes: Maximum aggregate passes.
        seed: Node-visit shuffling seed.

    Returns:
        ``(n,)`` integer labels, compacted to ``0..k-1``.
    """
    weights = np.abs(np.asarray(J, dtype=float))
    np.fill_diagonal(weights, 0.0)
    n = weights.shape[0]
    if n == 0:
        return np.zeros(0, dtype=int)
    rng = np.random.default_rng(seed)

    # mapping from original node to current community label
    node_to_community = np.arange(n)
    current = weights
    for _pass in range(max_passes):
        labels, improved = _one_level(current, resolution, rng)
        node_to_community = labels[node_to_community]
        if not improved:
            break
        current = _aggregate(current, labels)
        if current.shape[0] == 1:
            break
    return _compact(node_to_community)


def _one_level(W: np.ndarray, resolution: float, rng: np.random.Generator) -> tuple[np.ndarray, bool]:
    """Local-move phase; returns (labels compacted, any_move_made)."""
    n = W.shape[0]
    degrees = W.sum(axis=1)
    two_m = degrees.sum()
    if two_m <= 0:
        return np.arange(n), False
    labels = np.arange(n)
    community_degree = degrees.copy()
    improved_any = False
    for _sweep in range(20):
        moved = False
        for i in rng.permutation(n):
            current_label = labels[i]
            community_degree[current_label] -= degrees[i]
            # Weight from i into each community.
            neighbor_weights: dict[int, float] = {}
            row = W[i]
            nz = np.nonzero(row)[0]
            for j in nz:
                if j == i:
                    continue
                neighbor_weights[labels[j]] = neighbor_weights.get(labels[j], 0.0) + row[j]
            best_label = current_label
            best_gain = neighbor_weights.get(current_label, 0.0) - (
                resolution * community_degree[current_label] * degrees[i] / two_m
            )
            for label, weight_in in neighbor_weights.items():
                gain = weight_in - resolution * community_degree[label] * degrees[i] / two_m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_label = label
            labels[i] = best_label
            community_degree[best_label] += degrees[i]
            if best_label != current_label:
                moved = True
                improved_any = True
        if not moved:
            break
    return _compact(labels), improved_any


def _aggregate(W: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Collapse communities into super-nodes, summing edge weights.

    The diagonal of the aggregated matrix holds the internal weight of each
    community (counted twice, as ``sum_{i,j in c} w_ij``); keeping it is
    essential — it is what makes the aggregated node degrees equal the
    community total degrees, so the modularity penalty stays correct at the
    next level.
    """
    k = int(labels.max()) + 1
    onehot = np.zeros((W.shape[0], k))
    onehot[np.arange(W.shape[0]), labels] = 1.0
    return onehot.T @ W @ onehot


def _compact(labels: np.ndarray) -> np.ndarray:
    """Relabel to consecutive integers starting at 0."""
    unique, compacted = np.unique(labels, return_inverse=True)
    del unique
    return compacted.astype(int)


def louvain_networkx(J: np.ndarray, seed: int = 0) -> np.ndarray:
    """Reference labels from networkx's Louvain (cross-check oracle)."""
    weights = np.abs(np.asarray(J, dtype=float))
    np.fill_diagonal(weights, 0.0)
    graph = nx.from_numpy_array(weights)
    communities = nx.community.louvain_communities(graph, seed=seed)
    labels = np.zeros(weights.shape[0], dtype=int)
    for index, members in enumerate(communities):
        for node in members:
            labels[node] = index
    return _compact(labels)


def community_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of each community, indexed by label."""
    labels = np.asarray(labels, dtype=int)
    if labels.size == 0:
        return np.zeros(0, dtype=int)
    return np.bincount(labels)
