"""Inter-PE communication patterns: Chain, Mesh, DMesh, Wormhole (Fig. 6).

A pattern defines which pairs of super-communities (PEs) may hold non-zero
couplings after decomposition:

* **Chain** — consecutive PEs in the row-major (snake) order.
* **Mesh** — all 4-neighbor pairs on the 2D array (superset of Chain).
* **DMesh** — Mesh plus diagonal neighbors (diagonally-linked mesh [18]).
* **Wormhole** — a budget of extra point-to-point super-connections between
  arbitrary remote PEs, granted to the strongest residual couplings that
  the base pattern cannot carry.

``pattern_mask`` produces the node-level boolean controlling mask used to
confine non-zeros during fine-tuning (Sec. IV.B step 3).
"""

from __future__ import annotations

import numpy as np

from .redistribute import PlacementResult

__all__ = [
    "PATTERNS",
    "pe_pairs_allowed",
    "pattern_mask",
    "wormhole_pairs",
]

#: Recognized base pattern names, in increasing connectivity order.
PATTERNS: tuple[str, ...] = ("chain", "mesh", "dmesh")


def _coords(pe: int, cols: int) -> tuple[int, int]:
    return divmod(pe, cols)


def pe_pairs_allowed(pattern: str, grid_shape: tuple[int, int]) -> np.ndarray:
    """Boolean ``(P, P)`` matrix of PE pairs the base pattern connects.

    The diagonal (intra-PE) is always allowed: every PE is a full local
    crossbar.
    """
    pattern = pattern.lower()
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; pick from {PATTERNS}")
    rows, cols = grid_shape
    P = rows * cols
    allowed = np.eye(P, dtype=bool)
    for a in range(P):
        ra, ca = _coords(a, cols)
        for b in range(a + 1, P):
            rb, cb = _coords(b, cols)
            dr, dc = abs(ra - rb), abs(ca - cb)
            if pattern == "chain":
                # Row-major chain: each PE links only to its successor
                # (the wrap from the end of one row to the start of the
                # next rides the array edge links).
                ok = b == a + 1
            elif pattern == "mesh":
                ok = (dr + dc) == 1
            else:  # dmesh
                ok = max(dr, dc) == 1
            if ok:
                allowed[a, b] = allowed[b, a] = True
    return allowed


def wormhole_pairs(
    J: np.ndarray,
    placement: PlacementResult,
    base_allowed: np.ndarray,
    budget: int,
) -> list[tuple[int, int]]:
    """Select up to ``budget`` remote PE pairs for Wormhole connections.

    Ranked by the total residual coupling strength between the PEs that the
    base pattern cannot carry — "rare connections between any two
    super-communities" get the super-connection grid.
    """
    if budget < 0:
        raise ValueError("wormhole budget must be non-negative")
    if budget == 0:
        return []
    P = placement.num_pes
    strengths: list[tuple[float, int, int]] = []
    for a in range(P):
        ga = placement.groups[a]
        if ga.size == 0:
            continue
        for b in range(a + 1, P):
            if base_allowed[a, b]:
                continue
            gb = placement.groups[b]
            if gb.size == 0:
                continue
            strength = float(np.abs(J[np.ix_(ga, gb)]).sum())
            if strength > 0:
                strengths.append((strength, a, b))
    strengths.sort(reverse=True)
    return [(a, b) for _s, a, b in strengths[:budget]]


def pattern_mask(
    J: np.ndarray,
    placement: PlacementResult,
    pattern: str = "dmesh",
    wormhole_budget: int = 2,
) -> np.ndarray:
    """Node-level boolean mask of couplings the hardware can realize.

    Intra-PE pairs are always allowed; inter-PE pairs are allowed when the
    base pattern connects their PEs or a Wormhole was granted.

    Args:
        J: Coupling matrix (used only to rank Wormhole candidates).
        placement: Node-to-PE placement.
        pattern: ``"chain"``, ``"mesh"``, or ``"dmesh"``.
        wormhole_budget: Number of remote PE pairs granted Wormholes.

    Returns:
        Symmetric boolean ``(n, n)`` mask with a ``False`` diagonal.
    """
    allowed = pe_pairs_allowed(pattern, placement.grid_shape)
    for a, b in wormhole_pairs(J, placement, allowed, wormhole_budget):
        allowed[a, b] = allowed[b, a] = True
    pe = placement.pe_of_node
    mask = allowed[np.ix_(pe, pe)]
    np.fill_diagonal(mask, False)
    return mask
