"""Decomposition quality reports.

Quantifies what the Fig. 5 pipeline produced: how much coupling weight
survived, how well the placement respects community structure, how much
communication the interconnect must carry, and how balanced the PEs are.
Used by the ablation benchmarks and handy when tuning a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .community import modularity
from .pipeline import DecomposedSystem

__all__ = ["DecompositionReport", "analyze"]


@dataclass(frozen=True)
class DecompositionReport:
    """Structural summary of a decomposed system.

    Attributes:
        density: Achieved off-diagonal coupling density.
        weight_retained: Fraction of the dense model's total |J| kept.
        inter_pe_fraction: Fraction of surviving couplings crossing PEs.
        inter_pe_weight_fraction: Same, weighted by |J|.
        placement_modularity: Modularity of the PE assignment on the
            sparse coupling graph (high = communication-friendly).
        load_balance: min/max PE occupancy ratio (1 = perfectly balanced).
        max_boundary_demand: Largest per-PE boundary-node count (compared
            against the lane budget L by the schedulers).
        utilization: Mean PE occupancy relative to capacity.
    """

    density: float
    weight_retained: float
    inter_pe_fraction: float
    inter_pe_weight_fraction: float
    placement_modularity: float
    load_balance: float
    max_boundary_demand: int
    utilization: float

    def summary(self) -> str:
        """One-paragraph human-readable rendering."""
        return (
            f"density {self.density:.3f}, |J| retained "
            f"{self.weight_retained:.0%}, inter-PE couplings "
            f"{self.inter_pe_fraction:.0%} ({self.inter_pe_weight_fraction:.0%} "
            f"by weight), placement modularity {self.placement_modularity:.2f}, "
            f"load balance {self.load_balance:.2f}, max boundary demand "
            f"{self.max_boundary_demand}, utilization {self.utilization:.0%}"
        )


def analyze(system: DecomposedSystem) -> DecompositionReport:
    """Compute the structural quality metrics of a decomposition."""
    J_sparse = system.model.J
    J_dense = system.dense_model.J
    placement = system.placement

    dense_weight = float(np.abs(J_dense).sum())
    retained = (
        float(np.abs(J_sparse).sum()) / dense_weight if dense_weight > 0 else 0.0
    )

    pe = placement.pe_of_node
    rows, cols = np.nonzero(np.triu(J_sparse, 1))
    if rows.size:
        crossing = pe[rows] != pe[cols]
        inter_fraction = float(np.mean(crossing))
        weights = np.abs(J_sparse[rows, cols])
        inter_weight = float(weights[crossing].sum() / max(weights.sum(), 1e-12))
    else:
        inter_fraction = 0.0
        inter_weight = 0.0

    loads = placement.loads()
    positive = loads[loads > 0]
    balance = float(positive.min() / positive.max()) if positive.size else 1.0

    return DecompositionReport(
        density=system.density,
        weight_retained=retained,
        inter_pe_fraction=inter_fraction,
        inter_pe_weight_fraction=inter_weight,
        placement_modularity=modularity(np.abs(J_sparse), pe),
        load_balance=balance,
        max_boundary_demand=int(system.boundary_demand().max(initial=0)),
        utilization=float(np.mean(loads / placement.capacity)),
    )
