"""Coupling-matrix sparsification (Sec. IV.B step 1).

"Strongly coupled nodes contribute predominantly to the quality of
solution" — so pruning keeps the largest-magnitude couplings.  Density is
defined as in the paper: the proportion of non-zero elements among the
off-diagonal entries (sparsity = 1 - density).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

__all__ = [
    "coupling_density",
    "prune_to_density",
    "prune_below",
    "sparse_coupling",
]


def coupling_density(J) -> float:
    """Fraction of non-zero off-diagonal couplings (dense or sparse)."""
    n = J.shape[0]
    if n < 2:
        return 0.0
    if sp.issparse(J):
        nnz = J.count_nonzero() - int(np.count_nonzero(J.diagonal()))
        return float(nnz) / (n * (n - 1))
    J = np.asarray(J)
    off = J[~np.eye(n, dtype=bool)]
    return float(np.count_nonzero(off) / off.size)


def sparse_coupling(J: np.ndarray) -> sp.csr_matrix:
    """A pruned coupling matrix as CSR storage for the sparse backends.

    The decomposition pipeline keeps couplings dense while masks are being
    fitted; once the support is final, the annealing hot paths (see
    :mod:`repro.core.operators`) run on CSR so large decomposed systems
    never multiply an ``(n, n)`` dense matrix again.
    """
    if sp.issparse(J):
        return J.tocsr()
    return sp.csr_matrix(np.asarray(J, dtype=float))


def prune_to_density(
    J: np.ndarray,
    density: float,
    anchor_index: np.ndarray | None = None,
    anchor_degree: int = 3,
) -> np.ndarray:
    """Keep only the strongest couplings so the density is at most ``density``.

    Symmetric pairs are kept or dropped together (one physical resistor ring
    serves both directions), so the result stays a valid coupling matrix.

    Pure magnitude pruning can starve the rows that matter for inference:
    on tasks with strong same-frame spatial correlation, the couplings
    between an *unknown* variable and the *observed* ones can all be
    weaker than the global cut, leaving the prediction unanchored.  The
    optional ``anchor_index`` marks such rows (the target variables of a
    temporal unrolling); each anchor row is guaranteed to keep its
    ``anchor_degree`` strongest couplings to non-anchor columns, with the
    remaining budget filled in global magnitude order.

    Args:
        J: Symmetric coupling matrix.
        density: Target fraction of non-zero off-diagonal entries in (0, 1].
        anchor_index: Rows guaranteed a minimum degree to non-anchor
            columns (e.g. the predicted frame's variables).
        anchor_degree: Couplings each anchor row keeps to non-anchor
            columns (budget permitting).

    Returns:
        The pruned copy of ``J``.
    """
    if not 0 < density <= 1:
        raise ValueError(f"density must be in (0, 1], got {density}")
    if anchor_degree < 0:
        raise ValueError("anchor_degree must be non-negative")
    J = np.asarray(J, dtype=float)
    n = J.shape[0]
    if n < 2:
        return J.copy()
    iu, ju = np.triu_indices(n, k=1)
    strengths = np.abs(J[iu, ju])
    num_pairs = strengths.size
    keep_pairs = int(np.floor(density * num_pairs))
    pruned = np.zeros_like(J)
    if keep_pairs == 0:
        return pruned

    forced: set[tuple[int, int]] = set()
    if anchor_index is not None and anchor_degree > 0:
        anchor_index = np.asarray(anchor_index, dtype=int)
        anchors = set(anchor_index.tolist())
        others = np.asarray(
            [k for k in range(n) if k not in anchors], dtype=int
        )
        for i in anchor_index:
            if others.size == 0:
                break
            row = np.abs(J[i, others])
            top = others[np.argsort(row)[::-1][:anchor_degree]]
            for j in top:
                if J[i, j] != 0.0:
                    forced.add((min(int(i), int(j)), max(int(i), int(j))))
    # Forced pairs may not exceed the budget; keep the strongest of them.
    if len(forced) > keep_pairs:
        ranked = sorted(forced, key=lambda p: -abs(J[p[0], p[1]]))
        forced = set(ranked[:keep_pairs])

    for a, b in forced:
        pruned[a, b] = J[a, b]
        pruned[b, a] = J[b, a]
    remaining = keep_pairs - len(forced)
    if remaining > 0:
        # Fill the budget in global magnitude order, vectorized: rank all
        # pairs, drop the zero-strength tail and the already-forced pairs,
        # and keep the strongest `remaining` of what is left.
        order = np.argsort(strengths)[::-1]
        candidates = order[strengths[order] > 0.0]
        if forced:
            forced_ids = np.asarray([a * n + b for a, b in forced])
            pair_ids = iu[candidates] * n + ju[candidates]
            candidates = candidates[~np.isin(pair_ids, forced_ids)]
        selected = candidates[:remaining]
        pruned[iu[selected], ju[selected]] = J[iu[selected], ju[selected]]
        pruned[ju[selected], iu[selected]] = J[ju[selected], iu[selected]]
    return pruned


def prune_below(J: np.ndarray, threshold: float) -> np.ndarray:
    """Zero couplings with magnitude below ``threshold``."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    J = np.asarray(J, dtype=float)
    pruned = np.where(np.abs(J) >= threshold, J, 0.0)
    np.fill_diagonal(pruned, 0.0)
    return pruned
